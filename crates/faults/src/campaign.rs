//! Seeded random fault campaigns.
//!
//! [`generate_campaign`] turns one `u64` seed plus a [`CampaignConfig`]
//! into a [`FaultPlan`]: the whole chaos schedule — which nodes crash,
//! where the blackout lands, how the groups partition — is a pure
//! function of the seed, so the chaos harness can rerun a campaign
//! bit-for-bit and compare end-state digests.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use iobt_netsim::sim::{CompromiseSpec, LinkDegradation, PartitionSpec};
use iobt_netsim::{SimDuration, SimTime};
use iobt_types::{NodeId, Point, Rect};

use crate::plan::FaultPlan;

/// Shape of a generated campaign: how many of each fault kind, over
/// what horizon, in what area.
///
/// Transient faults start inside `[0.1, 0.5] × horizon` and are sized
/// so every one of them clears by `0.7 × horizon`, leaving the final
/// 30% of the run as the recovery tail the chaos harness measures.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Run horizon; onsets and durations are scaled to it.
    pub horizon: SimDuration,
    /// Operating area; blackout rects are sampled inside it.
    pub area: Rect,
    /// Fail-stop crashes (permanent attrition).
    pub crashes: usize,
    /// Fail-recover crashes (transient).
    pub recoveries: usize,
    /// Region blackouts, each lifted before the recovery tail.
    pub blackouts: usize,
    /// Network partitions (transient).
    pub partitions: usize,
    /// Link degradations (transient).
    pub degradations: usize,
    /// Relay compromises (transient, tampering).
    pub compromises: usize,
}

impl CampaignConfig {
    /// A light default campaign: mostly-transient chaos sized for a
    /// small squad over `horizon` in `area`.
    pub fn light(horizon: SimDuration, area: Rect) -> Self {
        CampaignConfig {
            horizon,
            area,
            crashes: 1,
            recoveries: 2,
            blackouts: 1,
            partitions: 1,
            degradations: 1,
            compromises: 1,
        }
    }

    /// Total number of fault events this config generates.
    pub fn total(&self) -> usize {
        self.crashes
            + self.recoveries
            + self.blackouts
            + self.partitions
            + self.degradations
            + self.compromises
    }
}

/// Fraction of the horizon where transient onsets start (inclusive low).
const ONSET_LO: f64 = 0.1;
/// Fraction of the horizon where transient onsets stop (exclusive high).
const ONSET_HI: f64 = 0.5;
/// Fraction of the horizon by which every transient fault has cleared.
const CLEAR_BY: f64 = 0.7;

/// Generates a deterministic fault campaign over `nodes`.
///
/// The same `(seed, nodes, cfg)` triple always yields the same plan.
/// Node-targeting faults (crashes, partitions, compromises) draw from
/// `nodes` without replacement where possible; an empty `nodes` slice
/// yields only node-independent faults (blackouts, degradations).
///
/// # Examples
///
/// ```
/// use iobt_faults::{generate_campaign, CampaignConfig};
/// use iobt_netsim::SimDuration;
/// use iobt_types::{NodeId, Rect};
///
/// let nodes: Vec<NodeId> = (0..8).map(NodeId::new).collect();
/// let cfg = CampaignConfig::light(SimDuration::from_secs_f64(60.0), Rect::square(1_000.0));
/// let a = generate_campaign(7, &nodes, &cfg);
/// let b = generate_campaign(7, &nodes, &cfg);
/// assert_eq!(a.len(), b.len());
/// assert_eq!(a.horizon(), b.horizon());
/// ```
pub fn generate_campaign(seed: u64, nodes: &[NodeId], cfg: &CampaignConfig) -> FaultPlan {
    // Domain-separate the campaign stream from the simulator stream so
    // sharing one scenario seed between them is safe.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5EED);
    let h = cfg.horizon.as_secs_f64();
    let mut plan = FaultPlan::new();

    // One shuffled deck of targets shared by the node-targeting fault
    // kinds so a small squad is not crashed, partitioned, AND
    // compromised all at once unless the deck wraps.
    let mut deck: Vec<NodeId> = nodes.to_vec();
    deck.shuffle(&mut rng);
    let mut next = 0usize;
    let mut draw = |rng: &mut StdRng, deck: &mut Vec<NodeId>| -> Option<NodeId> {
        if deck.is_empty() {
            return None;
        }
        if next >= deck.len() {
            deck.shuffle(rng);
            next = 0;
        }
        next += 1;
        Some(deck[next - 1])
    };

    let onset = |rng: &mut StdRng| SimTime::from_secs_f64(h * rng.gen_range(ONSET_LO..ONSET_HI));
    // A duration that, started at `at`, is guaranteed to clear by
    // CLEAR_BY × horizon (and is at least 5% of the horizon).
    let clearing = |rng: &mut StdRng, at: SimTime| {
        let room = (h * CLEAR_BY - at.as_secs_f64()).max(0.05 * h);
        SimDuration::from_secs_f64(room * rng.gen_range(0.3..1.0))
    };

    for _ in 0..cfg.crashes {
        if let Some(node) = draw(&mut rng, &mut deck) {
            let at = onset(&mut rng);
            plan = plan.crash(at, node);
        }
    }
    for _ in 0..cfg.recoveries {
        if let Some(node) = draw(&mut rng, &mut deck) {
            let at = onset(&mut rng);
            let dur = clearing(&mut rng, at);
            plan = plan.crash_recover(at, node, dur);
        }
    }
    for _ in 0..cfg.blackouts {
        let at = onset(&mut rng);
        let dur = clearing(&mut rng, at);
        let frac: f64 = rng.gen_range(0.15..0.4);
        let side = (cfg.area.width().min(cfg.area.height()) * frac).max(1.0);
        let min = cfg.area.min();
        let cx = min.x + rng.gen_range(0.0..(cfg.area.width() - side).max(1e-9));
        let cy = min.y + rng.gen_range(0.0..(cfg.area.height() - side).max(1e-9));
        let rect = Rect::new(Point::new(cx, cy), Point::new(cx + side, cy + side));
        plan = plan.blackout(at, rect, Some(dur));
    }
    for _ in 0..cfg.partitions {
        if nodes.len() < 2 {
            break;
        }
        let mut shuffled: Vec<NodeId> = nodes.to_vec();
        shuffled.shuffle(&mut rng);
        let cut = rng.gen_range(1..shuffled.len());
        let (a, b) = shuffled.split_at(cut);
        let at = onset(&mut rng);
        let dur = clearing(&mut rng, at);
        plan = plan.partition(
            at,
            PartitionSpec::new(a.iter().copied(), b.iter().copied()),
            dur,
        );
    }
    for _ in 0..cfg.degradations {
        let at = onset(&mut rng);
        let dur = clearing(&mut rng, at);
        let spec = LinkDegradation::new(rng.gen_range(3.0..12.0), rng.gen_range(1.2..2.5));
        plan = plan.degrade(at, spec, dur);
    }
    for _ in 0..cfg.compromises {
        if let Some(relay) = draw(&mut rng, &mut deck) {
            let at = onset(&mut rng);
            let dur = clearing(&mut rng, at);
            let spec = CompromiseSpec::new([relay], SimDuration::from_millis(20), true);
            plan = plan.compromise(at, spec, dur);
        }
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn cfg() -> CampaignConfig {
        CampaignConfig::light(SimDuration::from_secs_f64(100.0), Rect::square(1_000.0))
    }

    #[test]
    fn same_seed_yields_identical_campaigns() {
        let a = generate_campaign(42, &nodes(10), &cfg());
        let b = generate_campaign(42, &nodes(10), &cfg());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.len(), cfg().total());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = generate_campaign(1, &nodes(10), &cfg());
        let b = generate_campaign(2, &nodes(10), &cfg());
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn transients_start_and_clear_inside_the_window() {
        let cfg = cfg();
        let h = cfg.horizon.as_secs_f64();
        for seed in 0..20 {
            let plan = generate_campaign(seed, &nodes(12), &cfg);
            for ev in plan.events() {
                let at = ev.at.as_secs_f64();
                assert!(at >= ONSET_LO * h - 1e-9, "onset too early: {at}");
                assert!(at < ONSET_HI * h, "onset too late: {at}");
            }
            let clear = plan.transient_clear_time().as_secs_f64();
            assert!(
                clear <= CLEAR_BY * h + 1e-6,
                "seed {seed}: transients clear at {clear}, past {}",
                CLEAR_BY * h
            );
        }
    }

    #[test]
    fn blackout_rects_stay_inside_the_area() {
        let cfg = cfg();
        for seed in 0..20 {
            let plan = generate_campaign(seed, &nodes(6), &cfg);
            for ev in plan.events() {
                if let FaultKind::RegionBlackout { rect, .. } = &ev.kind {
                    assert!(rect.min().x >= cfg.area.min().x - 1e-9);
                    assert!(rect.min().y >= cfg.area.min().y - 1e-9);
                    assert!(rect.max().x <= cfg.area.max().x + 1e-9);
                    assert!(rect.max().y <= cfg.area.max().y + 1e-9);
                }
            }
        }
    }

    #[test]
    fn empty_node_set_yields_only_node_independent_faults() {
        let plan = generate_campaign(3, &[], &cfg());
        for ev in plan.events() {
            assert!(
                matches!(
                    ev.kind,
                    FaultKind::RegionBlackout { .. } | FaultKind::Degrade { .. }
                ),
                "unexpected node-targeting fault: {:?}",
                ev.kind
            );
        }
        assert_eq!(plan.len(), cfg().blackouts + cfg().degradations);
    }

    #[test]
    fn partition_groups_are_disjoint_and_nonempty() {
        for seed in 0..10 {
            let plan = generate_campaign(seed, &nodes(5), &cfg());
            let has_partition = plan
                .events()
                .iter()
                .any(|ev| matches!(ev.kind, FaultKind::Partition { .. }));
            assert!(has_partition, "seed {seed} generated no partition");
        }
    }
}
