//! # iobt-bridge — the fault-tolerant edge bridge
//!
//! The paper's deployment story (§V) does not end at the simulator
//! boundary: battlefield IoT nodes feed command posts and analytics
//! back-ends over links that are contested by construction. This crate
//! is that last hop — an edge daemon that drains a mission's trace
//! stream onto a stable topic hierarchy
//! (`iobt/<mission>/<node>/<kind>`, one deterministic JSON line per
//! frame) over a pluggable [`Transport`], and accepts external tasking
//! commands back in through the mission's acked `TaskBoard` path.
//!
//! Robustness is the point, so the failure behaviour is the API:
//!
//! * **Reconnect** — capped exponential backoff with seeded jitter and
//!   a tick-based heartbeat, through the
//!   [`ConnState`] machine `Connected → Degraded → Reconnecting →
//!   GaveUp`.
//! * **Bounded buffering** — a fixed-capacity egress ring with three
//!   [`OverflowPolicy`]s and an exactly-once ledger:
//!   `delivered + dropped + buffered == emitted`, always
//!   ([`BridgeReport::accounted`]).
//! * **Idempotent ingress** — commands carry `(src, seq)` and are
//!   applied at most once; torn frames produce typed errors, never
//!   panics.
//! * **Graceful detach** — when the reconnect budget is exhausted the
//!   bridge discards its backlog (counted), stops, and the mission
//!   runs on. Mission digests are bit-identical with or without a
//!   bridge attached, under every fault profile of
//!   [`FaultyTransport`] — the bridge observes through a trace sink
//!   and keeps its own recorder, so it *cannot* write to the
//!   mission's ledger.
//!
//! ```
//! use iobt_bridge::{memory_pair, Bridge, BridgeConfig};
//! use iobt_obs::{Recorder, TraceEvent};
//!
//! let (transport, consumer) = memory_pair();
//! let bridge = Bridge::new(BridgeConfig { mission: 7, ..Default::default() }, Box::new(transport));
//! let recorder = Recorder::with_sink(Box::new(bridge.sink()));
//! recorder.record(TraceEvent::MsgSent { from: 3, to: 9 });
//! bridge.pump();
//! let frame = String::from_utf8(consumer.take_frames().remove(0)).unwrap();
//! assert!(frame.starts_with("{\"topic\":\"iobt/7/3/msg_sent\""));
//! assert!(bridge.report().accounted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod faulty;
pub mod frame;
pub mod transport;

pub use bridge::{
    Bridge, BridgeConfig, BridgeError, BridgeReport, BridgeSink, ConnState, OverflowPolicy,
};
pub use faulty::{FaultStats, FaultyTransport, TransportFaultProfile};
pub use frame::{encode_command, encode_frame, parse_command, topic, Command, CommandAction, FrameError};
pub use transport::{
    encode_framed, memory_pair, read_framed, MemoryEndpoint, MemoryTransport, TcpTransport,
    Transport, TransportError, MAX_FRAME_LEN,
};

/// Convenience re-exports mirroring the other subsystem crates.
pub mod prelude {
    pub use crate::bridge::{
        Bridge, BridgeConfig, BridgeError, BridgeReport, BridgeSink, ConnState, OverflowPolicy,
    };
    pub use crate::faulty::{FaultStats, FaultyTransport, TransportFaultProfile};
    pub use crate::frame::{encode_command, parse_command, Command, CommandAction, FrameError};
    pub use crate::transport::{
        memory_pair, MemoryEndpoint, MemoryTransport, TcpTransport, Transport, TransportError,
    };
}
