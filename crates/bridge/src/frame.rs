//! Topic mapping, egress frame encoding, and ingress command parsing.
//!
//! **Egress.** Every trace record maps onto a stable topic
//! `iobt/<mission>/<node>/<kind>` (node `-` when the event has no
//! primary node) and is encoded as one JSON line with fixed key order:
//! `topic` first, then the record's own deterministic JSONL encoding
//! (`seq`, `t_us`, `sub`, `kind`, payload fields). Two same-seed runs
//! therefore produce byte-identical frame streams.
//!
//! **Ingress.** Tasking commands arrive as flat JSON
//! `{"src":S,"seq":N,"cmd":"assign","node":ID}`. `(src, seq)` is the
//! idempotency key: the bridge applies each `(src, seq)` at most once
//! no matter how often the frame is duplicated or replayed. The parser
//! is hand-rolled, allocation-light, and total: every byte flip or
//! truncation of a valid frame yields a typed [`FrameError`], never a
//! panic (fuzzed in `tests/bridge.rs`).

use std::fmt;

use iobt_obs::TraceRecord;

/// Builds the topic for a record: `iobt/<mission>/<node>/<kind>`,
/// with `-` standing in for events that have no primary node (mission
/// milestones, allocation epochs, bridge self-events). Matches the
/// derivation `iobt-trace --topics` applies to raw trace files.
pub fn topic(mission: u64, record: &TraceRecord) -> String {
    match record.event.primary_node() {
        Some(node) => format!("iobt/{}/{}/{}", mission, node, record.event.kind()),
        None => format!("iobt/{}/-/{}", mission, record.event.kind()),
    }
}

/// Encodes one record as an egress frame: the record's deterministic
/// JSON line with `"topic"` spliced in as the first key.
pub fn encode_frame(mission: u64, record: &TraceRecord) -> String {
    let mut line = String::with_capacity(160);
    record.encode_jsonl(&mut line);
    let mut out = String::with_capacity(line.len() + 48);
    out.push_str("{\"topic\":\"");
    out.push_str(&topic(mission, record));
    out.push_str("\",");
    // Splice after the record's opening brace; encode_jsonl always
    // starts with '{'.
    out.push_str(line.strip_prefix('{').unwrap_or(&line));
    out
}

/// Why an ingress frame was rejected. Every variant is a rejection the
/// bridge counts and survives — a hostile or corrupt peer can never
/// panic the edge daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is not valid UTF-8.
    NotUtf8,
    /// The frame is not a flat JSON object of the expected shape.
    Malformed(&'static str),
    /// The `cmd` value is not one the bridge understands.
    UnknownCommand,
    /// A required field is missing.
    MissingField(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::NotUtf8 => write!(f, "frame is not valid UTF-8"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::UnknownCommand => write!(f, "unknown command"),
            FrameError::MissingField(name) => write!(f, "missing field: {name}"),
        }
    }
}

/// A parsed, validated tasking command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// Command source (one external controller = one `src` id).
    pub src: u64,
    /// Per-source sequence number; the idempotency key with `src`.
    pub seq: u64,
    /// What to do.
    pub action: CommandAction,
}

/// The action a command requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandAction {
    /// Queue a task assignment for `node` on the mission's task board.
    Assign {
        /// Target node id.
        node: u64,
    },
}

/// One scanned key/value: flat JSON allows only unsigned integers and
/// plain (escape-free) strings here.
enum Scalar<'a> {
    U64(u64),
    Str(&'a str),
}

/// Parses one ingress frame. Total over arbitrary bytes: returns a
/// typed [`FrameError`] for anything that is not exactly a flat JSON
/// command object.
pub fn parse_command(frame: &[u8]) -> Result<Command, FrameError> {
    let text = std::str::from_utf8(frame).map_err(|_| FrameError::NotUtf8)?;
    let mut src = None;
    let mut seq = None;
    let mut cmd = None;
    let mut node = None;

    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .ok_or(FrameError::Malformed("missing opening brace"))?;
    let body = body
        .strip_suffix('}')
        .ok_or(FrameError::Malformed("missing closing brace"))?;

    let mut rest = body.trim_start();
    let mut first = true;
    while !rest.is_empty() {
        if !first {
            rest = rest
                .strip_prefix(',')
                .ok_or(FrameError::Malformed("expected comma between fields"))?
                .trim_start();
        }
        first = false;

        let (key, after_key) = scan_string(rest)?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or(FrameError::Malformed("expected colon after key"))?
            .trim_start();
        let (value, after_value) = scan_scalar(after_colon)?;
        match (key, value) {
            ("src", Scalar::U64(v)) => src = Some(v),
            ("seq", Scalar::U64(v)) => seq = Some(v),
            ("node", Scalar::U64(v)) => node = Some(v),
            ("cmd", Scalar::Str(s)) => cmd = Some(s),
            ("src" | "seq" | "node", Scalar::Str(_)) => {
                return Err(FrameError::Malformed("expected integer value"));
            }
            ("cmd", Scalar::U64(_)) => {
                return Err(FrameError::Malformed("expected string value for cmd"));
            }
            // Unknown keys are tolerated (forward compatibility).
            _ => {}
        }
        rest = after_value.trim_start();
    }

    let src = src.ok_or(FrameError::MissingField("src"))?;
    let seq = seq.ok_or(FrameError::MissingField("seq"))?;
    let action = match cmd.ok_or(FrameError::MissingField("cmd"))? {
        "assign" => CommandAction::Assign {
            node: node.ok_or(FrameError::MissingField("node"))?,
        },
        _ => return Err(FrameError::UnknownCommand),
    };
    Ok(Command { src, seq, action })
}

/// Scans a leading `"..."` string (no escapes allowed — command frames
/// never need them, and rejecting them keeps the parser total).
fn scan_string(s: &str) -> Result<(&str, &str), FrameError> {
    let inner = s
        .strip_prefix('"')
        .ok_or(FrameError::Malformed("expected string"))?;
    let end = inner
        .find(['"', '\\'])
        .ok_or(FrameError::Malformed("unterminated string"))?;
    if inner.as_bytes().get(end) == Some(&b'\\') {
        return Err(FrameError::Malformed("escapes not allowed"));
    }
    Ok((&inner[..end], &inner[end + 1..]))
}

/// Scans a leading scalar: unsigned integer or plain string.
fn scan_scalar(s: &str) -> Result<(Scalar<'_>, &str), FrameError> {
    if s.starts_with('"') {
        let (text, rest) = scan_string(s)?;
        return Ok((Scalar::Str(text), rest));
    }
    let digits_end = s
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map_or(s.len(), |(i, _)| i);
    if digits_end == 0 {
        return Err(FrameError::Malformed("expected number or string"));
    }
    let v: u64 = s[..digits_end]
        .parse()
        .map_err(|_| FrameError::Malformed("integer out of range"))?;
    Ok((Scalar::U64(v), &s[digits_end..]))
}

/// Renders a command back to its canonical frame encoding — the format
/// external controllers send, also used by tests and the example.
pub fn encode_command(cmd: &Command) -> String {
    match cmd.action {
        CommandAction::Assign { node } => format!(
            "{{\"src\":{},\"seq\":{},\"cmd\":\"assign\",\"node\":{}}}",
            cmd.src, cmd.seq, node
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_obs::TraceEvent;

    fn rec(seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_us: seq * 5,
            seq,
            event,
        }
    }

    #[test]
    fn topic_uses_primary_node_or_dash() {
        let with_node = rec(1, TraceEvent::MsgSent { from: 9, to: 2 });
        assert_eq!(topic(3, &with_node), "iobt/3/9/msg_sent");
        let no_node = rec(2, TraceEvent::BridgeConnect { attempt: 1 });
        assert_eq!(topic(3, &no_node), "iobt/3/-/bridge_connect");
    }

    #[test]
    fn frame_splices_topic_first_and_stays_one_line() {
        let r = rec(4, TraceEvent::MsgSent { from: 1, to: 2 });
        let frame = encode_frame(7, &r);
        assert!(frame.starts_with("{\"topic\":\"iobt/7/1/msg_sent\",\"seq\":4,"));
        assert_eq!(frame.lines().count(), 1);
    }

    #[test]
    fn command_round_trips() {
        let cmd = Command {
            src: 5,
            seq: 11,
            action: CommandAction::Assign { node: 42 },
        };
        let encoded = encode_command(&cmd);
        assert_eq!(parse_command(encoded.as_bytes()), Ok(cmd));
    }

    #[test]
    fn parser_rejects_garbage_with_typed_errors() {
        assert_eq!(parse_command(&[0xFF, 0xFE]), Err(FrameError::NotUtf8));
        assert_eq!(
            parse_command(b"not json"),
            Err(FrameError::Malformed("missing opening brace"))
        );
        assert_eq!(
            parse_command(b"{\"src\":1,\"seq\":2,\"cmd\":\"detonate\",\"node\":3}"),
            Err(FrameError::UnknownCommand)
        );
        assert_eq!(
            parse_command(b"{\"src\":1,\"cmd\":\"assign\",\"node\":3}"),
            Err(FrameError::MissingField("seq"))
        );
        assert_eq!(
            parse_command(b"{\"src\":99999999999999999999999,\"seq\":1,\"cmd\":\"assign\",\"node\":3}"),
            Err(FrameError::Malformed("integer out of range"))
        );
    }

    #[test]
    fn parser_tolerates_unknown_keys_and_whitespace() {
        let cmd = parse_command(
            b"{ \"src\" : 1 , \"seq\" : 2 , \"cmd\" : \"assign\" , \"node\" : 3 , \"extra\" : \"x\" }",
        )
        .expect("parse");
        assert_eq!(cmd.src, 1);
        assert_eq!(cmd.seq, 2);
        assert_eq!(cmd.action, CommandAction::Assign { node: 3 });
    }
}
