//! Deterministic chaos wrapper for any [`Transport`].
//!
//! [`FaultyTransport`] interposes on every connect/send/recv and
//! injects faults from the shared `iobt_faults::failpoint` trigger —
//! the same FNV-1a schedule `iobt-fleet`'s `FailingStore` uses — so a
//! fault profile is a pure function of `(seed, domain, connection
//! generation, op counter)` and completely independent of scheduling.
//! That is what lets the chaos matrix assert *bit-identical* mission
//! digests with the bridge attached under every profile: the faults
//! land on the same operations every run.
//!
//! Injected fault classes:
//!
//! * **connect failure** — the dial itself is refused;
//! * **disconnect** — a send tears the connection down (the frame is
//!   not delivered);
//! * **partial write** — a truncated copy of the frame reaches the
//!   peer, then the connection drops: the consumer sees a torn frame
//!   and the bridge resends after reconnect (at-least-once);
//! * **stall** — a send returns [`TransportError::Busy`] without
//!   losing the connection (transient back-pressure);
//! * **duplicate** — the frame is delivered twice (consumers must
//!   dedupe by `seq`).
//!
//! `disconnect_at_send` additionally arms a one-shot disconnect at an
//! exact cumulative send index, which is how the chaos matrix walks a
//! disconnect across *every* flush boundary.

use iobt_faults::failpoint::fires;

use crate::transport::{Transport, TransportError};

/// Failpoint domain words (must not collide with other crates' domains
/// only within a shared seed+key space; the `key` here is the bridge
/// connection generation, so these are bridge-local).
const DOMAIN_CONNECT: u64 = 0x42_01;
const DOMAIN_DISCONNECT: u64 = 0x42_02;
const DOMAIN_PARTIAL: u64 = 0x42_03;
const DOMAIN_STALL: u64 = 0x42_04;
const DOMAIN_DUP: u64 = 0x42_05;

/// Declarative fault schedule for a [`FaultyTransport`]. All rates are
/// `1-in-N` (`0` disables the class); `seed` pins the whole schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportFaultProfile {
    /// Seed for the failpoint hash; same seed ⇒ same fault schedule.
    pub seed: u64,
    /// 1-in-N connect attempts are refused.
    pub connect_fail_one_in: u64,
    /// 1-in-N sends tear the connection down (frame lost).
    pub disconnect_one_in: u64,
    /// 1-in-N sends deliver a torn prefix, then disconnect.
    pub partial_one_in: u64,
    /// 1-in-N sends stall with `Busy` (no connection loss).
    pub stall_one_in: u64,
    /// 1-in-N sends are delivered twice.
    pub duplicate_one_in: u64,
    /// One-shot: disconnect exactly at this cumulative send index
    /// (0-based, counted across reconnects). Used to walk a disconnect
    /// across every flush boundary.
    pub disconnect_at_send: Option<u64>,
}

impl TransportFaultProfile {
    /// A profile that injects nothing (pass-through wrapper).
    pub fn benign(seed: u64) -> Self {
        TransportFaultProfile {
            seed,
            connect_fail_one_in: 0,
            disconnect_one_in: 0,
            partial_one_in: 0,
            stall_one_in: 0,
            duplicate_one_in: 0,
            disconnect_at_send: None,
        }
    }

    /// The kitchen-sink chaos profile used by tests: every fault class
    /// armed at moderate rates.
    pub fn chaos(seed: u64) -> Self {
        TransportFaultProfile {
            seed,
            connect_fail_one_in: 3,
            disconnect_one_in: 7,
            partial_one_in: 11,
            stall_one_in: 5,
            duplicate_one_in: 6,
            disconnect_at_send: None,
        }
    }
}

/// Counters for how many faults actually fired, for test assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Connect attempts refused.
    pub connect_failures: u64,
    /// Sends that tore the connection down.
    pub disconnects: u64,
    /// Sends that delivered a torn prefix then disconnected.
    pub partials: u64,
    /// Sends that stalled with `Busy`.
    pub stalls: u64,
    /// Sends delivered twice.
    pub duplicates: u64,
}

/// A [`Transport`] wrapper that injects deterministic faults per the
/// profile. Generic over the inner transport so the same chaos harness
/// drives in-memory pairs in tests and (in principle) real sockets.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    profile: TransportFaultProfile,
    /// Successful connects so far; the failpoint `key`, so each
    /// connection generation gets an independent fault schedule.
    generation: u64,
    connect_ops: u64,
    send_ops: u64,
    /// Cumulative sends across all generations (for
    /// `disconnect_at_send`).
    total_sends: u64,
    /// One-shot latch for `disconnect_at_send`.
    armed_disconnect: Option<u64>,
    connected: bool,
    stats: FaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given fault profile.
    pub fn new(inner: T, profile: TransportFaultProfile) -> Self {
        FaultyTransport {
            inner,
            profile,
            generation: 0,
            connect_ops: 0,
            send_ops: 0,
            total_sends: 0,
            armed_disconnect: profile.disconnect_at_send,
            connected: false,
            stats: FaultStats::default(),
        }
    }

    /// Counters for faults that actually fired.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn connect(&mut self) -> Result<(), TransportError> {
        let op = self.connect_ops;
        self.connect_ops += 1;
        if fires(
            self.profile.seed,
            DOMAIN_CONNECT,
            self.profile.connect_fail_one_in,
            self.generation,
            op,
        ) {
            self.stats.connect_failures += 1;
            return Err(TransportError::Refused);
        }
        self.inner.connect()?;
        self.generation += 1;
        self.send_ops = 0;
        self.connected = true;
        Ok(())
    }

    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        if !self.connected {
            return Err(TransportError::Disconnected);
        }
        let op = self.send_ops;
        self.send_ops += 1;
        let total = self.total_sends;
        self.total_sends += 1;

        if self.armed_disconnect == Some(total) {
            self.armed_disconnect = None;
            self.stats.disconnects += 1;
            self.connected = false;
            self.inner.close();
            return Err(TransportError::Disconnected);
        }
        let seed = self.profile.seed;
        let key = self.generation;
        if fires(seed, DOMAIN_DISCONNECT, self.profile.disconnect_one_in, key, op) {
            self.stats.disconnects += 1;
            self.connected = false;
            self.inner.close();
            return Err(TransportError::Disconnected);
        }
        if fires(seed, DOMAIN_PARTIAL, self.profile.partial_one_in, key, op) {
            self.stats.partials += 1;
            // Deliver a torn prefix, then drop the link: the consumer
            // must survive the corrupt frame, and the bridge resends
            // the full frame after reconnecting.
            let cut = frame.len() / 2;
            let _ = self.inner.send(&frame[..cut]);
            self.connected = false;
            self.inner.close();
            return Err(TransportError::Disconnected);
        }
        if fires(seed, DOMAIN_STALL, self.profile.stall_one_in, key, op) {
            self.stats.stalls += 1;
            return Err(TransportError::Busy);
        }
        self.inner.send(frame)?;
        if fires(seed, DOMAIN_DUP, self.profile.duplicate_one_in, key, op) {
            self.stats.duplicates += 1;
            self.inner.send(frame)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if !self.connected {
            return Err(TransportError::Disconnected);
        }
        self.inner.recv()
    }

    fn close(&mut self) {
        self.connected = false;
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::memory_pair;

    #[test]
    fn benign_profile_is_pass_through() {
        let (t, peer) = memory_pair();
        let mut f = FaultyTransport::new(t, TransportFaultProfile::benign(1));
        f.connect().expect("connect");
        f.send(b"frame").expect("send");
        assert_eq!(peer.take_frames(), vec![b"frame".to_vec()]);
        assert_eq!(f.stats(), FaultStats::default());
    }

    #[test]
    fn chaos_profile_is_deterministic() {
        let run = |seed: u64| {
            let (t, _peer) = memory_pair();
            let mut f = FaultyTransport::new(t, TransportFaultProfile::chaos(seed));
            let mut outcomes = Vec::new();
            for i in 0..64u64 {
                if !matches!(f.connect(), Ok(())) {
                    outcomes.push(2u8);
                    continue;
                }
                for _ in 0..4 {
                    outcomes.push(match f.send(&i.to_le_bytes()) {
                        Ok(()) => 0,
                        Err(TransportError::Busy) => 1,
                        Err(_) => 3,
                    });
                }
            }
            (outcomes, f.stats())
        };
        assert_eq!(run(42), run(42), "same seed, same fault schedule");
        assert_ne!(run(42).0, run(43).0, "different seeds diverge");
    }

    #[test]
    fn armed_disconnect_fires_exactly_once_at_index() {
        let (t, peer) = memory_pair();
        let mut profile = TransportFaultProfile::benign(7);
        profile.disconnect_at_send = Some(2);
        let mut f = FaultyTransport::new(t, profile);
        f.connect().expect("connect");
        f.send(b"0").expect("send 0");
        f.send(b"1").expect("send 1");
        assert_eq!(f.send(b"2"), Err(TransportError::Disconnected));
        f.connect().expect("reconnect");
        f.send(b"2").expect("resend 2");
        assert_eq!(
            peer.take_frames(),
            vec![b"0".to_vec(), b"1".to_vec(), b"2".to_vec()]
        );
        assert_eq!(f.stats().disconnects, 1);
    }
}
