//! The bridge proper: bounded egress ring, connection state machine,
//! exactly-once accounting, and idempotent command ingress.
//!
//! # Design invariants
//!
//! * **The mission never notices the bridge.** The bridge observes the
//!   mission only through a [`TraceSink`] (sinks are invisible to
//!   mission metrics and digests by construction) and keeps its own
//!   private [`Recorder`] for `bridge.*` metrics. Attaching a bridge —
//!   even one whose transport is on fire — cannot perturb the mission's
//!   `EndStateDigest` or metrics fingerprint.
//! * **No wall clock.** The bridge's time base is its own pump-tick
//!   counter; backoff and heartbeats are measured in ticks, and retry
//!   jitter comes from the seeded failpoint hash. Same seed + same
//!   event stream + same fault schedule ⇒ same bridge behaviour.
//! * **Exactly-once accounting.** Every frame offered to the sink is
//!   counted exactly once: `delivered + dropped + buffered == emitted`
//!   at every instant ([`BridgeReport::accounted`]). At-least-once on
//!   the wire (a send that errors is retried after reconnect, so
//!   consumers dedupe by `seq`), exactly-once in the ledger.
//! * **Idempotent ingress.** Commands carry `(src, seq)`; each is
//!   applied at most once, duplicates and stale replays are counted
//!   and dropped, and torn frames are rejected with typed errors.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use iobt_core::TaskBoard;
use iobt_faults::failpoint::failpoint_hash;
use iobt_obs::{MetricsDigest, Recorder, TraceEvent, TraceRecord, TraceSink};
use iobt_types::NodeId;

use crate::frame::{encode_frame, parse_command, CommandAction};
use crate::transport::{Transport, TransportError};

/// Failpoint domain for reconnect jitter (bridge-local).
const DOMAIN_JITTER: u64 = 0x42_10;

/// What to do when a frame arrives and the egress ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Evict the oldest buffered frame to make room (freshness wins).
    DropOldest,
    /// Reject the incoming frame (history wins).
    DropNewest,
    /// Try to flush the ring inline, up to `deadline` transport
    /// attempts; if no slot frees up, fall back to dropping the
    /// incoming frame (counted as `block_timeout`). Deterministic: the
    /// "deadline" is an attempt budget, not a wall-clock wait.
    Block {
        /// Maximum inline flush attempts before giving up on the frame.
        deadline: u64,
    },
}

/// Bridge connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Transport up, frames flowing.
    Connected,
    /// Transport up but back-pressured (last send stalled); the bridge
    /// keeps buffering and retries without reconnecting.
    Degraded,
    /// Transport down; reconnect attempts are being paced by capped
    /// exponential backoff with seeded jitter.
    Reconnecting,
    /// The reconnect budget is exhausted: the bridge has detached. The
    /// mission continues; frames offered from here on are counted and
    /// discarded.
    GaveUp,
}

impl fmt::Display for ConnState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConnState::Connected => "connected",
            ConnState::Degraded => "degraded",
            ConnState::Reconnecting => "reconnecting",
            ConnState::GaveUp => "gave_up",
        };
        write!(f, "{s}")
    }
}

/// Typed bridge failure, surfaced by the draining helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeError {
    /// The bridge exhausted its reconnect budget and detached,
    /// discarding the buffered frames.
    GaveUp {
        /// Frames discarded when the bridge detached.
        discarded: u64,
    },
    /// The tick budget ran out before the ring drained.
    Timeout {
        /// Frames still buffered when the budget ran out.
        buffered: u64,
    },
    /// A transport-level failure (carried for callers that drive the
    /// transport directly).
    Transport(TransportError),
}

impl fmt::Display for BridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BridgeError::GaveUp { discarded } => {
                write!(f, "bridge gave up; discarded {discarded} frames")
            }
            BridgeError::Timeout { buffered } => {
                write!(f, "drain budget exhausted; {buffered} frames buffered")
            }
            BridgeError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Bridge configuration. All durations are pump ticks, never wall
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeConfig {
    /// Mission id used in the topic hierarchy (`iobt/<mission>/…`).
    pub mission: u64,
    /// Seed for reconnect jitter (and nothing else).
    pub seed: u64,
    /// Egress ring capacity in frames (minimum 1).
    pub ring_capacity: usize,
    /// What to do when the ring is full.
    pub overflow: OverflowPolicy,
    /// First reconnect backoff, in ticks.
    pub backoff_base: u64,
    /// Backoff ceiling, in ticks.
    pub backoff_cap: u64,
    /// Consecutive failed reconnect attempts before the bridge gives
    /// up and detaches.
    pub max_attempts: u64,
    /// Emit a liveness heartbeat every N ticks while connected
    /// (0 disables).
    pub heartbeat_every: u64,
    /// Maximum frames pushed to the transport per pump tick.
    pub batch_per_tick: usize,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            mission: 0,
            seed: 0,
            ring_capacity: 1024,
            overflow: OverflowPolicy::DropOldest,
            backoff_base: 1,
            backoff_cap: 64,
            max_attempts: 8,
            heartbeat_every: 16,
            batch_per_tick: 32,
        }
    }
}

/// Snapshot of the bridge's ledger and state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeReport {
    /// Frames offered to the sink (heartbeats excluded).
    pub emitted: u64,
    /// Frames the transport accepted.
    pub delivered: u64,
    /// Frames dropped (overflow, block timeout, give-up discard).
    pub dropped: u64,
    /// Frames currently buffered in the ring.
    pub buffered: u64,
    /// Liveness heartbeats sent (outside the frame ledger).
    pub heartbeats: u64,
    /// Successful connects.
    pub connects: u64,
    /// Reconnect attempts that failed and were backed off.
    pub retries: u64,
    /// Current connection state.
    pub state: ConnState,
    /// Ingress commands accepted (applied when a task board is
    /// attached).
    pub cmds_applied: u64,
    /// Ingress duplicates/stale replays rejected by the `(src, seq)`
    /// dedup window.
    pub cmds_dup: u64,
    /// Ingress frames rejected as unparseable or unknown.
    pub cmds_rejected: u64,
}

impl BridgeReport {
    /// The exactly-once ledger invariant: every emitted frame is in
    /// exactly one of delivered / dropped / buffered.
    pub fn accounted(&self) -> bool {
        self.delivered + self.dropped + self.buffered == self.emitted
    }
}

struct BridgeCore {
    config: BridgeConfig,
    transport: Box<dyn Transport>,
    recorder: Recorder,
    state: ConnState,
    ring: VecDeque<String>,
    emitted: u64,
    delivered: u64,
    dropped: u64,
    heartbeats: u64,
    connects: u64,
    retries: u64,
    /// Consecutive failed reconnect attempts in the current outage.
    attempts: u64,
    /// Pump-tick counter: the bridge's only clock.
    tick: u64,
    /// Earliest tick at which the next reconnect may be attempted.
    next_retry_at: u64,
    board: Option<TaskBoard>,
    /// Highest applied sequence number per command source.
    last_seq: BTreeMap<u64, u64>,
    cmds_applied: u64,
    cmds_dup: u64,
    cmds_rejected: u64,
}

impl BridgeCore {
    fn record(&self, event: TraceEvent) {
        self.recorder.record_at(self.tick, event);
    }

    /// Accepts one encoded frame from the sink, applying the overflow
    /// policy. This is the only entry point that grows `emitted`.
    fn offer(&mut self, frame: String) {
        self.emitted += 1;
        self.recorder.inc("bridge.emitted", 1);
        if self.state == ConnState::GaveUp {
            // Detached: count and discard, no per-frame event spam.
            self.dropped += 1;
            self.recorder.inc("bridge.dropped", 1);
            return;
        }
        if self.ring.len() < self.config.ring_capacity.max(1) {
            self.ring.push_back(frame);
            return;
        }
        match self.config.overflow {
            OverflowPolicy::DropOldest => {
                self.ring.pop_front();
                self.dropped += 1;
                self.record(TraceEvent::BridgeDrop {
                    cause: "overflow_oldest",
                    frames: 1,
                });
                self.ring.push_back(frame);
            }
            OverflowPolicy::DropNewest => {
                self.dropped += 1;
                self.record(TraceEvent::BridgeDrop {
                    cause: "overflow_newest",
                    frames: 1,
                });
            }
            OverflowPolicy::Block { deadline } => {
                for _ in 0..deadline {
                    if self.state != ConnState::Connected && self.state != ConnState::Degraded {
                        break;
                    }
                    if self.flush_front() && self.ring.len() < self.config.ring_capacity.max(1) {
                        self.ring.push_back(frame);
                        return;
                    }
                }
                self.dropped += 1;
                self.record(TraceEvent::BridgeDrop {
                    cause: "block_timeout",
                    frames: 1,
                });
            }
        }
    }

    /// Tries to push the front frame to the transport. Returns true on
    /// delivery; on failure updates the connection state.
    fn flush_front(&mut self) -> bool {
        let Some(front) = self.ring.front() else {
            return false;
        };
        match self.transport.send(front.as_bytes()) {
            Ok(()) => {
                self.ring.pop_front();
                self.delivered += 1;
                self.recorder.inc("bridge.delivered", 1);
                if self.state == ConnState::Degraded {
                    self.state = ConnState::Connected;
                }
                true
            }
            Err(e) => {
                self.on_send_failure(e);
                false
            }
        }
    }

    fn on_send_failure(&mut self, e: TransportError) {
        match e {
            TransportError::Busy => self.state = ConnState::Degraded,
            TransportError::Disconnected | TransportError::Refused => self.begin_reconnect(),
        }
    }

    fn begin_reconnect(&mut self) {
        self.transport.close();
        self.state = ConnState::Reconnecting;
        self.attempts = 0;
        self.next_retry_at = self.tick + 1;
    }

    /// One reconnect attempt, paced by the backoff schedule.
    fn try_reconnect(&mut self) {
        if self.tick < self.next_retry_at {
            return;
        }
        match self.transport.connect() {
            Ok(()) => {
                self.state = ConnState::Connected;
                self.connects += 1;
                self.attempts = 0;
                self.record(TraceEvent::BridgeConnect {
                    attempt: self.connects,
                });
            }
            Err(_) => {
                self.attempts += 1;
                self.retries += 1;
                if self.attempts >= self.config.max_attempts.max(1) {
                    self.give_up();
                    return;
                }
                // Capped exponential backoff with seeded jitter: the
                // jitter term is a pure function of (seed, connect
                // generation, attempt), so two same-seed runs back off
                // identically.
                let exp = (self.attempts - 1).min(16) as u32;
                let base = self
                    .config
                    .backoff_base
                    .max(1)
                    .saturating_mul(1u64 << exp)
                    .min(self.config.backoff_cap.max(1));
                let jitter =
                    failpoint_hash(self.config.seed, DOMAIN_JITTER, self.connects, self.attempts)
                        % (base / 2 + 1);
                let backoff = base + jitter;
                self.next_retry_at = self.tick + backoff;
                self.record(TraceEvent::BridgeRetry {
                    attempt: self.attempts,
                    backoff_ticks: backoff,
                });
            }
        }
    }

    /// Detach: discard the ring (counted), emit the terminal events,
    /// and stop driving the transport. The mission is unaffected.
    fn give_up(&mut self) {
        let discarded = self.ring.len() as u64;
        if discarded > 0 {
            self.dropped += discarded;
            self.ring.clear();
            self.record(TraceEvent::BridgeDrop {
                cause: "gave_up",
                frames: discarded,
            });
        }
        self.record(TraceEvent::BridgeGaveUp {
            attempts: self.attempts,
            discarded,
        });
        self.transport.close();
        self.state = ConnState::GaveUp;
    }

    fn maybe_heartbeat(&mut self) {
        let every = self.config.heartbeat_every;
        if every == 0 || self.state != ConnState::Connected || !self.tick.is_multiple_of(every) {
            return;
        }
        let beat = format!(
            "{{\"topic\":\"iobt/{}/-/heartbeat\",\"tick\":{},\"buffered\":{}}}\n",
            self.config.mission,
            self.tick,
            self.ring.len()
        );
        match self.transport.send(beat.as_bytes()) {
            Ok(()) => {
                self.heartbeats += 1;
                self.recorder.inc("bridge.heartbeats", 1);
            }
            Err(e) => self.on_send_failure(e),
        }
    }

    /// Polls the transport for inbound tasking commands and applies
    /// each `(src, seq)` at most once.
    fn poll_ingress(&mut self) {
        for _ in 0..self.config.batch_per_tick.max(1) {
            if self.state != ConnState::Connected && self.state != ConnState::Degraded {
                return;
            }
            match self.transport.recv() {
                Ok(Some(frame)) => self.handle_command(&frame),
                Ok(None) | Err(TransportError::Busy) => return,
                Err(_) => {
                    self.begin_reconnect();
                    return;
                }
            }
        }
    }

    fn handle_command(&mut self, frame: &[u8]) {
        let cmd = match parse_command(frame) {
            Ok(cmd) => cmd,
            Err(_) => {
                self.cmds_rejected += 1;
                self.recorder.inc("bridge.cmd_rejected", 1);
                return;
            }
        };
        if let Some(&last) = self.last_seq.get(&cmd.src) {
            if cmd.seq <= last {
                self.cmds_dup += 1;
                self.record(TraceEvent::BridgeCmdDup {
                    src: cmd.src,
                    seq: cmd.seq,
                    stale: cmd.seq < last,
                });
                return;
            }
        }
        self.last_seq.insert(cmd.src, cmd.seq);
        match cmd.action {
            CommandAction::Assign { node } => {
                if let Some(board) = &self.board {
                    board.borrow_mut().assign(NodeId::new(node));
                }
            }
        }
        self.cmds_applied += 1;
        self.recorder.inc("bridge.cmd_applied", 1);
    }

    /// One pump tick: advance the clock, run the state machine, move
    /// at most `batch_per_tick` frames, poll ingress.
    fn pump(&mut self) -> ConnState {
        self.tick += 1;
        match self.state {
            ConnState::GaveUp => {}
            ConnState::Reconnecting => self.try_reconnect(),
            ConnState::Connected | ConnState::Degraded => {}
        }
        if self.state == ConnState::Connected || self.state == ConnState::Degraded {
            // A degraded transport gets one probe per tick; success
            // flips back to Connected inside flush_front.
            self.maybe_heartbeat();
            for _ in 0..self.config.batch_per_tick.max(1) {
                if self.ring.is_empty()
                    || (self.state != ConnState::Connected && self.state != ConnState::Degraded)
                {
                    break;
                }
                if !self.flush_front() {
                    break;
                }
            }
            self.poll_ingress();
        }
        self.state
    }

    fn report(&self) -> BridgeReport {
        BridgeReport {
            emitted: self.emitted,
            delivered: self.delivered,
            dropped: self.dropped,
            buffered: self.ring.len() as u64,
            heartbeats: self.heartbeats,
            connects: self.connects,
            retries: self.retries,
            state: self.state,
            cmds_applied: self.cmds_applied,
            cmds_dup: self.cmds_dup,
            cmds_rejected: self.cmds_rejected,
        }
    }
}

/// The edge bridge: drains mission trace events onto a topic hierarchy
/// over a pluggable [`Transport`], and feeds external tasking commands
/// back through the mission's acked `TaskBoard` path.
///
/// Cheap to clone (shared handle). Create with [`Bridge::new`], attach
/// its [`Bridge::sink`] to the *mission's* recorder, and call
/// [`Bridge::pump`] between mission windows (or whenever the host
/// loop likes — the bridge has no clock of its own).
#[derive(Clone)]
pub struct Bridge {
    core: Rc<RefCell<BridgeCore>>,
}

impl Bridge {
    /// Creates a bridge with a metrics-only private recorder.
    pub fn new(config: BridgeConfig, transport: Box<dyn Transport>) -> Self {
        Bridge::with_recorder(config, transport, Recorder::null())
    }

    /// Creates a bridge that records its own `bridge.*` events and
    /// metrics into `recorder` (NEVER pass the mission's recorder:
    /// the bridge keeps a separate ledger precisely so attaching it
    /// cannot perturb mission digests).
    pub fn with_recorder(
        config: BridgeConfig,
        transport: Box<dyn Transport>,
        recorder: Recorder,
    ) -> Self {
        Bridge {
            core: Rc::new(RefCell::new(BridgeCore {
                config,
                transport,
                recorder,
                // Starts disconnected; the first pump dials out.
                state: ConnState::Reconnecting,
                ring: VecDeque::new(),
                emitted: 0,
                delivered: 0,
                dropped: 0,
                heartbeats: 0,
                connects: 0,
                retries: 0,
                attempts: 0,
                tick: 0,
                next_retry_at: 0,
                board: None,
                last_seq: BTreeMap::new(),
                cmds_applied: 0,
                cmds_dup: 0,
                cmds_rejected: 0,
            })),
        }
    }

    /// The sink to attach to the mission recorder
    /// (`Recorder::with_sink(Box::new(bridge.sink()))`).
    pub fn sink(&self) -> BridgeSink {
        BridgeSink {
            core: Rc::clone(&self.core),
        }
    }

    /// Attaches the mission's task board so ingress `assign` commands
    /// enter the acked tasking path
    /// (see `MissionRunner::task_board`).
    pub fn attach_board(&self, board: TaskBoard) {
        self.core.borrow_mut().board = Some(board);
    }

    /// One pump tick; returns the state after the tick.
    pub fn pump(&self) -> ConnState {
        self.core.borrow_mut().pump()
    }

    /// Pumps `n` ticks; returns the final state.
    pub fn pump_n(&self, n: u64) -> ConnState {
        let mut core = self.core.borrow_mut();
        let mut state = core.state;
        for _ in 0..n {
            state = core.pump();
        }
        state
    }

    /// Pumps until the ring is empty, the bridge gives up, or
    /// `max_ticks` elapse. Returns the ticks consumed.
    pub fn drain(&self, max_ticks: u64) -> Result<u64, BridgeError> {
        let mut core = self.core.borrow_mut();
        for used in 0..max_ticks {
            if core.ring.is_empty() && core.state == ConnState::Connected {
                return Ok(used);
            }
            if core.state == ConnState::GaveUp {
                return Err(BridgeError::GaveUp {
                    discarded: core.dropped,
                });
            }
            core.pump();
        }
        if core.ring.is_empty() {
            Ok(max_ticks)
        } else if core.state == ConnState::GaveUp {
            Err(BridgeError::GaveUp {
                discarded: core.dropped,
            })
        } else {
            Err(BridgeError::Timeout {
                buffered: core.ring.len() as u64,
            })
        }
    }

    /// Current connection state.
    pub fn state(&self) -> ConnState {
        self.core.borrow().state
    }

    /// Ledger snapshot.
    pub fn report(&self) -> BridgeReport {
        self.core.borrow().report()
    }

    /// Digest of the bridge's private `bridge.*` metrics.
    pub fn metrics_digest(&self) -> MetricsDigest {
        self.core.borrow().recorder.metrics_digest()
    }
}

impl fmt::Debug for Bridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.report();
        f.debug_struct("Bridge")
            .field("state", &r.state)
            .field("emitted", &r.emitted)
            .field("delivered", &r.delivered)
            .field("dropped", &r.dropped)
            .field("buffered", &r.buffered)
            .finish()
    }
}

/// The [`TraceSink`] face of the bridge: encodes each record onto its
/// topic and offers it to the egress ring. Attach to the mission
/// recorder; the mission's own metrics/digests are unaffected by
/// anything this sink does.
pub struct BridgeSink {
    core: Rc<RefCell<BridgeCore>>,
}

impl TraceSink for BridgeSink {
    fn accept(&mut self, record: &TraceRecord) {
        let mut core = self.core.borrow_mut();
        let frame = encode_frame(core.config.mission, record);
        core.offer(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::memory_pair;
    use iobt_obs::TraceEvent;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            t_us: seq * 10,
            seq,
            event: TraceEvent::MsgSent { from: seq, to: 0 },
        }
    }

    fn bridge_with(config: BridgeConfig) -> (Bridge, crate::transport::MemoryEndpoint) {
        let (t, peer) = memory_pair();
        (Bridge::new(config, Box::new(t)), peer)
    }

    #[test]
    fn frames_flow_end_to_end_with_exact_accounting() {
        let (bridge, peer) = bridge_with(BridgeConfig {
            mission: 7,
            ..BridgeConfig::default()
        });
        let mut sink = bridge.sink();
        for i in 0..5 {
            sink.accept(&rec(i));
        }
        bridge.drain(100).expect("drain");
        let frames = peer.take_frames();
        assert_eq!(frames.len(), 5);
        let first = String::from_utf8(frames[0].clone()).expect("utf8");
        assert!(first.starts_with("{\"topic\":\"iobt/7/0/msg_sent\""));
        let r = bridge.report();
        assert!(r.accounted(), "ledger must balance: {r:?}");
        assert_eq!(r.delivered, 5);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn drop_oldest_keeps_freshest_and_counts() {
        let (bridge, _peer) = bridge_with(BridgeConfig {
            ring_capacity: 2,
            overflow: OverflowPolicy::DropOldest,
            heartbeat_every: 0,
            ..BridgeConfig::default()
        });
        let mut sink = bridge.sink();
        for i in 0..5 {
            sink.accept(&rec(i));
        }
        let r = bridge.report();
        assert_eq!(r.emitted, 5);
        assert_eq!(r.dropped, 3);
        assert_eq!(r.buffered, 2);
        assert!(r.accounted());
        assert_eq!(bridge.metrics_digest().counter("bridge.dropped"), Some(3));
    }

    #[test]
    fn gave_up_detaches_and_keeps_counting() {
        let (bridge, peer) = bridge_with(BridgeConfig {
            max_attempts: 2,
            backoff_base: 1,
            backoff_cap: 1,
            ..BridgeConfig::default()
        });
        peer.refuse_connects(true);
        let mut sink = bridge.sink();
        sink.accept(&rec(0));
        assert!(matches!(bridge.drain(100), Err(BridgeError::GaveUp { .. })));
        assert_eq!(bridge.state(), ConnState::GaveUp);
        // Post-detach frames are counted, not buffered.
        sink.accept(&rec(1));
        let r = bridge.report();
        assert_eq!(r.emitted, 2);
        assert_eq!(r.dropped, 2);
        assert_eq!(r.buffered, 0);
        assert!(r.accounted());
    }

    #[test]
    fn ingress_commands_are_idempotent() {
        let (bridge, peer) = bridge_with(BridgeConfig::default());
        let board = iobt_core::new_task_board();
        bridge.attach_board(board.clone());
        bridge.pump(); // connect
        let cmd = b"{\"src\":1,\"seq\":1,\"cmd\":\"assign\",\"node\":9}";
        peer.push_command(cmd);
        peer.push_command(cmd); // duplicate
        peer.push_command(b"{\"src\":1,\"seq\":0,\"cmd\":\"assign\",\"node\":9}"); // stale
        peer.push_command(b"torn{garbage"); // corrupt
        bridge.pump();
        let r = bridge.report();
        assert_eq!(r.cmds_applied, 1);
        assert_eq!(r.cmds_dup, 2);
        assert_eq!(r.cmds_rejected, 1);
        assert_eq!(bridge.metrics_digest().counter("bridge.cmd_dup"), Some(2));
    }

    #[test]
    fn reconnect_backs_off_and_recovers() {
        let (bridge, peer) = bridge_with(BridgeConfig {
            max_attempts: 10,
            ..BridgeConfig::default()
        });
        peer.refuse_connects(true);
        bridge.pump_n(5);
        assert_eq!(bridge.state(), ConnState::Reconnecting);
        assert!(bridge.report().retries > 0);
        peer.refuse_connects(false);
        bridge.pump_n(200);
        assert_eq!(bridge.state(), ConnState::Connected);
        assert_eq!(bridge.report().connects, 1);
    }
}
