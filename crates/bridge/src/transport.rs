//! Pluggable bridge transports.
//!
//! The bridge never talks to a socket directly; it drives a
//! [`Transport`], which is any byte-frame channel with explicit
//! connection state. Two implementations ship in-tree:
//!
//! * [`MemoryTransport`] — an in-process pair used by every test and by
//!   the chaos harness (wrapped in `FaultyTransport`). The peer end is
//!   a [`MemoryEndpoint`] the test drives directly.
//! * [`TcpTransport`] — a length-framed (`u32` little-endian prefix)
//!   TCP client for real consumers. Reads are non-blocking so the
//!   bridge's pump loop never stalls the mission thread.
//!
//! Every operation returns a typed [`TransportError`]; transports never
//! panic on peer misbehaviour.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::rc::Rc;

/// Hard upper bound on a single frame (1 MiB). A length prefix above
/// this is treated as a protocol violation, not an allocation request —
/// the guard that keeps a corrupt or hostile peer from OOMing the edge
/// daemon.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Typed transport failure. The bridge's connection state machine keys
/// off these: `Busy` degrades (retry next tick, same connection),
/// `Disconnected` and `Refused` trigger the reconnect/backoff path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The connection is down (peer closed, send failed, link cut).
    Disconnected,
    /// The transport is temporarily unable to make progress; the same
    /// operation may succeed on a later tick without reconnecting.
    Busy,
    /// A connection attempt was rejected outright.
    Refused,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::Busy => write!(f, "transport busy"),
            TransportError::Refused => write!(f, "connection refused"),
        }
    }
}

/// A byte-frame channel with explicit connection state.
///
/// Frame boundaries are preserved: one `send` on this side is one
/// `recv` on the peer (modulo injected faults). Implementations must
/// not block indefinitely in `recv` — return `Ok(None)` when no frame
/// is pending.
pub trait Transport {
    /// Establishes (or re-establishes) the connection.
    fn connect(&mut self) -> Result<(), TransportError>;

    /// Sends one frame. On error the frame is NOT considered delivered;
    /// the caller decides whether to retry (at-least-once egress).
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError>;

    /// Polls for one inbound frame. `Ok(None)` means no frame pending.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError>;

    /// Tears the connection down. Idempotent.
    fn close(&mut self);
}

// ---------------------------------------------------------------------------
// In-memory pair
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemoryLink {
    /// Frames travelling bridge → consumer.
    egress: VecDeque<Vec<u8>>,
    /// Frames travelling consumer → bridge (tasking commands).
    ingress: VecDeque<Vec<u8>>,
    connected: bool,
    /// When true, the next (and every subsequent) connect is refused
    /// until the test lifts it.
    refuse_connect: bool,
    connects: u64,
}

/// Bridge-side end of an in-memory transport pair.
#[derive(Debug)]
pub struct MemoryTransport(Rc<RefCell<MemoryLink>>);

/// Consumer-side end of an in-memory transport pair: what the "cloud"
/// sees. Tests read egress frames, push tasking commands, and cut the
/// link from here.
#[derive(Debug, Clone)]
pub struct MemoryEndpoint(Rc<RefCell<MemoryLink>>);

/// Creates a connected-in-potential in-memory pair. The bridge side
/// still has to call [`Transport::connect`] before frames flow.
pub fn memory_pair() -> (MemoryTransport, MemoryEndpoint) {
    let link = Rc::new(RefCell::new(MemoryLink::default()));
    (MemoryTransport(Rc::clone(&link)), MemoryEndpoint(link))
}

impl Transport for MemoryTransport {
    fn connect(&mut self) -> Result<(), TransportError> {
        let mut link = self.0.borrow_mut();
        if link.refuse_connect {
            return Err(TransportError::Refused);
        }
        link.connected = true;
        link.connects += 1;
        Ok(())
    }

    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        let mut link = self.0.borrow_mut();
        if !link.connected {
            return Err(TransportError::Disconnected);
        }
        link.egress.push_back(frame.to_vec());
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut link = self.0.borrow_mut();
        if !link.connected {
            return Err(TransportError::Disconnected);
        }
        Ok(link.ingress.pop_front())
    }

    fn close(&mut self) {
        self.0.borrow_mut().connected = false;
    }
}

impl MemoryEndpoint {
    /// Drains every egress frame the bridge has delivered so far.
    pub fn take_frames(&self) -> Vec<Vec<u8>> {
        self.0.borrow_mut().egress.drain(..).collect()
    }

    /// Number of egress frames waiting to be taken.
    pub fn pending(&self) -> usize {
        self.0.borrow().egress.len()
    }

    /// Queues a tasking command for the bridge's next ingress poll.
    pub fn push_command(&self, frame: &[u8]) {
        self.0.borrow_mut().ingress.push_back(frame.to_vec());
    }

    /// Cuts the link: the bridge's next send/recv fails with
    /// `Disconnected` until it reconnects.
    pub fn drop_link(&self) {
        self.0.borrow_mut().connected = false;
    }

    /// True while the bridge side holds an open connection.
    pub fn is_connected(&self) -> bool {
        self.0.borrow().connected
    }

    /// When `refuse` is set, every subsequent connect attempt is
    /// rejected with `Refused` until lifted.
    pub fn refuse_connects(&self, refuse: bool) {
        self.0.borrow_mut().refuse_connect = refuse;
    }

    /// Number of successful connects the bridge has made on this link.
    pub fn connects(&self) -> u64 {
        self.0.borrow().connects
    }
}

// ---------------------------------------------------------------------------
// Length-framed TCP
// ---------------------------------------------------------------------------

/// Encodes one frame for the TCP wire: `u32` little-endian payload
/// length, then the payload. Shared by [`TcpTransport`] and any
/// consumer that writes commands back.
pub fn encode_framed(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Blocking read of one length-framed frame from any reader — the
/// consumer-side helper (the bridge itself polls non-blocking).
/// Returns `Ok(None)` on clean EOF at a frame boundary; a length
/// prefix above [`MAX_FRAME_LEN`] is an `InvalidData` error.
pub fn read_framed<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Length-framed TCP client transport.
///
/// Writes are blocking (a partially written frame would desync the
/// peer's framing); reads flip the socket to non-blocking for the
/// duration of the poll and accumulate partial reads in an internal
/// buffer, only surfacing complete frames — a slow or torn sender can
/// never hand the bridge half a frame.
#[derive(Debug)]
pub struct TcpTransport {
    addr: String,
    stream: Option<TcpStream>,
    /// Reassembly buffer for partially received frames.
    rx: Vec<u8>,
}

impl TcpTransport {
    /// Creates a transport that will dial `addr` (e.g. `"127.0.0.1:7070"`)
    /// on every [`Transport::connect`].
    pub fn new(addr: impl Into<String>) -> Self {
        TcpTransport {
            addr: addr.into(),
            stream: None,
            rx: Vec::new(),
        }
    }

    /// Drains whatever the socket has ready right now (it is already
    /// in non-blocking mode) and surfaces the first complete frame.
    fn poll_nonblocking(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut buf = [0u8; 4096];
        loop {
            let stream = self.stream.as_mut().ok_or(TransportError::Disconnected)?;
            match stream.read(&mut buf) {
                Ok(0) => {
                    self.close();
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => {
                    self.rx.extend_from_slice(&buf[..n]);
                    if let Some(frame) = self.pop_frame()? {
                        return Ok(Some(frame));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close();
                    return Err(TransportError::Disconnected);
                }
            }
        }
    }

    /// Pops one complete frame out of the reassembly buffer, if any.
    fn pop_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if self.rx.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.rx[0], self.rx[1], self.rx[2], self.rx[3]]) as usize;
        if len > MAX_FRAME_LEN {
            // Protocol violation: resynchronising is hopeless, drop the
            // connection rather than trust the stream again.
            self.close();
            return Err(TransportError::Disconnected);
        }
        if self.rx.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.rx[4..4 + len].to_vec();
        self.rx.drain(..4 + len);
        Ok(Some(payload))
    }
}

impl Transport for TcpTransport {
    fn connect(&mut self) -> Result<(), TransportError> {
        self.close();
        let stream = TcpStream::connect(&self.addr).map_err(|e| match e.kind() {
            io::ErrorKind::ConnectionRefused => TransportError::Refused,
            _ => TransportError::Disconnected,
        })?;
        self.stream = Some(stream);
        self.rx.clear();
        Ok(())
    }

    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        let stream = self.stream.as_mut().ok_or(TransportError::Disconnected)?;
        let wire = encode_framed(frame);
        match stream.write_all(&wire) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Err(TransportError::Busy),
            Err(_) => {
                self.close();
                Err(TransportError::Disconnected)
            }
        }
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if self.stream.is_none() {
            return Err(TransportError::Disconnected);
        }
        if let Some(frame) = self.pop_frame()? {
            return Ok(Some(frame));
        }
        // Poll without blocking, then restore blocking mode so sends
        // keep their whole-frame write guarantee.
        if let Some(s) = self.stream.as_ref() {
            if s.set_nonblocking(true).is_err() {
                self.close();
                return Err(TransportError::Disconnected);
            }
        }
        let polled = self.poll_nonblocking();
        if let Some(s) = self.stream.as_ref() {
            if s.set_nonblocking(false).is_err() {
                self.close();
                return Err(TransportError::Disconnected);
            }
        }
        polled
    }

    fn close(&mut self) {
        self.stream = None;
        self.rx.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pair_round_trips_frames_in_order() {
        let (mut t, peer) = memory_pair();
        assert_eq!(t.send(b"early"), Err(TransportError::Disconnected));
        t.connect().expect("connect");
        t.send(b"a").expect("send a");
        t.send(b"b").expect("send b");
        assert_eq!(peer.take_frames(), vec![b"a".to_vec(), b"b".to_vec()]);
        peer.push_command(b"cmd");
        assert_eq!(t.recv().expect("recv"), Some(b"cmd".to_vec()));
        assert_eq!(t.recv().expect("recv"), None);
    }

    #[test]
    fn memory_pair_link_cut_and_refusal() {
        let (mut t, peer) = memory_pair();
        t.connect().expect("connect");
        peer.drop_link();
        assert_eq!(t.send(b"x"), Err(TransportError::Disconnected));
        peer.refuse_connects(true);
        assert_eq!(t.connect(), Err(TransportError::Refused));
        peer.refuse_connects(false);
        t.connect().expect("reconnect");
        assert_eq!(peer.connects(), 2);
    }

    #[test]
    fn framed_codec_round_trips_and_guards_length() {
        let wire = encode_framed(b"hello");
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(
            read_framed(&mut cursor).expect("read"),
            Some(b"hello".to_vec())
        );
        assert_eq!(read_framed(&mut cursor).expect("eof"), None);

        let mut bogus = io::Cursor::new((u32::MAX).to_le_bytes().to_vec());
        assert!(read_framed(&mut bogus).is_err());
    }
}
