//! Byzantine attack models against distributed learning.
//!
//! §V-B: "an adversary may control red/gray nodes and … supply malicious
//! inputs (i.e., inputs modified to yield erroneous model outputs)". Each
//! attack consumes the honest workers' gradients and produces what the
//! compromised workers submit instead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// What compromised workers submit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ByzantineAttack {
    /// Submit the negated honest mean, scaled by `scale` — drives the
    /// model backwards.
    SignFlip {
        /// Magnification of the reversed gradient.
        scale: f64,
    },
    /// Submit pure Gaussian noise with the given standard deviation.
    GaussianNoise {
        /// Noise standard deviation.
        std: f64,
    },
    /// "A little is enough"-style collusion: all attackers submit the
    /// honest mean shifted by `z` honest standard deviations per
    /// coordinate — crafted to stay inside robust aggregators' tolerance
    /// while still biasing the result.
    Collusion {
        /// Shift in per-coordinate standard deviations.
        z: f64,
    },
}

impl ByzantineAttack {
    /// Produces the gradients submitted by `num_attackers` compromised
    /// workers, given the honest gradients this round.
    ///
    /// Returns an empty vector when `honest` is empty.
    pub fn forge(
        &self,
        honest: &[Vec<f64>],
        num_attackers: usize,
        seed: u64,
    ) -> Vec<Vec<f64>> {
        if honest.is_empty() || num_attackers == 0 {
            return Vec::new();
        }
        let dim = honest[0].len();
        let mean = crate::aggregate::mean(honest);
        match *self {
            ByzantineAttack::SignFlip { scale } => {
                let forged: Vec<f64> = mean.iter().map(|v| -scale * v).collect();
                vec![forged; num_attackers]
            }
            ByzantineAttack::GaussianNoise { std } => {
                let mut rng = StdRng::seed_from_u64(seed);
                // lint: allow(panic) — std is clamped to at least 1e-12, so the distribution is valid
                let normal = Normal::new(0.0, std.max(1e-12)).expect("finite std");
                (0..num_attackers)
                    .map(|_| (0..dim).map(|_| normal.sample(&mut rng)).collect())
                    .collect()
            }
            ByzantineAttack::Collusion { z } => {
                // Per-coordinate honest standard deviation.
                let n = honest.len() as f64;
                let mut var = vec![0.0; dim];
                for g in honest {
                    for (v, (gi, mi)) in var.iter_mut().zip(g.iter().zip(&mean)) {
                        *v += (gi - mi) * (gi - mi) / n;
                    }
                }
                let forged: Vec<f64> = mean
                    .iter()
                    .zip(&var)
                    .map(|(m, v)| m - z * v.sqrt())
                    .collect();
                vec![forged; num_attackers]
            }
        }
    }
}

impl std::fmt::Display for ByzantineAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ByzantineAttack::SignFlip { scale } => write!(f, "sign-flip(x{scale})"),
            ByzantineAttack::GaussianNoise { std } => write!(f, "gaussian(std={std})"),
            ByzantineAttack::Collusion { z } => write!(f, "collusion(z={z})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest() -> Vec<Vec<f64>> {
        vec![vec![1.0, -1.0], vec![1.2, -0.8], vec![0.8, -1.2]]
    }

    #[test]
    fn sign_flip_reverses_mean() {
        let forged = ByzantineAttack::SignFlip { scale: 2.0 }.forge(&honest(), 2, 0);
        assert_eq!(forged.len(), 2);
        assert!((forged[0][0] + 2.0).abs() < 1e-9);
        assert!((forged[0][1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noise_attack_is_deterministic_per_seed() {
        let attack = ByzantineAttack::GaussianNoise { std: 5.0 };
        assert_eq!(attack.forge(&honest(), 3, 7), attack.forge(&honest(), 3, 7));
        assert_ne!(attack.forge(&honest(), 3, 7), attack.forge(&honest(), 3, 8));
    }

    #[test]
    fn collusion_stays_near_the_honest_cloud() {
        let forged = ByzantineAttack::Collusion { z: 1.5 }.forge(&honest(), 2, 0);
        // Shifted by 1.5 sigma: close to but below the mean.
        let mean = crate::aggregate::mean(&honest());
        assert!(forged[0][0] < mean[0]);
        assert!((forged[0][0] - mean[0]).abs() < 1.0, "small shift");
        assert_eq!(forged[0], forged[1], "attackers collude identically");
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let attack = ByzantineAttack::SignFlip { scale: 1.0 };
        assert!(attack.forge(&[], 3, 0).is_empty());
        assert!(attack.forge(&honest(), 0, 0).is_empty());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            ByzantineAttack::SignFlip { scale: 10.0 }.to_string(),
            "sign-flip(x10)"
        );
    }
}
