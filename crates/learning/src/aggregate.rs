//! Byzantine-resilient gradient aggregation.
//!
//! §V-B: "new theories and algorithms are needed that … tolerate a wide
//! array of failures and adversarial compromises of learning nodes."
//! Implemented aggregators: plain [`mean`] (the fragile baseline),
//! [`coordinate_median`], [`trimmed_mean`], and [`krum`] (Blanchard et
//! al.'s distance-based selection).

use std::fmt;

/// An aggregation rule over worker gradient vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregator {
    /// Arithmetic mean (no Byzantine tolerance).
    Mean,
    /// Coordinate-wise median.
    Median,
    /// Coordinate-wise mean after trimming the `trim` largest and smallest
    /// values per coordinate.
    TrimmedMean {
        /// Number of values trimmed from each tail, per coordinate.
        trim: usize,
    },
    /// Krum: selects the vector minimizing the summed squared distance to
    /// its `n - f - 2` nearest neighbors.
    Krum {
        /// Assumed upper bound on the number of Byzantine workers.
        f: usize,
    },
}

impl fmt::Display for Aggregator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregator::Mean => write!(f, "mean"),
            Aggregator::Median => write!(f, "median"),
            Aggregator::TrimmedMean { trim } => write!(f, "trimmed-mean({trim})"),
            Aggregator::Krum { f: fb } => write!(f, "krum(f={fb})"),
        }
    }
}

impl Aggregator {
    /// Aggregates the gradient vectors. All vectors must share one
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics when `grads` is empty or dimensions are inconsistent.
    pub fn aggregate(&self, grads: &[Vec<f64>]) -> Vec<f64> {
        assert!(!grads.is_empty(), "need at least one gradient");
        let dim = grads[0].len();
        assert!(
            grads.iter().all(|g| g.len() == dim),
            "gradient dimensions must match"
        );
        match *self {
            Aggregator::Mean => mean(grads),
            Aggregator::Median => coordinate_median(grads),
            Aggregator::TrimmedMean { trim } => trimmed_mean(grads, trim),
            Aggregator::Krum { f } => krum(grads, f).clone(),
        }
    }
}

/// Arithmetic mean of the vectors.
///
/// # Panics
///
/// Panics when `grads` is empty.
pub fn mean(grads: &[Vec<f64>]) -> Vec<f64> {
    assert!(!grads.is_empty(), "need at least one gradient");
    let dim = grads[0].len();
    let mut out = vec![0.0; dim];
    for g in grads {
        for (o, v) in out.iter_mut().zip(g) {
            *o += v;
        }
    }
    let n = grads.len() as f64;
    for o in &mut out {
        *o /= n;
    }
    out
}

/// Coordinate-wise median (lower median for even counts).
///
/// # Panics
///
/// Panics when `grads` is empty.
pub fn coordinate_median(grads: &[Vec<f64>]) -> Vec<f64> {
    assert!(!grads.is_empty(), "need at least one gradient");
    let dim = grads[0].len();
    let mut out = vec![0.0; dim];
    let mut column = vec![0.0; grads.len()];
    for (c, o) in out.iter_mut().enumerate() {
        for (i, g) in grads.iter().enumerate() {
            column[i] = g[c];
        }
        column.sort_by(f64::total_cmp);
        *o = column[(column.len() - 1) / 2];
    }
    out
}

/// Coordinate-wise trimmed mean, removing `trim` values from each tail.
/// When `2 * trim >= n`, falls back to the coordinate median.
///
/// # Panics
///
/// Panics when `grads` is empty.
pub fn trimmed_mean(grads: &[Vec<f64>], trim: usize) -> Vec<f64> {
    assert!(!grads.is_empty(), "need at least one gradient");
    let n = grads.len();
    if 2 * trim >= n {
        return coordinate_median(grads);
    }
    let dim = grads[0].len();
    let mut out = vec![0.0; dim];
    let mut column = vec![0.0; n];
    for (c, o) in out.iter_mut().enumerate() {
        for (i, g) in grads.iter().enumerate() {
            column[i] = g[c];
        }
        column.sort_by(f64::total_cmp);
        let kept = &column[trim..n - trim];
        *o = kept.iter().sum::<f64>() / kept.len() as f64;
    }
    out
}

/// Krum selection: returns a reference to the vector with the smallest
/// summed squared distance to its `n - f - 2` nearest neighbors (clamped
/// to at least 1 neighbor). Ties resolve to the lower index.
///
/// # Panics
///
/// Panics when `grads` is empty.
pub fn krum(grads: &[Vec<f64>], f: usize) -> &Vec<f64> {
    assert!(!grads.is_empty(), "need at least one gradient");
    let n = grads.len();
    if n == 1 {
        return &grads[0];
    }
    let neighbors = n.saturating_sub(f + 2).max(1);
    let mut best_idx = 0;
    let mut best_score = f64::INFINITY;
    for i in 0..n {
        let mut dists: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| squared_distance(&grads[i], &grads[j]))
            .collect();
        dists.sort_by(f64::total_cmp);
        let score: f64 = dists.iter().take(neighbors).sum();
        if score < best_score {
            best_score = score;
            best_idx = i;
        }
    }
    &grads[best_idx]
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn honest_cluster(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![1.0 + 0.01 * i as f64, -2.0 - 0.01 * i as f64])
            .collect()
    }

    #[test]
    fn mean_is_exact() {
        let g = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(mean(&g), vec![2.0, 3.0]);
    }

    #[test]
    fn median_ignores_one_wild_outlier() {
        let mut g = honest_cluster(4);
        g.push(vec![1e9, -1e9]);
        let m = coordinate_median(&g);
        assert!(m[0] < 2.0 && m[0] > 0.5);
        assert!(m[1] > -3.0 && m[1] < -1.0);
    }

    #[test]
    fn trimmed_mean_removes_tails() {
        let mut g = honest_cluster(5);
        g.push(vec![1e6, 1e6]);
        g.push(vec![-1e6, -1e6]);
        let t = trimmed_mean(&g, 1);
        assert!((t[0] - 1.02).abs() < 0.05, "{t:?}");
    }

    #[test]
    fn trimmed_mean_falls_back_to_median() {
        let g = honest_cluster(3);
        assert_eq!(trimmed_mean(&g, 2), coordinate_median(&g));
    }

    #[test]
    fn krum_picks_an_honest_vector_under_attack() {
        let mut g = honest_cluster(7);
        g.push(vec![500.0, 500.0]);
        g.push(vec![-500.0, 500.0]);
        let selected = krum(&g, 2);
        assert!(selected[0] < 2.0, "krum must select from the cluster: {selected:?}");
    }

    #[test]
    fn mean_is_destroyed_by_one_attacker_but_krum_is_not() {
        let mut g = honest_cluster(9);
        g.push(vec![1e8, 1e8]);
        let m = mean(&g);
        let k = krum(&g, 1).clone();
        assert!(m[0] > 1e6, "mean is hijacked");
        assert!(k[0] < 2.0, "krum survives");
    }

    #[test]
    fn aggregator_enum_dispatch() {
        let g = honest_cluster(5);
        for agg in [
            Aggregator::Mean,
            Aggregator::Median,
            Aggregator::TrimmedMean { trim: 1 },
            Aggregator::Krum { f: 1 },
        ] {
            let out = agg.aggregate(&g);
            assert_eq!(out.len(), 2);
            assert!(out[0].is_finite());
            let _ = agg.to_string();
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_input_panics() {
        mean(&[]);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn ragged_input_panics() {
        Aggregator::Mean.aggregate(&[vec![1.0], vec![1.0, 2.0]]);
    }

    proptest! {
        #[test]
        fn median_and_trimmed_bounded_by_extremes(
            grads in proptest::collection::vec(
                proptest::collection::vec(-100.0..100.0f64, 3), 1..12),
            trim in 0usize..3,
        ) {
            let med = coordinate_median(&grads);
            let tm = trimmed_mean(&grads, trim);
            for c in 0..3 {
                let lo = grads.iter().map(|g| g[c]).fold(f64::INFINITY, f64::min);
                let hi = grads.iter().map(|g| g[c]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(med[c] >= lo - 1e-9 && med[c] <= hi + 1e-9);
                prop_assert!(tm[c] >= lo - 1e-9 && tm[c] <= hi + 1e-9);
            }
        }

        #[test]
        fn krum_returns_member(
            grads in proptest::collection::vec(
                proptest::collection::vec(-10.0..10.0f64, 2), 1..10),
            f in 0usize..3,
        ) {
            let k = krum(&grads, f);
            prop_assert!(grads.iter().any(|g| g == k));
        }
    }
}
