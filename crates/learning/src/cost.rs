//! Communication-cost-aware topology activation.
//!
//! §V-B / refs \[28\]–\[33\]: "one might activate different network topologies
//! based on the trade-off between network learning and communication …
//! jointly optimize both learning cost and decision making accuracy."
//! An [`ActivationPolicy`] decides, per round, which mixing topology
//! decentralized SGD uses; the experiment `t6_learning_cost` sweeps the
//! policies and reports the accuracy-vs-bytes frontier.

use crate::data::Example;
use crate::gossip::{consensus_error, gossip_mix, MixingTopology};
use crate::model::LogisticModel;

/// Chooses the mixing topology for each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActivationPolicy {
    /// Always the complete graph (max accuracy, max cost).
    AlwaysDense,
    /// Always the ring (min cost, slow mixing).
    AlwaysSparse,
    /// Complete graph every `period`-th round, ring otherwise.
    Periodic {
        /// Dense-round period (≥ 1).
        period: usize,
    },
    /// Dense while the consensus error exceeds `threshold`, sparse after —
    /// pay for fast mixing only while nodes still disagree.
    Adaptive {
        /// Consensus-error switchover threshold.
        threshold: f64,
    },
}

impl std::fmt::Display for ActivationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActivationPolicy::AlwaysDense => write!(f, "always-dense"),
            ActivationPolicy::AlwaysSparse => write!(f, "always-sparse"),
            ActivationPolicy::Periodic { period } => write!(f, "periodic({period})"),
            ActivationPolicy::Adaptive { threshold } => write!(f, "adaptive(τ={threshold})"),
        }
    }
}

impl ActivationPolicy {
    fn select(&self, round: usize, consensus: f64) -> MixingTopology {
        match *self {
            ActivationPolicy::AlwaysDense => MixingTopology::Complete,
            ActivationPolicy::AlwaysSparse => MixingTopology::Ring,
            ActivationPolicy::Periodic { period } => {
                if round.is_multiple_of(period.max(1)) {
                    MixingTopology::Complete
                } else {
                    MixingTopology::Ring
                }
            }
            ActivationPolicy::Adaptive { threshold } => {
                if consensus > threshold {
                    MixingTopology::Complete
                } else {
                    MixingTopology::Ring
                }
            }
        }
    }
}

/// Outcome of a cost-aware decentralized run.
#[derive(Debug, Clone, PartialEq)]
pub struct CostAwareRun {
    /// Test accuracy of the average model after the final round.
    pub final_accuracy: f64,
    /// Worst single node's test accuracy — exposes consensus failure:
    /// under slow mixing and non-IID shards, stragglers overfit their
    /// local data even when the network average looks fine.
    pub min_node_accuracy: f64,
    /// Total undirected exchanges across all rounds.
    pub messages: u64,
    /// Estimated bytes on the wire (`messages × parameter bytes`).
    pub bytes: u64,
    /// Rounds in which the dense topology was active.
    pub dense_rounds: usize,
}

/// Runs decentralized SGD under an activation policy.
///
/// # Panics
///
/// Panics when `shards` is empty.
pub fn cost_aware_sgd(
    dim: usize,
    shards: &[Vec<Example>],
    test: &[Example],
    policy: ActivationPolicy,
    rounds: usize,
    lr: f64,
    seed: u64,
) -> CostAwareRun {
    assert!(!shards.is_empty(), "need at least one node");
    let n = shards.len();
    let mut params: Vec<Vec<f64>> = vec![LogisticModel::new(dim).to_params(); n];
    let mut messages = 0u64;
    let mut dense_rounds = 0usize;
    let mut consensus = f64::INFINITY;
    for round in 0..rounds {
        for (p, shard) in params.iter_mut().zip(shards) {
            if shard.is_empty() {
                continue;
            }
            let mut model = LogisticModel::from_params(p);
            let grad = model.gradient(shard);
            model.apply_gradient(&grad, lr);
            *p = model.to_params();
        }
        let topology = policy.select(round, consensus);
        if topology == MixingTopology::Complete {
            dense_rounds += 1;
        }
        let edges = topology.edges(n, round as u64, seed);
        messages += edges.len() as u64;
        gossip_mix(&mut params, &edges);
        consensus = consensus_error(&params);
    }
    let avg = crate::aggregate::mean(&params);
    let param_bytes = ((dim + 1) * std::mem::size_of::<f64>()) as u64;
    let min_node_accuracy = params
        .iter()
        .map(|p| LogisticModel::from_params(p).accuracy(test))
        .fold(f64::INFINITY, f64::min)
        .min(1.0);
    CostAwareRun {
        final_accuracy: LogisticModel::from_params(&avg).accuracy(test),
        min_node_accuracy,
        messages,
        // Each undirected exchange moves both parameter vectors.
        bytes: messages * 2 * param_bytes,
        dense_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{logistic_dataset, partition, Dataset};

    fn shards_and_test() -> (Vec<Vec<Example>>, Vec<Example>) {
        let d = logistic_dataset(900, 4, 5.0, 1);
        let (train, test) = d.examples.split_at(700);
        let ds = Dataset {
            examples: train.to_vec(),
            dim: 4,
            true_weights: d.true_weights.clone(),
        };
        (partition(&ds, 8, 0.5, 2), test.to_vec())
    }

    #[test]
    fn dense_costs_more_than_sparse() {
        let (shards, test) = shards_and_test();
        let dense = cost_aware_sgd(4, &shards, &test, ActivationPolicy::AlwaysDense, 20, 0.5, 3);
        let sparse = cost_aware_sgd(4, &shards, &test, ActivationPolicy::AlwaysSparse, 20, 0.5, 3);
        assert!(dense.bytes > sparse.bytes * 2);
        assert_eq!(dense.dense_rounds, 20);
        assert_eq!(sparse.dense_rounds, 0);
        assert!(dense.final_accuracy >= sparse.final_accuracy - 0.05);
        assert!(
            dense.min_node_accuracy >= sparse.min_node_accuracy - 0.05,
            "dense mixing keeps stragglers close: {} vs {}",
            dense.min_node_accuracy,
            sparse.min_node_accuracy
        );
    }

    #[test]
    fn adaptive_spends_fewer_bytes_than_dense_with_similar_accuracy() {
        let (shards, test) = shards_and_test();
        let dense = cost_aware_sgd(4, &shards, &test, ActivationPolicy::AlwaysDense, 40, 0.5, 3);
        let adaptive = cost_aware_sgd(
            4,
            &shards,
            &test,
            ActivationPolicy::Adaptive { threshold: 0.05 },
            40,
            0.5,
            3,
        );
        assert!(adaptive.bytes < dense.bytes, "{} vs {}", adaptive.bytes, dense.bytes);
        assert!(
            adaptive.final_accuracy > dense.final_accuracy - 0.08,
            "adaptive {} vs dense {}",
            adaptive.final_accuracy,
            dense.final_accuracy
        );
        assert!(adaptive.dense_rounds < 40);
    }

    #[test]
    fn periodic_interpolates_cost() {
        let (shards, test) = shards_and_test();
        let p2 = cost_aware_sgd(
            4,
            &shards,
            &test,
            ActivationPolicy::Periodic { period: 2 },
            20,
            0.5,
            3,
        );
        let sparse = cost_aware_sgd(4, &shards, &test, ActivationPolicy::AlwaysSparse, 20, 0.5, 3);
        let dense = cost_aware_sgd(4, &shards, &test, ActivationPolicy::AlwaysDense, 20, 0.5, 3);
        assert!(p2.bytes > sparse.bytes);
        assert!(p2.bytes < dense.bytes);
        assert_eq!(p2.dense_rounds, 10);
    }

    #[test]
    fn display_names() {
        assert_eq!(ActivationPolicy::AlwaysDense.to_string(), "always-dense");
        assert_eq!(
            ActivationPolicy::Periodic { period: 3 }.to_string(),
            "periodic(3)"
        );
    }
}
