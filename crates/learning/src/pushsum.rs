//! Push-sum averaging over directed, time-varying graphs.
//!
//! Metropolis gossip ([`crate::gossip`]) needs *symmetric* exchanges; a
//! jammed or asymmetric-power battlefield network delivers one-way links.
//! Push-sum (Kempe–Dobra–Gehrke) converges to the exact average on any
//! sequence of strongly-connected directed graphs: each node keeps a value
//! `x` and a weight `w`, ships equal shares of both along its outgoing
//! edges (keeping one share), and estimates the average as `x / w`. The
//! mass-conservation invariants `Σx = const`, `Σw = n` hold exactly at
//! every step and are property-tested below.

/// State of one push-sum node.
#[derive(Debug, Clone, PartialEq)]
pub struct PushSumNode {
    /// Mass-carrying value vector.
    pub x: Vec<f64>,
    /// Weight (starts at 1).
    pub w: f64,
}

impl PushSumNode {
    /// Creates a node holding `value`.
    pub fn new(value: Vec<f64>) -> Self {
        PushSumNode { x: value, w: 1.0 }
    }

    /// Current estimate of the network average.
    pub fn estimate(&self) -> Vec<f64> {
        self.x.iter().map(|v| v / self.w.max(1e-300)).collect()
    }
}

/// One synchronous push-sum round over directed `edges` (`(from, to)`;
/// self-retention is implicit). Nodes with no outgoing edge keep all their
/// mass.
///
/// # Panics
///
/// Panics when an edge endpoint is out of range or node dimensions differ.
pub fn push_sum_round(nodes: &mut [PushSumNode], edges: &[(usize, usize)]) {
    let n = nodes.len();
    if n == 0 {
        return;
    }
    let dim = nodes[0].x.len();
    assert!(
        nodes.iter().all(|s| s.x.len() == dim),
        "node dimensions must match"
    );
    let mut out_degree = vec![0usize; n];
    for &(from, to) in edges {
        assert!(from < n && to < n, "edge endpoint out of range");
        out_degree[from] += 1;
    }
    // Each node splits its mass into (out_degree + 1) shares: one per
    // outgoing edge plus one kept.
    let mut new_x: Vec<Vec<f64>> = vec![vec![0.0; dim]; n];
    let mut new_w = vec![0.0; n];
    for (i, node) in nodes.iter().enumerate() {
        let shares = (out_degree[i] + 1) as f64;
        for (acc, v) in new_x[i].iter_mut().zip(&node.x) {
            *acc += v / shares;
        }
        new_w[i] += node.w / shares;
    }
    for &(from, to) in edges {
        let shares = (out_degree[from] + 1) as f64;
        for (acc, v) in new_x[to].iter_mut().zip(&nodes[from].x) {
            *acc += v / shares;
        }
        new_w[to] += nodes[from].w / shares;
    }
    for (node, (x, w)) in nodes.iter_mut().zip(new_x.into_iter().zip(new_w)) {
        node.x = x;
        node.w = w;
    }
}

/// Runs push-sum for `rounds` over a per-round directed edge supplier and
/// returns the worst node's L2 estimation error from the true average per
/// round (the convergence trace).
///
/// ```
/// # use iobt_learning::pushsum::{directed_ring, push_sum_average};
/// let initial: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
/// let (nodes, trace) = push_sum_average(&initial, |_| directed_ring(6), 150);
/// assert!(trace.last().unwrap() < &1e-6);
/// assert!((nodes[0].estimate()[0] - 2.5).abs() < 1e-6);
/// ```
pub fn push_sum_average(
    initial: &[Vec<f64>],
    mut edges_at: impl FnMut(u64) -> Vec<(usize, usize)>,
    rounds: usize,
) -> (Vec<PushSumNode>, Vec<f64>) {
    let n = initial.len();
    let mut nodes: Vec<PushSumNode> = initial.iter().cloned().map(PushSumNode::new).collect();
    if n == 0 {
        return (nodes, Vec::new());
    }
    let dim = initial[0].len();
    let mut truth = vec![0.0; dim];
    for v in initial {
        for (t, x) in truth.iter_mut().zip(v) {
            *t += x / n as f64;
        }
    }
    let mut trace = Vec::with_capacity(rounds);
    for round in 0..rounds {
        push_sum_round(&mut nodes, &edges_at(round as u64));
        let worst = nodes
            .iter()
            .map(|s| {
                s.estimate()
                    .iter()
                    .zip(&truth)
                    .map(|(e, t)| (e - t) * (e - t))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(0.0, f64::max);
        trace.push(worst);
    }
    (nodes, trace)
}

/// A directed ring: `i -> (i + 1) % n` — strongly connected but maximally
/// asymmetric; symmetric gossip cannot even be expressed on it.
pub fn directed_ring(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mass_invariants_hold_every_round() {
        let initial: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64, -(i as f64)]).collect();
        let mut nodes: Vec<PushSumNode> =
            initial.iter().cloned().map(PushSumNode::new).collect();
        let x_sum0: f64 = nodes.iter().map(|s| s.x[0]).sum();
        for round in 0..30 {
            let edges = if round % 2 == 0 {
                directed_ring(7)
            } else {
                vec![(0, 3), (3, 6), (6, 0), (1, 4)]
            };
            push_sum_round(&mut nodes, &edges);
            let x_sum: f64 = nodes.iter().map(|s| s.x[0]).sum();
            let w_sum: f64 = nodes.iter().map(|s| s.w).sum();
            assert!((x_sum - x_sum0).abs() < 1e-9, "x mass conserved");
            assert!((w_sum - 7.0).abs() < 1e-9, "w mass conserved");
        }
    }

    #[test]
    fn converges_on_a_directed_ring() {
        let initial: Vec<Vec<f64>> = (0..8).map(|i| vec![(i * 3) as f64]).collect();
        let (_, trace) = push_sum_average(&initial, |_| directed_ring(8), 200);
        assert!(trace[0] > 1.0, "starts far from consensus");
        assert!(
            *trace.last().unwrap() < 1e-6,
            "converges to the exact average: {}",
            trace.last().unwrap()
        );
    }

    #[test]
    fn converges_under_time_varying_directed_graphs() {
        let initial: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        // Alternate two different directed rings (jamming flips link
        // directions every round).
        let (_, trace) = push_sum_average(
            &initial,
            |round| {
                if round % 2 == 0 {
                    directed_ring(10)
                } else {
                    (0..10).map(|i| (i, (i + 3) % 10)).collect()
                }
            },
            200,
        );
        assert!(*trace.last().unwrap() < 1e-6);
    }

    #[test]
    fn error_is_monotone_decreasing_eventually() {
        let initial: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let (_, trace) = push_sum_average(&initial, |_| directed_ring(6), 100);
        let early = trace[10];
        let late = trace[99];
        assert!(late < early);
    }

    #[test]
    fn isolated_nodes_keep_their_value() {
        let initial = vec![vec![5.0], vec![9.0]];
        let (nodes, _) = push_sum_average(&initial, |_| Vec::new(), 10);
        assert_eq!(nodes[0].estimate(), vec![5.0]);
        assert_eq!(nodes[1].estimate(), vec![9.0]);
    }

    #[test]
    fn empty_network_is_safe() {
        let (nodes, trace) = push_sum_average(&[], |_| Vec::new(), 5);
        assert!(nodes.is_empty());
        assert!(trace.is_empty());
    }

    proptest! {
        #[test]
        fn estimates_converge_for_random_values(
            values in proptest::collection::vec(-100.0..100.0f64, 3..12)
        ) {
            let initial: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
            let n = initial.len();
            let truth: f64 = values.iter().sum::<f64>() / n as f64;
            // The directed ring mixes at rate ~cos(pi/n) per round; 800
            // rounds drive an 11-ring below 1e-6 relative error.
            let (nodes, _) = push_sum_average(&initial, |_| directed_ring(n), 800);
            let scale = 1.0 + values.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
            for s in &nodes {
                prop_assert!((s.estimate()[0] - truth).abs() < 1e-6 * scale);
            }
        }
    }
}
