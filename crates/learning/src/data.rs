//! Synthetic learning workloads with heterogeneous (non-IID) partitioning.
//!
//! §V-B: data-parallel learning systems "are only marginally tolerant of
//! heterogeneous hardware configurations" and assume IID shards. Our
//! generator produces logistic-ground-truth classification data and splits
//! it across nodes with controllable label skew, so the experiments can
//! probe the non-IID regimes the paper worries about.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// One labelled example: feature vector and binary label.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Feature vector (fixed dimension per dataset).
    pub features: Vec<f64>,
    /// Binary label.
    pub label: bool,
}

/// A labelled dataset with the ground-truth generating weights attached.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Examples in generation order.
    pub examples: Vec<Example>,
    /// Feature dimension.
    pub dim: usize,
    /// True separating hyperplane weights (unit norm).
    pub true_weights: Vec<f64>,
}

/// Generates a logistic-model classification dataset.
///
/// Features are standard normal; labels follow
/// `P(y=1|x) = sigmoid(margin * <w, x>)` for a random unit `w`. Larger
/// `margin` means cleaner separation.
pub fn logistic_dataset(n: usize, dim: usize, margin: f64, seed: u64) -> Dataset {
    assert!(dim > 0, "dimension must be nonzero");
    let mut rng = StdRng::seed_from_u64(seed);
    let normal = Normal::new(0.0, 1.0).expect("unit normal"); // lint: allow(panic) — constant valid parameters
    let mut w: Vec<f64> = (0..dim).map(|_| normal.sample(&mut rng)).collect();
    let norm = w.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
    for v in &mut w {
        *v /= norm;
    }
    let mut examples = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..dim).map(|_| normal.sample(&mut rng)).collect();
        let score: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        let p = 1.0 / (1.0 + (-margin * score).exp());
        let label = rng.gen::<f64>() < p;
        examples.push(Example { features: x, label });
    }
    Dataset {
        examples,
        dim,
        true_weights: w,
    }
}

/// Splits a dataset across `num_nodes` shards with label-skew
/// heterogeneity.
///
/// `skew = 0` is an IID split; `skew = 1` sends (almost) all positive
/// examples to the first half of the nodes and negatives to the second
/// half — the extreme non-IID case.
pub fn partition(dataset: &Dataset, num_nodes: usize, skew: f64, seed: u64) -> Vec<Vec<Example>> {
    assert!(num_nodes > 0, "need at least one node");
    let skew = skew.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shards: Vec<Vec<Example>> = vec![Vec::new(); num_nodes];
    let half = num_nodes.div_ceil(2);
    for ex in &dataset.examples {
        let biased = rng.gen::<f64>() < skew;
        let node = if biased {
            // Positive labels to the first half, negatives to the second.
            if ex.label {
                rng.gen_range(0..half)
            } else if half < num_nodes {
                rng.gen_range(half..num_nodes)
            } else {
                0
            }
        } else {
            rng.gen_range(0..num_nodes)
        };
        shards[node].push(ex.clone());
    }
    shards
}

/// Flips the label of each example independently with probability `p` —
/// the label-flip data-poisoning attack (§V-B, adversarial inputs).
pub fn poison_labels(shard: &mut [Example], p: f64, seed: u64) {
    let p = p.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    for ex in shard {
        if rng.gen::<f64>() < p {
            ex.label = !ex.label;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_determinism() {
        let d = logistic_dataset(100, 5, 4.0, 1);
        assert_eq!(d.examples.len(), 100);
        assert!(d.examples.iter().all(|e| e.features.len() == 5));
        assert_eq!(d, logistic_dataset(100, 5, 4.0, 1));
        let norm: f64 = d.true_weights.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_margin_labels_follow_hyperplane() {
        let d = logistic_dataset(500, 4, 50.0, 2);
        let consistent = d
            .examples
            .iter()
            .filter(|e| {
                let s: f64 = e.features.iter().zip(&d.true_weights).map(|(a, b)| a * b).sum();
                (s > 0.0) == e.label
            })
            .count();
        assert!(consistent as f64 / 500.0 > 0.95);
    }

    #[test]
    fn partition_conserves_examples() {
        let d = logistic_dataset(200, 3, 2.0, 3);
        for skew in [0.0, 0.5, 1.0] {
            let shards = partition(&d, 7, skew, 4);
            assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 200);
        }
    }

    #[test]
    fn skewed_partition_separates_labels() {
        let d = logistic_dataset(1_000, 3, 2.0, 5);
        let shards = partition(&d, 4, 1.0, 6);
        // First half mostly positive, second half mostly negative.
        let pos_frac = |s: &Vec<Example>| {
            if s.is_empty() {
                0.5
            } else {
                s.iter().filter(|e| e.label).count() as f64 / s.len() as f64
            }
        };
        assert!(pos_frac(&shards[0]) > 0.95);
        assert!(pos_frac(&shards[3]) < 0.05);
        // IID split stays near the base rate.
        let iid = partition(&d, 4, 0.0, 6);
        let base = pos_frac(&iid[0]);
        assert!((0.2..=0.8).contains(&base));
    }

    #[test]
    fn poison_flips_expected_fraction() {
        let d = logistic_dataset(1_000, 3, 2.0, 7);
        let mut shard = d.examples.clone();
        let before: Vec<bool> = shard.iter().map(|e| e.label).collect();
        poison_labels(&mut shard, 0.3, 8);
        let flipped = shard
            .iter()
            .zip(&before)
            .filter(|(e, b)| e.label != **b)
            .count();
        assert!((flipped as f64 / 1_000.0 - 0.3).abs() < 0.05);
        // p = 0 is a no-op.
        let mut untouched = d.examples.clone();
        poison_labels(&mut untouched, 0.0, 9);
        assert_eq!(untouched, d.examples);
    }
}
