//! Distributed, resilient, and continual learning services for the IoBT
//! (paper §V-B, refs \[24\]–\[33\]).
//!
//! Everything is built from scratch on a [logistic model](model):
//!
//! * [`federated`] — coordinator-based rounds with [Byzantine
//!   attacks](attack) and [resilient aggregation](aggregate) (Krum,
//!   median, trimmed mean vs the fragile mean).
//! * [`gossip`] — fully decentralized SGD over time-varying topologies
//!   with Metropolis mixing (no coordinator to lose).
//! * [`pushsum`] — exact averaging over *directed*, time-varying graphs
//!   (one-way links under jamming), where symmetric gossip cannot run.
//! * [`cost`] — communication-cost-aware topology activation, trading
//!   bytes for accuracy.
//! * [`continual`] — context-conditioned learning vs catastrophic
//!   forgetting.
//! * [`data`] — synthetic non-IID workloads with label-skew partitioning
//!   and label-poisoning.
//!
//! # Examples
//!
//! ```
//! use iobt_learning::prelude::*;
//!
//! let data = logistic_dataset(800, 5, 5.0, 1);
//! let (train, test) = data.examples.split_at(600);
//! let train_ds = Dataset { examples: train.to_vec(), dim: 5, true_weights: data.true_weights.clone() };
//! let shards = partition(&train_ds, 8, 0.3, 2);
//! let run = train_federated(5, &shards, test, &FederatedConfig {
//!     aggregator: Aggregator::Krum { f: 2 },
//!     attack: Some(ByzantineAttack::SignFlip { scale: 10.0 }),
//!     num_attackers: 2,
//!     ..FederatedConfig::default()
//! });
//! assert!(run.final_accuracy() > 0.75, "Krum survives the attack");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod attack;
pub mod continual;
pub mod cost;
pub mod data;
pub mod federated;
pub mod gossip;
pub mod model;
pub mod pushsum;

pub use aggregate::{coordinate_median, krum, mean, trimmed_mean, Aggregator};
pub use attack::ByzantineAttack;
pub use continual::{train_blind, train_contextual, ContinualResult, TaskStream};
pub use cost::{cost_aware_sgd, ActivationPolicy, CostAwareRun};
pub use data::{logistic_dataset, partition, poison_labels, Dataset, Example};
pub use federated::{train_federated, FederatedConfig, FederatedRun};
pub use gossip::{
    consensus_error, decentralized_sgd, gossip_mix, DecentralizedRun, MixingTopology,
};
pub use model::LogisticModel;
pub use pushsum::{directed_ring, push_sum_average, push_sum_round, PushSumNode};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::{
        cost_aware_sgd, decentralized_sgd, logistic_dataset, partition, poison_labels,
        train_blind, train_contextual, train_federated, ActivationPolicy, Aggregator,
        ByzantineAttack, ContinualResult, CostAwareRun, Dataset, DecentralizedRun, Example,
        FederatedConfig, FederatedRun, LogisticModel, MixingTopology, PushSumNode, TaskStream,
    };
    pub use crate::pushsum::{directed_ring, push_sum_average, push_sum_round};
}
