//! Logistic-regression model and SGD, from scratch.

use crate::data::Example;

/// A logistic-regression model: weights plus bias.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticModel {
    /// Creates a zero-initialized model of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be nonzero");
        LogisticModel {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Model parameters as a flat vector `[weights…, bias]` — the format
    /// exchanged by distributed aggregation.
    pub fn to_params(&self) -> Vec<f64> {
        let mut p = self.weights.clone();
        p.push(self.bias);
        p
    }

    /// Rebuilds a model from the flat parameter format.
    ///
    /// # Panics
    ///
    /// Panics when `params.len() < 2`.
    pub fn from_params(params: &[f64]) -> Self {
        assert!(params.len() >= 2, "need weights and bias");
        LogisticModel {
            weights: params[..params.len() - 1].to_vec(),
            bias: params[params.len() - 1],
        }
    }

    /// Predicted probability of the positive class.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.weights.len(), "dimension mismatch");
        let z: f64 = features
            .iter()
            .zip(&self.weights)
            .map(|(x, w)| x * w)
            .sum::<f64>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Mean cross-entropy loss gradient over a batch, as a flat
    /// `[d_weights…, d_bias]` vector. Returns the zero vector for an empty
    /// batch.
    pub fn gradient(&self, batch: &[Example]) -> Vec<f64> {
        let dim = self.weights.len();
        let mut grad = vec![0.0; dim + 1];
        if batch.is_empty() {
            return grad;
        }
        for ex in batch {
            let p = self.predict_proba(&ex.features);
            let err = p - if ex.label { 1.0 } else { 0.0 };
            for (g, x) in grad[..dim].iter_mut().zip(&ex.features) {
                *g += err * x;
            }
            grad[dim] += err;
        }
        let n = batch.len() as f64;
        for g in &mut grad {
            *g /= n;
        }
        grad
    }

    /// Applies one gradient step: `params -= lr * grad`.
    ///
    /// # Panics
    ///
    /// Panics when `grad.len() != dim + 1`.
    pub fn apply_gradient(&mut self, grad: &[f64], lr: f64) {
        assert_eq!(grad.len(), self.weights.len() + 1, "gradient shape");
        for (w, g) in self.weights.iter_mut().zip(grad) {
            *w -= lr * g;
        }
        self.bias -= lr * grad[self.weights.len()];
    }

    /// Classification accuracy on a test set, or `0.0` when empty.
    pub fn accuracy(&self, test: &[Example]) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let correct = test
            .iter()
            .filter(|e| self.predict(&e.features) == e.label)
            .count();
        correct as f64 / test.len() as f64
    }

    /// Mean cross-entropy loss on a set, or `0.0` when empty.
    pub fn loss(&self, test: &[Example]) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let sum: f64 = test
            .iter()
            .map(|e| {
                let p = self.predict_proba(&e.features).clamp(1e-12, 1.0 - 1e-12);
                if e.label {
                    -p.ln()
                } else {
                    -(1.0 - p).ln()
                }
            })
            .sum();
        sum / test.len() as f64
    }

    /// Trains with plain (centralized) mini-batch SGD — the upper-bound
    /// baseline for the distributed experiments.
    pub fn train_centralized(&mut self, data: &[Example], lr: f64, epochs: usize, batch: usize) {
        let batch = batch.max(1);
        for _ in 0..epochs {
            for chunk in data.chunks(batch) {
                let grad = self.gradient(chunk);
                self.apply_gradient(&grad, lr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::logistic_dataset;

    #[test]
    fn params_roundtrip() {
        let mut m = LogisticModel::new(3);
        m.apply_gradient(&[0.1, -0.2, 0.3, 0.5], 1.0);
        let p = m.to_params();
        assert_eq!(p.len(), 4);
        assert_eq!(LogisticModel::from_params(&p), m);
    }

    #[test]
    fn zero_model_predicts_half() {
        let m = LogisticModel::new(2);
        assert!((m.predict_proba(&[1.0, -1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gradient_descends_loss() {
        let d = logistic_dataset(300, 4, 3.0, 1);
        let mut m = LogisticModel::new(4);
        let l0 = m.loss(&d.examples);
        for _ in 0..50 {
            let g = m.gradient(&d.examples);
            m.apply_gradient(&g, 0.5);
        }
        let l1 = m.loss(&d.examples);
        assert!(l1 < l0, "loss must decrease: {l0} -> {l1}");
    }

    #[test]
    fn centralized_training_reaches_high_accuracy() {
        let d = logistic_dataset(1_000, 5, 5.0, 2);
        let test = logistic_dataset(500, 5, 5.0, 3); // same weights? no:
        // different seed gives different true weights, so evaluate on the
        // training distribution instead with a held-out split.
        let _ = test;
        let (train, holdout) = d.examples.split_at(800);
        let mut m = LogisticModel::new(5);
        m.train_centralized(train, 0.3, 20, 32);
        let acc = m.accuracy(holdout);
        assert!(acc > 0.85, "centralized accuracy {acc}");
    }

    #[test]
    fn empty_sets_are_safe() {
        let m = LogisticModel::new(2);
        assert_eq!(m.accuracy(&[]), 0.0);
        assert_eq!(m.loss(&[]), 0.0);
        assert_eq!(m.gradient(&[]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn predict_rejects_wrong_dim() {
        LogisticModel::new(3).predict_proba(&[1.0]);
    }
}
