//! Round-based distributed training with Byzantine workers.
//!
//! A coordinator holds the global model; each round, every worker computes
//! a gradient on its local (possibly non-IID, possibly poisoned) shard,
//! compromised workers substitute forged gradients, and the coordinator
//! folds everything through a chosen [`Aggregator`]. This is the testbed
//! for experiment `f4_learning_services`.

use crate::aggregate::Aggregator;
use crate::attack::ByzantineAttack;
use crate::data::Example;
use crate::model::LogisticModel;

/// Configuration of a distributed training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederatedConfig {
    /// Learning rate per round.
    pub learning_rate: f64,
    /// Number of synchronous rounds.
    pub rounds: usize,
    /// Aggregation rule at the coordinator.
    pub aggregator: Aggregator,
    /// Attack executed by compromised workers, if any.
    pub attack: Option<ByzantineAttack>,
    /// Number of compromised workers (the *last* shards are compromised).
    pub num_attackers: usize,
    /// RNG seed for attack forging.
    pub seed: u64,
}

impl Default for FederatedConfig {
    fn default() -> Self {
        FederatedConfig {
            learning_rate: 0.5,
            rounds: 50,
            aggregator: Aggregator::Mean,
            attack: None,
            num_attackers: 0,
            seed: 0,
        }
    }
}

/// Per-round trace of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedRun {
    /// Final model.
    pub model: LogisticModel,
    /// Test accuracy after each round.
    pub accuracy_per_round: Vec<f64>,
    /// Test loss after each round.
    pub loss_per_round: Vec<f64>,
}

impl FederatedRun {
    /// Final test accuracy (0 when no rounds ran).
    pub fn final_accuracy(&self) -> f64 {
        self.accuracy_per_round.last().copied().unwrap_or(0.0)
    }
}

/// Trains a logistic model across worker shards.
///
/// `shards[i]` is worker `i`'s local data; the last
/// `config.num_attackers` workers are compromised (their data is ignored
/// and replaced by forged gradients when an attack is configured).
///
/// # Panics
///
/// Panics when `shards` is empty, every shard is empty, or
/// `num_attackers >= shards.len()`.
pub fn train_federated(
    dim: usize,
    shards: &[Vec<Example>],
    test: &[Example],
    config: &FederatedConfig,
) -> FederatedRun {
    assert!(!shards.is_empty(), "need at least one worker");
    assert!(
        config.num_attackers < shards.len(),
        "at least one honest worker required"
    );
    assert!(
        shards.iter().any(|s| !s.is_empty()),
        "all shards are empty"
    );
    let honest_count = shards.len() - config.num_attackers;
    let mut model = LogisticModel::new(dim);
    let mut accuracy_per_round = Vec::with_capacity(config.rounds);
    let mut loss_per_round = Vec::with_capacity(config.rounds);
    for round in 0..config.rounds {
        let honest_grads: Vec<Vec<f64>> = shards[..honest_count]
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| model.gradient(s))
            .collect();
        let mut grads = honest_grads.clone();
        if let Some(attack) = config.attack {
            let forged = attack.forge(
                &honest_grads,
                config.num_attackers,
                config.seed ^ round as u64,
            );
            grads.extend(forged);
        }
        let update = config.aggregator.aggregate(&grads);
        model.apply_gradient(&update, config.learning_rate);
        accuracy_per_round.push(model.accuracy(test));
        loss_per_round.push(model.loss(test));
    }
    FederatedRun {
        model,
        accuracy_per_round,
        loss_per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{logistic_dataset, partition};

    fn setup(skew: f64) -> (Vec<Vec<Example>>, Vec<Example>) {
        let d = logistic_dataset(1_200, 5, 5.0, 1);
        let (train, test) = d.examples.split_at(1_000);
        let train_ds = crate::data::Dataset {
            examples: train.to_vec(),
            dim: 5,
            true_weights: d.true_weights.clone(),
        };
        (partition(&train_ds, 10, skew, 2), test.to_vec())
    }

    #[test]
    fn clean_federated_training_converges() {
        let (shards, test) = setup(0.0);
        let run = train_federated(5, &shards, &test, &FederatedConfig::default());
        assert!(run.final_accuracy() > 0.85, "{}", run.final_accuracy());
        assert_eq!(run.accuracy_per_round.len(), 50);
    }

    #[test]
    fn sign_flip_destroys_mean_but_not_krum() {
        let (shards, test) = setup(0.0);
        let attacked = |agg| {
            train_federated(
                5,
                &shards,
                &test,
                &FederatedConfig {
                    aggregator: agg,
                    attack: Some(ByzantineAttack::SignFlip { scale: 10.0 }),
                    num_attackers: 3,
                    ..FederatedConfig::default()
                },
            )
            .final_accuracy()
        };
        let mean_acc = attacked(Aggregator::Mean);
        let krum_acc = attacked(Aggregator::Krum { f: 3 });
        let median_acc = attacked(Aggregator::Median);
        assert!(mean_acc < 0.7, "mean should collapse: {mean_acc}");
        assert!(krum_acc > 0.8, "krum should survive: {krum_acc}");
        assert!(median_acc > 0.8, "median should survive: {median_acc}");
    }

    #[test]
    fn non_iid_shards_still_train_with_mean() {
        let (shards, test) = setup(1.0);
        let run = train_federated(5, &shards, &test, &FederatedConfig::default());
        assert!(run.final_accuracy() > 0.8, "{}", run.final_accuracy());
    }

    #[test]
    #[should_panic(expected = "honest worker")]
    fn rejects_all_attackers() {
        let (shards, test) = setup(0.0);
        train_federated(
            5,
            &shards,
            &test,
            &FederatedConfig {
                num_attackers: 10,
                ..FederatedConfig::default()
            },
        );
    }

    #[test]
    fn deterministic_per_config() {
        let (shards, test) = setup(0.0);
        let cfg = FederatedConfig {
            attack: Some(ByzantineAttack::GaussianNoise { std: 2.0 }),
            num_attackers: 2,
            aggregator: Aggregator::TrimmedMean { trim: 2 },
            rounds: 10,
            ..FederatedConfig::default()
        };
        let a = train_federated(5, &shards, &test, &cfg);
        let b = train_federated(5, &shards, &test, &cfg);
        assert_eq!(a, b);
    }
}
