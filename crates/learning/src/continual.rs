//! Continual, context-conditioned learning.
//!
//! §V-B: "in systems that learn blindly without proper contextualization,
//! new information can often erase previously learned knowledge …
//! 'appropriate behavior' must be contextualized." We reproduce the
//! catastrophic-forgetting phenomenon with a sequential task stream and
//! show that a context-keyed model bank retains earlier tasks.

use std::collections::BTreeMap;

use crate::data::{logistic_dataset, Dataset, Example};
use crate::model::LogisticModel;

/// A stream of learning tasks, one per context.
#[derive(Debug, Clone)]
pub struct TaskStream {
    tasks: Vec<Dataset>,
    dim: usize,
}

impl TaskStream {
    /// Generates `num_tasks` tasks with independent ground-truth weights
    /// (so they genuinely conflict), each with `n` examples of dimension
    /// `dim`.
    pub fn generate(num_tasks: usize, n: usize, dim: usize, seed: u64) -> Self {
        let tasks = (0..num_tasks)
            .map(|t| logistic_dataset(n, dim, 6.0, seed.wrapping_add(1_000 * t as u64 + 1)))
            .collect();
        TaskStream { tasks, dim }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Training split (first 80%) of task `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn train_split(&self, t: usize) -> &[Example] {
        let ex = &self.tasks[t].examples;
        &ex[..ex.len() * 4 / 5]
    }

    /// Test split (last 20%) of task `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn test_split(&self, t: usize) -> &[Example] {
        let ex = &self.tasks[t].examples;
        &ex[ex.len() * 4 / 5..]
    }
}

/// Accuracy on every task after sequential training, plus summary
/// forgetting metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinualResult {
    /// Final accuracy per task.
    pub final_accuracy: Vec<f64>,
    /// Accuracy on each task measured immediately after training on it.
    pub accuracy_when_learned: Vec<f64>,
}

impl ContinualResult {
    /// Mean drop from just-learned accuracy to final accuracy — the
    /// forgetting measure (0 = no forgetting).
    pub fn mean_forgetting(&self) -> f64 {
        if self.final_accuracy.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .accuracy_when_learned
            .iter()
            .zip(&self.final_accuracy)
            .map(|(then, now)| (then - now).max(0.0))
            .sum();
        total / self.final_accuracy.len() as f64
    }

    /// Mean final accuracy across tasks.
    pub fn mean_final_accuracy(&self) -> f64 {
        if self.final_accuracy.is_empty() {
            return 0.0;
        }
        self.final_accuracy.iter().sum::<f64>() / self.final_accuracy.len() as f64
    }
}

/// Trains one blind model through the task stream in order — the
/// forgetting-prone baseline.
pub fn train_blind(stream: &TaskStream, lr: f64, epochs: usize) -> ContinualResult {
    let mut model = LogisticModel::new(stream.dim);
    let mut accuracy_when_learned = Vec::with_capacity(stream.len());
    for t in 0..stream.len() {
        model.train_centralized(stream.train_split(t), lr, epochs, 32);
        accuracy_when_learned.push(model.accuracy(stream.test_split(t)));
    }
    let final_accuracy = (0..stream.len())
        .map(|t| model.accuracy(stream.test_split(t)))
        .collect();
    ContinualResult {
        final_accuracy,
        accuracy_when_learned,
    }
}

/// Trains a context-keyed model bank: each context gets its own model,
/// selected by context id at train and test time — no interference.
pub fn train_contextual(stream: &TaskStream, lr: f64, epochs: usize) -> ContinualResult {
    let mut bank: BTreeMap<usize, LogisticModel> = BTreeMap::new();
    let mut accuracy_when_learned = Vec::with_capacity(stream.len());
    for t in 0..stream.len() {
        let model = bank
            .entry(t)
            .or_insert_with(|| LogisticModel::new(stream.dim));
        model.train_centralized(stream.train_split(t), lr, epochs, 32);
        accuracy_when_learned.push(model.accuracy(stream.test_split(t)));
    }
    let final_accuracy = (0..stream.len())
        .map(|t| bank[&t].accuracy(stream.test_split(t)))
        .collect();
    ContinualResult {
        final_accuracy,
        accuracy_when_learned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blind_training_forgets_earlier_tasks() {
        let stream = TaskStream::generate(4, 600, 6, 1);
        let blind = train_blind(&stream, 0.3, 15);
        // Learned well at the time…
        assert!(blind.accuracy_when_learned.iter().all(|&a| a > 0.8));
        // …but earlier tasks degrade by the end.
        assert!(
            blind.mean_forgetting() > 0.1,
            "expected forgetting, got {}",
            blind.mean_forgetting()
        );
        // The last task is still fresh.
        assert!(blind.final_accuracy.last().unwrap() > &0.8);
    }

    #[test]
    fn contextual_training_retains_all_tasks() {
        let stream = TaskStream::generate(4, 600, 6, 1);
        let ctx = train_contextual(&stream, 0.3, 15);
        assert!(ctx.mean_forgetting() < 0.02, "{}", ctx.mean_forgetting());
        assert!(ctx.mean_final_accuracy() > 0.85);
    }

    #[test]
    fn contextual_beats_blind_on_retention() {
        let stream = TaskStream::generate(3, 500, 5, 2);
        let blind = train_blind(&stream, 0.3, 15);
        let ctx = train_contextual(&stream, 0.3, 15);
        assert!(ctx.mean_final_accuracy() > blind.mean_final_accuracy());
    }

    #[test]
    fn splits_partition_each_task() {
        let stream = TaskStream::generate(2, 100, 3, 3);
        assert_eq!(stream.train_split(0).len(), 80);
        assert_eq!(stream.test_split(0).len(), 20);
        assert!(!stream.is_empty());
        assert_eq!(stream.len(), 2);
    }

    #[test]
    fn empty_result_metrics_are_zero() {
        let r = ContinualResult {
            final_accuracy: vec![],
            accuracy_when_learned: vec![],
        };
        assert_eq!(r.mean_forgetting(), 0.0);
        assert_eq!(r.mean_final_accuracy(), 0.0);
    }
}
