//! Decentralized averaging and gossip-based SGD over time-varying
//! topologies.
//!
//! §V-B asks "what is the impact of time-varying topology (such as that
//! caused by failures due to an adversary) on the correctness and
//! convergence of distributed learning algorithms?" This module provides
//! Metropolis-weighted gossip averaging (doubly-stochastic mixing, so the
//! network average is preserved exactly) and decentralized SGD where each
//! node alternates local gradient steps with gossip mixing — no
//! coordinator required.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::Example;
use crate::model::LogisticModel;

/// Per-round communication topology for gossip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixingTopology {
    /// Every pair talks every round (most traffic, fastest mixing).
    Complete,
    /// Ring: node `i` talks to `i±1` (least traffic, slowest mixing).
    Ring,
    /// Random `degree`-regular-ish connected graph, re-drawn every round.
    Random {
        /// Approximate degree per node.
        degree: usize,
    },
}

impl MixingTopology {
    /// Undirected edge list for `n` nodes at round `round` (deterministic
    /// in `(round, seed)`), sorted ascending.
    pub fn edges(&self, n: usize, round: u64, seed: u64) -> Vec<(usize, usize)> {
        if n < 2 {
            return Vec::new();
        }
        match *self {
            MixingTopology::Complete => {
                let mut edges = Vec::with_capacity(n * (n - 1) / 2);
                for i in 0..n {
                    for j in (i + 1)..n {
                        edges.push((i, j));
                    }
                }
                edges
            }
            MixingTopology::Ring => {
                let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
                if n > 2 {
                    edges.push((0, n - 1));
                }
                edges
            }
            MixingTopology::Random { degree } => {
                let mut rng = StdRng::seed_from_u64(seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut edges = std::collections::BTreeSet::new();
                // A random Hamiltonian cycle keeps the graph connected...
                let mut perm: Vec<usize> = (0..n).collect();
                perm.shuffle(&mut rng);
                for w in perm.windows(2) {
                    edges.insert((w[0].min(w[1]), w[0].max(w[1])));
                }
                if n > 2 {
                    let (a, b) = (perm[0], perm[n - 1]);
                    edges.insert((a.min(b), a.max(b)));
                }
                // ...plus random chords up to the target degree.
                let target = n * degree.max(2) / 2;
                let mut guard = 0;
                while edges.len() < target && guard < 20 * target {
                    guard += 1;
                    let mut pick = || perm[rand::Rng::gen_range(&mut rng, 0..n)];
                    let (a, b) = (pick(), pick());
                    if a != b {
                        edges.insert((a.min(b), a.max(b)));
                    }
                }
                edges.into_iter().collect()
            }
        }
    }

    /// Number of undirected edges used per round for `n` nodes (for the
    /// communication-cost accounting of `t6_learning_cost`).
    pub fn edges_per_round(&self, n: usize) -> usize {
        match *self {
            MixingTopology::Complete => n * (n - 1) / 2,
            MixingTopology::Ring => {
                if n < 2 {
                    0
                } else if n == 2 {
                    1
                } else {
                    n
                }
            }
            MixingTopology::Random { degree } => (n * degree.max(2) / 2).max(n - 1),
        }
    }
}

/// One Metropolis-weighted gossip mixing round, in place.
///
/// With weights `w_ij = 1 / (1 + max(deg_i, deg_j))` the mixing matrix is
/// symmetric and doubly stochastic, so the vector average over nodes is
/// invariant — the key correctness property asserted in tests.
///
/// # Panics
///
/// Panics when vectors have inconsistent dimensions or an edge endpoint is
/// out of range.
pub fn gossip_mix(values: &mut [Vec<f64>], edges: &[(usize, usize)]) {
    let n = values.len();
    if n == 0 {
        return;
    }
    let dim = values[0].len();
    assert!(
        values.iter().all(|v| v.len() == dim),
        "vector dimensions must match"
    );
    let mut degree = vec![0usize; n];
    for &(a, b) in edges {
        assert!(a < n && b < n, "edge endpoint out of range");
        degree[a] += 1;
        degree[b] += 1;
    }
    let old = values.to_vec();
    for &(a, b) in edges {
        let w = 1.0 / (1.0 + degree[a].max(degree[b]) as f64);
        for d in 0..dim {
            let diff = old[b][d] - old[a][d];
            values[a][d] += w * diff;
            values[b][d] -= w * diff;
        }
    }
}

/// Maximum L2 distance of any node's vector from the global mean —
/// the consensus error.
pub fn consensus_error(values: &[Vec<f64>]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = crate::aggregate::mean(values);
    values
        .iter()
        .map(|v| {
            v.iter()
                .zip(&mean)
                .map(|(x, m)| (x - m) * (x - m))
                .sum::<f64>()
                .sqrt()
        })
        .fold(0.0, f64::max)
}

/// Result of a decentralized SGD run.
#[derive(Debug, Clone, PartialEq)]
pub struct DecentralizedRun {
    /// The network-average model after the final round.
    pub average_model: LogisticModel,
    /// Test accuracy of the average model per round.
    pub accuracy_per_round: Vec<f64>,
    /// Consensus error per round.
    pub consensus_per_round: Vec<f64>,
    /// Total undirected pairwise exchanges performed.
    pub messages: u64,
}

impl DecentralizedRun {
    /// Final accuracy of the averaged model.
    pub fn final_accuracy(&self) -> f64 {
        self.accuracy_per_round.last().copied().unwrap_or(0.0)
    }
}

/// Decentralized SGD: per round, every node takes a local gradient step on
/// its shard, then one gossip mix over `topology`.
///
/// # Panics
///
/// Panics when `shards` is empty.
pub fn decentralized_sgd(
    dim: usize,
    shards: &[Vec<Example>],
    test: &[Example],
    topology: MixingTopology,
    rounds: usize,
    lr: f64,
    seed: u64,
) -> DecentralizedRun {
    assert!(!shards.is_empty(), "need at least one node");
    let n = shards.len();
    let mut params: Vec<Vec<f64>> = vec![LogisticModel::new(dim).to_params(); n];
    let mut accuracy_per_round = Vec::with_capacity(rounds);
    let mut consensus_per_round = Vec::with_capacity(rounds);
    let mut messages = 0u64;
    for round in 0..rounds {
        // Local step.
        for (p, shard) in params.iter_mut().zip(shards) {
            if shard.is_empty() {
                continue;
            }
            let mut model = LogisticModel::from_params(p);
            let grad = model.gradient(shard);
            model.apply_gradient(&grad, lr);
            *p = model.to_params();
        }
        // Mix.
        let edges = topology.edges(n, round as u64, seed);
        messages += edges.len() as u64;
        gossip_mix(&mut params, &edges);
        // Trace.
        let avg = crate::aggregate::mean(&params);
        let avg_model = LogisticModel::from_params(&avg);
        accuracy_per_round.push(avg_model.accuracy(test));
        consensus_per_round.push(consensus_error(&params));
    }
    let avg = crate::aggregate::mean(&params);
    DecentralizedRun {
        average_model: LogisticModel::from_params(&avg),
        accuracy_per_round,
        consensus_per_round,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{logistic_dataset, partition, Dataset};

    #[test]
    fn gossip_preserves_the_mean_exactly() {
        let mut values = vec![vec![1.0, 10.0], vec![3.0, -2.0], vec![5.0, 4.0], vec![-1.0, 0.0]];
        let before = crate::aggregate::mean(&values);
        for round in 0..20 {
            let edges = MixingTopology::Random { degree: 2 }.edges(4, round, 1);
            gossip_mix(&mut values, &edges);
        }
        let after = crate::aggregate::mean(&values);
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9, "mean must be invariant");
        }
    }

    #[test]
    fn gossip_converges_to_consensus() {
        let mut values: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 3.0]).collect();
        let initial = consensus_error(&values);
        for round in 0..100 {
            let edges = MixingTopology::Ring.edges(8, round, 0);
            gossip_mix(&mut values, &edges);
        }
        let final_err = consensus_error(&values);
        assert!(final_err < initial * 0.01, "{initial} -> {final_err}");
    }

    #[test]
    fn complete_mixes_faster_than_ring() {
        let run = |topology: MixingTopology| {
            let mut values: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
            for round in 0..5 {
                let edges = topology.edges(10, round, 0);
                gossip_mix(&mut values, &edges);
            }
            consensus_error(&values)
        };
        assert!(run(MixingTopology::Complete) < run(MixingTopology::Ring));
    }

    #[test]
    fn topology_edge_counts() {
        assert_eq!(MixingTopology::Complete.edges(5, 0, 0).len(), 10);
        assert_eq!(MixingTopology::Ring.edges(5, 0, 0).len(), 5);
        assert_eq!(MixingTopology::Ring.edges(2, 0, 0).len(), 1);
        assert!(MixingTopology::Complete.edges(1, 0, 0).is_empty());
        assert_eq!(MixingTopology::Complete.edges_per_round(5), 10);
        assert_eq!(MixingTopology::Ring.edges_per_round(5), 5);
    }

    #[test]
    fn random_topology_is_deterministic_and_varies_per_round() {
        let t = MixingTopology::Random { degree: 3 };
        assert_eq!(t.edges(12, 4, 9), t.edges(12, 4, 9));
        assert_ne!(t.edges(12, 4, 9), t.edges(12, 5, 9));
    }

    fn shards_and_test() -> (Vec<Vec<Example>>, Vec<Example>, usize) {
        let d = logistic_dataset(900, 4, 5.0, 1);
        let (train, test) = d.examples.split_at(700);
        let ds = Dataset {
            examples: train.to_vec(),
            dim: 4,
            true_weights: d.true_weights.clone(),
        };
        (partition(&ds, 8, 0.4, 2), test.to_vec(), 4)
    }

    #[test]
    fn decentralized_sgd_learns() {
        let (shards, test, dim) = shards_and_test();
        let run = decentralized_sgd(dim, &shards, &test, MixingTopology::Ring, 60, 0.5, 3);
        assert!(run.final_accuracy() > 0.8, "{}", run.final_accuracy());
        assert!(run.messages > 0);
        // Consensus shrinks over time.
        let early = run.consensus_per_round[5];
        let late = *run.consensus_per_round.last().unwrap();
        assert!(late <= early + 1e-6);
    }

    #[test]
    fn complete_topology_costs_more_messages_than_ring() {
        let (shards, test, dim) = shards_and_test();
        let ring = decentralized_sgd(dim, &shards, &test, MixingTopology::Ring, 10, 0.5, 3);
        let full = decentralized_sgd(dim, &shards, &test, MixingTopology::Complete, 10, 0.5, 3);
        assert!(full.messages > ring.messages * 2);
    }
}
