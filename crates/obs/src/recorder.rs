//! The [`Recorder`] handle threaded through simulator, runtime, solver
//! and adaptation constructors.

use std::cell::RefCell;
use std::fmt;
use std::io::Write;
use std::rc::Rc;

use crate::event::{DropCause, Subsystem, TraceEvent, TraceRecord};
use crate::metrics::{
    MetricsDigest, MetricsRegistry, LATENCY_MS_BOUNDS, SOLVER_STEP_BOUNDS, UTILITY_BOUNDS,
};
use crate::sink::{JsonlSink, NullSink, RingHandle, RingSink, TraceSink};

/// Per-subsystem sampling: keep every `n`-th event of a subsystem in
/// the *trace sink*. `1` keeps everything (default), `0` keeps nothing.
/// Sampling is a deterministic modulus over the subsystem's emission
/// count, so the same run always keeps the same events. Metrics are
/// **not** sampled — every event updates the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    every_nth: [u32; Subsystem::COUNT],
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig { every_nth: [1; Subsystem::COUNT] }
    }
}

impl SamplingConfig {
    /// Keeps every event of every subsystem.
    pub fn keep_all() -> Self {
        Self::default()
    }

    /// Applies the same `every_nth` to all subsystems.
    pub fn all(n: u32) -> Self {
        SamplingConfig { every_nth: [n; Subsystem::COUNT] }
    }

    /// Sets the sampling interval for one subsystem.
    pub fn with(mut self, sub: Subsystem, every_nth: u32) -> Self {
        self.every_nth[sub.slot()] = every_nth;
        self
    }

    /// The sampling interval for a subsystem.
    pub fn interval(&self, sub: Subsystem) -> u32 {
        self.every_nth[sub.slot()]
    }

    fn keeps(&self, sub: Subsystem, emitted_before: u64) -> bool {
        match self.every_nth[sub.slot()] {
            0 => false,
            n => emitted_before.is_multiple_of(u64::from(n)),
        }
    }
}

/// A recorder's mutable progress state, captured for mission
/// checkpoints: the shared clock, the global sequence counter, the
/// per-subsystem emission counters that drive sampling, and the full
/// metrics registry. The sink itself is *not* part of the checkpoint —
/// a resumed run opens a fresh sink and appends only post-resume
/// records, which is exactly what makes resumed traces byte-comparable
/// to the tail of an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecorderCheckpoint {
    /// Sim-time clock in microseconds.
    pub t_us: u64,
    /// Global trace sequence counter.
    pub seq: u64,
    /// Per-subsystem emission counters (sampling phase).
    pub emitted: [u64; Subsystem::COUNT],
    /// Frozen metrics registry.
    pub metrics: MetricsDigest,
}

struct Inner {
    t_us: u64,
    seq: u64,
    emitted: [u64; Subsystem::COUNT],
    sampling: SamplingConfig,
    metrics: MetricsRegistry,
    sink: Box<dyn TraceSink>,
}

impl Inner {
    fn record(&mut self, t_us: u64, event: TraceEvent) {
        let seq = self.seq;
        self.seq += 1;
        update_metrics(&mut self.metrics, &event);
        let sub = event.subsystem();
        let emitted_before = self.emitted[sub.slot()];
        self.emitted[sub.slot()] += 1;
        if self.sampling.keeps(sub, emitted_before) {
            self.sink.accept(&TraceRecord { t_us, seq, event });
        }
    }
}

/// A cheap-to-clone observability handle. Clones share one clock, one
/// sequence counter, one metrics registry and one sink, so a recorder
/// handed to the simulator and to the runtime produces a single merged,
/// deterministically ordered trace.
///
/// A *disabled* recorder (the default) is a `None` handle: every
/// recording site reduces to one branch, which is what keeps the
/// no-observability configuration at baseline speed.
///
/// `Recorder` is intentionally not `Send` (reference-counted): the
/// portfolio solver's worker threads hand their outcomes back to the
/// calling thread, which records them after the join in deterministic
/// member order.
#[derive(Clone, Default)]
pub struct Recorder(Option<Rc<RefCell<Inner>>>);

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("Recorder(disabled)"),
            Some(inner) => match inner.try_borrow() {
                Ok(i) => write!(f, "Recorder(t_us={}, seq={})", i.t_us, i.seq),
                Err(_) => f.write_str("Recorder(enabled, borrowed)"),
            },
        }
    }
}

impl Recorder {
    /// The no-op recorder: records nothing, costs one branch per site.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// An enabled recorder over an arbitrary sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Recorder(Some(Rc::new(RefCell::new(Inner {
            t_us: 0,
            seq: 0,
            emitted: [0; Subsystem::COUNT],
            sampling: SamplingConfig::default(),
            metrics: MetricsRegistry::new(),
            sink,
        }))))
    }

    /// Metrics-only mode: counters/gauges/histograms are kept, trace
    /// records are discarded ([`NullSink`]).
    pub fn null() -> Self {
        Self::with_sink(Box::new(NullSink))
    }

    /// Records into a bounded in-memory ring; returns the recorder and
    /// the handle used to read the buffered records back.
    pub fn memory(capacity: usize) -> (Self, RingHandle) {
        let (sink, handle) = RingSink::new(capacity);
        (Self::with_sink(Box::new(sink)), handle)
    }

    /// Streams JSON lines into `writer` (see [`JsonlSink`]).
    pub fn jsonl<W: Write + 'static>(writer: W) -> Self {
        Self::with_sink(Box::new(JsonlSink::new(writer)))
    }

    /// Replaces the sampling configuration (builder style).
    pub fn with_sampling(self, sampling: SamplingConfig) -> Self {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().sampling = sampling;
        }
        self
    }

    /// True when this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Advances the shared sim-time clock (integer microseconds).
    /// Call sites stamp the clock before dispatching events; the clock
    /// never moves backwards on its own.
    pub fn set_time_us(&self, t_us: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().t_us = t_us;
        }
    }

    /// The current sim-time clock (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.borrow().t_us,
            None => 0,
        }
    }

    /// Records an event at the current sim time.
    pub fn record(&self, event: TraceEvent) {
        if let Some(inner) = &self.0 {
            let mut i = inner.borrow_mut();
            let t = i.t_us;
            i.record(t, event);
        }
    }

    /// Records an event at an explicit sim time without touching the
    /// shared clock (used by callers that carry their own timeline,
    /// e.g. the actuation safety interlock's epoch seconds).
    pub fn record_at(&self, t_us: u64, event: TraceEvent) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().record(t_us, event);
        }
    }

    /// Adds `by` to a named counter (no trace record).
    pub fn inc(&self, name: &'static str, by: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.inc(name, by);
        }
    }

    /// Sets a named gauge (no trace record).
    pub fn set_gauge(&self, name: &'static str, v: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.set_gauge(name, v);
        }
    }

    /// Records into a named histogram (no trace record).
    pub fn observe(&self, name: &'static str, bounds: &[f64], v: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.observe(name, bounds, v);
        }
    }

    /// Freezes the metrics registry ([`MetricsDigest::default`] when
    /// disabled).
    pub fn metrics_digest(&self) -> MetricsDigest {
        match &self.0 {
            Some(inner) => inner.borrow().metrics.digest(),
            None => MetricsDigest::default(),
        }
    }

    /// Captures the recorder's mutable progress state for a mission
    /// checkpoint, or `None` when disabled (a disabled recorder has no
    /// state worth saving — resume just builds another disabled one).
    pub fn checkpoint(&self) -> Option<RecorderCheckpoint> {
        self.0.as_ref().map(|inner| {
            let i = inner.borrow();
            RecorderCheckpoint {
                t_us: i.t_us,
                seq: i.seq,
                emitted: i.emitted,
                metrics: i.metrics.digest(),
            }
        })
    }

    /// Overwrites the recorder's clock, sequence counter, sampling
    /// phase, and metrics registry from a checkpoint. The sink is left
    /// untouched. Returns `false` (leaving the recorder unchanged) when
    /// the recorder is disabled or the checkpoint's metrics are
    /// internally inconsistent.
    pub fn restore_checkpoint(&self, ckpt: &RecorderCheckpoint) -> bool {
        let Some(inner) = &self.0 else {
            return false;
        };
        let Some(metrics) = MetricsRegistry::from_digest(&ckpt.metrics) else {
            return false;
        };
        let mut i = inner.borrow_mut();
        i.t_us = ckpt.t_us;
        i.seq = ckpt.seq;
        i.emitted = ckpt.emitted;
        i.metrics = metrics;
        true
    }

    /// Flushes the sink (e.g. the JSONL writer's buffer).
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().sink.flush();
        }
    }
}

/// Folds an event into the registry. Every event increments at least
/// one counter, so the digest alone reconstructs the event mix even
/// under aggressive trace sampling.
fn update_metrics(m: &mut MetricsRegistry, event: &TraceEvent) {
    match event {
        TraceEvent::MsgSent { .. } => m.inc("netsim.msg_sent", 1),
        TraceEvent::MsgDelivered { latency_us, .. } => {
            m.inc("netsim.msg_delivered", 1);
            m.observe(
                "netsim.latency_ms",
                &LATENCY_MS_BOUNDS,
                *latency_us as f64 / 1_000.0,
            );
        }
        TraceEvent::MsgDropped { cause, .. } => {
            m.inc("netsim.msg_dropped", 1);
            let name = match cause {
                DropCause::NoRoute => "netsim.drop.no_route",
                DropCause::Channel => "netsim.drop.channel",
                DropCause::Dead => "netsim.drop.dead",
                DropCause::Asleep => "netsim.drop.asleep",
            };
            m.inc(name, 1);
        }
        TraceEvent::RouteFallback { .. } => m.inc("netsim.route_fallback", 1),
        TraceEvent::GraphRebuilt { .. } => m.inc("netsim.graph_rebuilds", 1),
        TraceEvent::NodeDepleted { .. } => m.inc("netsim.node_depleted", 1),
        TraceEvent::NodeDown { .. } => m.inc("netsim.node_down", 1),
        TraceEvent::NodeUp { .. } => m.inc("netsim.node_up", 1),
        TraceEvent::JammerSet { .. } => m.inc("netsim.jammer_toggles", 1),
        TraceEvent::PartitionSet { .. } => m.inc("netsim.partition_toggles", 1),
        TraceEvent::DegradeSet { .. } => m.inc("netsim.degrade_toggles", 1),
        TraceEvent::CompromiseSet { .. } => m.inc("netsim.compromise_toggles", 1),
        TraceEvent::MsgTampered { .. } => m.inc("netsim.msg_tampered", 1),
        TraceEvent::RegionOutage { killed, .. } => {
            m.inc("netsim.region_outages", 1);
            m.inc("netsim.region_killed", *killed);
        }
        TraceEvent::RegionRestore { revived, .. } => {
            m.inc("netsim.region_restores", 1);
            m.inc("netsim.region_revived", *revived);
        }
        TraceEvent::FaultScheduled { fault, .. } => {
            m.inc("faults.scheduled", 1);
            let name = match *fault {
                "crash" => "faults.crash",
                "crash_recover" => "faults.crash_recover",
                "region_blackout" => "faults.region_blackout",
                "partition" => "faults.partition",
                "degrade" => "faults.degrade",
                "compromise" => "faults.compromise",
                _ => "faults.other",
            };
            m.inc(name, 1);
        }
        TraceEvent::Recruitment { recruited, .. } => {
            m.inc("core.recruitments", 1);
            m.set_gauge("core.recruited", *recruited as f64);
        }
        TraceEvent::WindowClosed { utility, .. } => {
            m.inc("core.windows", 1);
            m.observe("core.window_utility", &UTILITY_BOUNDS, *utility);
        }
        TraceEvent::RepairTriggered { .. } => m.inc("core.repairs_triggered", 1),
        TraceEvent::RepairApplied { .. } => m.inc("core.repairs_applied", 1),
        TraceEvent::Suspected { .. } => m.inc("core.suspected", 1),
        TraceEvent::EarlyRepair { .. } => m.inc("core.early_repairs", 1),
        TraceEvent::Shed { .. } => m.inc("core.sheds", 1),
        TraceEvent::Restore { .. } => m.inc("core.restores", 1),
        TraceEvent::TaskRetry { .. } => m.inc("core.task_retries", 1),
        TraceEvent::TaskAbandoned { .. } => m.inc("core.task_abandoned", 1),
        TraceEvent::Solve { steps, .. } => {
            m.inc("synthesis.solves", 1);
            m.observe(
                "synthesis.solve_steps",
                &SOLVER_STEP_BOUNDS,
                *steps as f64,
            );
        }
        TraceEvent::PortfolioMember { .. } => m.inc("synthesis.portfolio_members", 1),
        TraceEvent::Actuation { decision, .. } => {
            m.inc("adapt.actuations", 1);
            let name = match *decision {
                "approved" => "adapt.actuation.approved",
                "withheld_occupied" => "adapt.actuation.withheld_occupied",
                "denied_no_authorization" => "adapt.actuation.denied_no_authorization",
                _ => "adapt.actuation.other",
            };
            m.inc(name, 1);
        }
        TraceEvent::Allocation { .. } => m.inc("adapt.alloc_epochs", 1),
        TraceEvent::FleetAdmit { .. } => m.inc("fleet.admitted", 1),
        TraceEvent::FleetSlice { windows, .. } => {
            m.inc("fleet.slices", 1);
            m.inc("fleet.windows", *windows);
        }
        TraceEvent::FleetEvict { bytes, .. } => {
            m.inc("fleet.evictions", 1);
            m.inc("fleet.evicted_bytes", *bytes);
        }
        TraceEvent::FleetResume { .. } => m.inc("fleet.resumes", 1),
        TraceEvent::FleetComplete { .. } => m.inc("fleet.completed", 1),
        TraceEvent::FleetRetry { .. } => m.inc("fleet.retries", 1),
        TraceEvent::FleetQuarantine { .. } => m.inc("fleet.quarantined", 1),
        TraceEvent::FleetShed { .. } => m.inc("fleet.shed", 1),
        TraceEvent::FleetRecover { .. } => m.inc("fleet.recovers", 1),
        TraceEvent::BridgeConnect { .. } => m.inc("bridge.connects", 1),
        TraceEvent::BridgeRetry { .. } => m.inc("bridge.retries", 1),
        TraceEvent::BridgeDrop { frames, .. } => m.inc("bridge.dropped", *frames),
        TraceEvent::BridgeGaveUp { .. } => m.inc("bridge.gave_up", 1),
        TraceEvent::BridgeCmdDup { .. } => m.inc("bridge.cmd_dup", 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.set_time_us(10);
        r.record(TraceEvent::MsgSent { from: 1, to: 2 });
        r.inc("x", 1);
        assert_eq!(r.now_us(), 0);
        assert!(r.metrics_digest().is_empty());
    }

    #[test]
    fn clones_share_clock_sequence_and_metrics() {
        let (a, ring) = Recorder::memory(16);
        let b = a.clone();
        a.set_time_us(5);
        b.record(TraceEvent::MsgSent { from: 1, to: 2 });
        a.record(TraceEvent::MsgSent { from: 2, to: 3 });
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].t_us, 5);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(a.metrics_digest().counter("netsim.msg_sent"), Some(2));
        assert_eq!(a.metrics_digest(), b.metrics_digest());
    }

    #[test]
    fn sampling_gates_sink_but_not_metrics() {
        let sampling = SamplingConfig::keep_all().with(Subsystem::Netsim, 3);
        let (r, ring) = Recorder::memory(64);
        let r = r.with_sampling(sampling);
        for i in 0..9 {
            r.record(TraceEvent::MsgSent { from: i, to: 0 });
        }
        // Events 0, 3, 6 kept.
        assert_eq!(ring.len(), 3);
        assert_eq!(r.metrics_digest().counter("netsim.msg_sent"), Some(9));
        // Other subsystems are unaffected.
        r.record(TraceEvent::RepairTriggered {
            window: 0,
            utility: 0.1,
            threshold: 0.5,
        });
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn sampling_zero_disables_a_subsystem_trace() {
        let (r, ring) = Recorder::memory(8);
        let r = r.with_sampling(SamplingConfig::keep_all().with(Subsystem::Netsim, 0));
        r.record(TraceEvent::MsgSent { from: 1, to: 2 });
        assert!(ring.is_empty());
        assert_eq!(r.metrics_digest().counter("netsim.msg_sent"), Some(1));
    }

    #[test]
    fn record_at_leaves_clock_untouched() {
        let (r, ring) = Recorder::memory(8);
        r.set_time_us(100);
        r.record_at(
            7_000_000,
            TraceEvent::Actuation {
                requester: 1,
                actuator: 2,
                decision: "approved",
            },
        );
        assert_eq!(r.now_us(), 100);
        assert_eq!(ring.records()[0].t_us, 7_000_000);
        assert_eq!(
            r.metrics_digest().counter("adapt.actuation.approved"),
            Some(1)
        );
    }

    #[test]
    fn checkpoint_roundtrip_restores_clock_sampling_and_metrics() {
        let sampling = SamplingConfig::keep_all().with(Subsystem::Netsim, 2);
        let (a, ring_a) = Recorder::memory(64);
        let a = a.with_sampling(sampling);
        a.set_time_us(1_000);
        for i in 0..5 {
            a.record(TraceEvent::MsgSent { from: i, to: 0 });
        }
        a.observe("x.lat", &[1.0, 10.0], 3.0);
        let ckpt = a.checkpoint().expect("enabled recorder checkpoints");

        // A fresh recorder restored from the checkpoint must continue
        // with the same seq, sampling phase, and metrics...
        let (b, ring_b) = Recorder::memory(64);
        let b = b.with_sampling(sampling);
        assert!(b.restore_checkpoint(&ckpt));
        assert_eq!(b.now_us(), 1_000);
        assert_eq!(b.metrics_digest(), a.metrics_digest());
        // ...so post-restore events get the same seq numbers and the
        // same sampling verdicts in both recorders: the 6th netsim
        // event (phase 5) is dropped by every-2nd sampling, the 7th
        // (phase 6) is kept with seq 6.
        for r in [&a, &b] {
            r.record(TraceEvent::MsgSent { from: 9, to: 0 });
            r.record(TraceEvent::MsgSent { from: 9, to: 1 });
        }
        let last_a = ring_a.records().last().cloned().unwrap();
        let last_b = ring_b.records().last().cloned().unwrap();
        assert_eq!(last_a, last_b);
        assert_eq!(last_b.seq, 6);
        assert_eq!(ring_b.len(), 1, "only the kept event lands post-restore");
        assert_eq!(a.metrics_digest(), b.metrics_digest());

        // Disabled recorders neither checkpoint nor restore.
        assert!(Recorder::disabled().checkpoint().is_none());
        assert!(!Recorder::disabled().restore_checkpoint(&ckpt));

        // An inconsistent histogram snapshot is rejected.
        let mut bad = ckpt.clone();
        if let Some((_, snap)) = bad.metrics.histograms.first_mut() {
            snap.counts.pop();
        }
        assert!(!Recorder::null().restore_checkpoint(&bad));
    }

    #[test]
    fn null_recorder_keeps_metrics_only() {
        let r = Recorder::null();
        r.record(TraceEvent::MsgDropped {
            from: 1,
            to: 2,
            cause: DropCause::Channel,
        });
        let d = r.metrics_digest();
        assert_eq!(d.counter("netsim.msg_dropped"), Some(1));
        assert_eq!(d.counter("netsim.drop.channel"), Some(1));
    }
}
