//! `iobt-trace` — filter and roll up a JSONL trace produced by the
//! `iobt-obs` JSONL sink.
//!
//! ```text
//! iobt-trace [FILE|-] [--sub NAME] [--kind NAME] [--node ID]
//!            [--summary] [--per-node] [--per-window WIDTH_US]
//!            [--topics [--mission ID]]
//! ```
//!
//! With no rollup flag the matching lines are echoed verbatim (a trace
//! `grep`). `--summary` prints per-subsystem/kind counts and the time
//! span; `--per-node` counts events touching each node id;
//! `--per-window` buckets events into fixed sim-time windows; and
//! `--topics` rolls records up by bridge topic
//! (`iobt/<mission>/<node>/<kind>`) — frames captured off the wire use
//! their embedded `topic` key, raw trace lines derive one
//! (`--mission` sets the mission segment, default 0).

use std::collections::BTreeMap;
use std::io::{self, Read};
use std::process::ExitCode;

/// A value in one flat trace record.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl Value {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}` — exactly the shape the
/// JSONL sink emits: no nesting, no arrays). Returns `None` on any
/// deviation, which the caller counts as a malformed line.
fn parse_flat_object(line: &str) -> Option<BTreeMap<String, Value>> {
    let mut chars = line.trim().char_indices().peekable();
    let s = line.trim();
    let mut out = BTreeMap::new();
    match chars.next() {
        Some((_, '{')) => {}
        _ => return None,
    }
    loop {
        match chars.peek().copied() {
            Some((_, '}')) => {
                chars.next();
                break;
            }
            Some((_, ',')) => {
                chars.next();
            }
            Some((_, '"')) => {}
            _ => return None,
        }
        // Key.
        let key = parse_string(&mut chars)?;
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        // Value.
        let value = match chars.peek().copied() {
            Some((_, '"')) => Value::Str(parse_string(&mut chars)?),
            Some((start, c)) if c == 't' || c == 'f' || c == 'n' => {
                let rest = &s[start..];
                if rest.starts_with("true") {
                    advance(&mut chars, 4);
                    Value::Bool(true)
                } else if rest.starts_with("false") {
                    advance(&mut chars, 5);
                    Value::Bool(false)
                } else if rest.starts_with("null") {
                    advance(&mut chars, 4);
                    Value::Null
                } else {
                    return None;
                }
            }
            Some((start, c)) if c == '-' || c.is_ascii_digit() => {
                let mut end = start;
                while let Some((i, c)) = chars.peek().copied() {
                    if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit()
                    {
                        end = i + c.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                Value::Num(s.get(start..end)?.parse().ok()?)
            }
            _ => return None,
        };
        out.insert(key, value);
    }
    // Trailing garbage after the closing brace is malformed.
    if chars.next().is_some() {
        return None;
    }
    Some(out)
}

fn advance(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>, n: usize) {
    for _ in 0..n {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) -> Option<String> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    loop {
        let (_, c) = chars.next()?;
        match c {
            '"' => return Some(out),
            '\\' => {
                let (_, esc) = chars.next()?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next()?;
                            code = code * 16 + h.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => out.push(c),
        }
    }
}

#[derive(Debug, Default)]
struct Filters {
    sub: Option<String>,
    kind: Option<String>,
    node: Option<u64>,
}

impl Filters {
    fn matches(&self, rec: &BTreeMap<String, Value>) -> bool {
        if let Some(want) = &self.sub {
            if rec.get("sub").and_then(Value::as_str) != Some(want) {
                return false;
            }
        }
        if let Some(want) = &self.kind {
            if rec.get("kind").and_then(Value::as_str) != Some(want) {
                return false;
            }
        }
        if let Some(want) = self.node {
            let touches = ["from", "to", "node", "requester", "actuator"]
                .iter()
                .any(|k| rec.get(*k).and_then(Value::as_u64) == Some(want));
            if !touches {
                return false;
            }
        }
        true
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Echo,
    Summary,
    PerNode,
    PerWindow(u64),
    Topics,
}

fn usage() -> String {
    "usage: iobt-trace [FILE|-] [--sub NAME] [--kind NAME] [--node ID] \
     [--summary] [--per-node] [--per-window WIDTH_US] [--topics [--mission ID]]"
        .to_owned()
}

struct Options {
    input: Option<String>,
    filters: Filters,
    mode: Mode,
    /// Mission id used when deriving topics for raw trace lines.
    mission: u64,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut input = None;
    let mut filters = Filters::default();
    let mut mode = Mode::Echo;
    let mut mission = 0u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--summary" => mode = Mode::Summary,
            "--per-node" => mode = Mode::PerNode,
            "--topics" => mode = Mode::Topics,
            "--mission" => {
                let m = it
                    .next()
                    .ok_or_else(|| format!("--mission needs ID\n{}", usage()))?;
                mission = m.parse().map_err(|_| {
                    format!("--mission ID must be a non-negative integer, got {m:?}")
                })?;
            }
            "--per-window" => {
                let w = it
                    .next()
                    .ok_or_else(|| format!("--per-window needs WIDTH_US\n{}", usage()))?;
                let width: u64 = w
                    .parse()
                    .map_err(|_| format!("--per-window WIDTH_US must be an integer, got {w:?}"))?;
                if width == 0 {
                    return Err("--per-window WIDTH_US must be positive".to_owned());
                }
                mode = Mode::PerWindow(width);
            }
            "--sub" => {
                filters.sub = Some(
                    it.next()
                        .ok_or_else(|| format!("--sub needs NAME\n{}", usage()))?
                        .clone(),
                );
            }
            "--kind" => {
                filters.kind = Some(
                    it.next()
                        .ok_or_else(|| format!("--kind needs NAME\n{}", usage()))?
                        .clone(),
                );
            }
            "--node" => {
                let n = it
                    .next()
                    .ok_or_else(|| format!("--node needs ID\n{}", usage()))?;
                filters.node =
                    Some(n.parse().map_err(|_| {
                        format!("--node ID must be a non-negative integer, got {n:?}")
                    })?);
            }
            "--help" | "-h" => return Err(usage()),
            other if input.is_none() && !other.starts_with("--") => {
                input = Some(other.to_owned());
            }
            other => return Err(format!("unrecognized argument {other:?}\n{}", usage())),
        }
    }
    Ok(Options {
        input,
        filters,
        mode,
        mission,
    })
}

fn read_input(input: Option<&str>) -> io::Result<String> {
    match input {
        None | Some("-") => {
            let mut buf = String::new();
            io::stdin().lock().read_to_string(&mut buf)?;
            Ok(buf)
        }
        Some(path) => std::fs::read_to_string(path),
    }
}

fn run(opts: &Options, text: &str) -> (String, u64) {
    let mut malformed = 0u64;
    let mut kept: Vec<(String, BTreeMap<String, Value>)> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_flat_object(line) {
            Some(rec) => {
                if opts.filters.matches(&rec) {
                    kept.push((line.to_owned(), rec));
                }
            }
            None => malformed += 1,
        }
    }
    let mut out = String::new();
    match opts.mode {
        Mode::Echo => {
            for (line, _) in &kept {
                out.push_str(line);
                out.push('\n');
            }
        }
        Mode::Summary => render_summary(&mut out, &kept),
        Mode::PerNode => render_per_node(&mut out, &kept),
        Mode::PerWindow(width) => render_per_window(&mut out, &kept, width),
        Mode::Topics => render_topics(&mut out, &kept, opts.mission),
    }
    (out, malformed)
}

/// The topic one record maps onto: captured bridge frames carry it
/// verbatim in a `topic` key; raw trace lines derive
/// `iobt/<mission>/<node>/<kind>` exactly the way the bridge does
/// (first of `node`/`from`/`requester`, `-` when nodeless).
fn record_topic(rec: &BTreeMap<String, Value>, mission: u64) -> String {
    if let Some(topic) = rec.get("topic").and_then(Value::as_str) {
        return topic.to_owned();
    }
    let kind = rec.get("kind").and_then(Value::as_str).unwrap_or("?");
    let node = ["node", "from", "requester"]
        .iter()
        .find_map(|k| rec.get(*k).and_then(Value::as_u64));
    match node {
        Some(n) => format!("iobt/{mission}/{n}/{kind}"),
        None => format!("iobt/{mission}/-/{kind}"),
    }
}

fn render_topics(out: &mut String, kept: &[(String, BTreeMap<String, Value>)], mission: u64) {
    use std::fmt::Write as _;
    let mut by_topic: BTreeMap<String, u64> = BTreeMap::new();
    for (_, rec) in kept {
        *by_topic.entry(record_topic(rec, mission)).or_insert(0) += 1;
    }
    let _ = writeln!(out, "topics: {}", by_topic.len());
    for (topic, n) in &by_topic {
        let _ = writeln!(out, "  {topic:<40} {n}");
    }
}

fn render_summary(out: &mut String, kept: &[(String, BTreeMap<String, Value>)]) {
    use std::fmt::Write as _;
    let mut by_kind: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for (_, rec) in kept {
        let sub = rec
            .get("sub")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned();
        let kind = rec
            .get("kind")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned();
        *by_kind.entry((sub, kind)).or_insert(0) += 1;
        if let Some(t) = rec.get("t_us").and_then(Value::as_u64) {
            t_min = t_min.min(t);
            t_max = t_max.max(t);
        }
    }
    let _ = writeln!(out, "records: {}", kept.len());
    if !kept.is_empty() && t_min != u64::MAX {
        let _ = writeln!(
            out,
            "span: t_us {t_min}..{t_max} ({:.3} s)",
            (t_max - t_min) as f64 / 1e6
        );
    }
    for ((sub, kind), n) in &by_kind {
        let _ = writeln!(out, "  {sub:<10} {kind:<20} {n}");
    }
}

fn render_per_node(out: &mut String, kept: &[(String, BTreeMap<String, Value>)]) {
    use std::fmt::Write as _;
    let mut by_node: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, rec) in kept {
        for key in ["from", "to", "node", "requester", "actuator"] {
            if let Some(id) = rec.get(key).and_then(Value::as_u64) {
                *by_node.entry(id).or_insert(0) += 1;
            }
        }
    }
    let _ = writeln!(out, "nodes: {}", by_node.len());
    for (node, n) in &by_node {
        let _ = writeln!(out, "  n{node:<10} {n}");
    }
}

fn render_per_window(out: &mut String, kept: &[(String, BTreeMap<String, Value>)], width_us: u64) {
    use std::fmt::Write as _;
    let mut by_window: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, rec) in kept {
        if let Some(t) = rec.get("t_us").and_then(Value::as_u64) {
            *by_window.entry(t / width_us).or_insert(0) += 1;
        }
    }
    let _ = writeln!(out, "windows ({width_us} us each): {}", by_window.len());
    for (w, n) in &by_window {
        let _ = writeln!(out, "  [{}..{}) {n}", w * width_us, (w + 1) * width_us);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let text = match read_input(opts.input.as_deref()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "iobt-trace: cannot read {}: {e}",
                opts.input.as_deref().unwrap_or("stdin")
            );
            return ExitCode::from(2);
        }
    };
    let (out, malformed) = run(&opts, &text);
    print!("{out}");
    if malformed > 0 {
        eprintln!("iobt-trace: skipped {malformed} malformed line(s)");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"seq\":0,\"t_us\":0,\"sub\":\"core\",\"kind\":\"recruitment\",\"candidates\":5,\"recruited\":3}\n",
        "{\"seq\":1,\"t_us\":1000,\"sub\":\"netsim\",\"kind\":\"msg_sent\",\"from\":3,\"to\":9}\n",
        "{\"seq\":2,\"t_us\":2500,\"sub\":\"netsim\",\"kind\":\"msg_dropped\",\"from\":3,\"to\":9,\"cause\":\"no_route\"}\n",
        "not json\n",
    );

    fn opts(mode: Mode, filters: Filters) -> Options {
        Options {
            input: None,
            filters,
            mode,
            mission: 0,
        }
    }

    #[test]
    fn parses_and_counts_malformed() {
        let (out, malformed) = run(&opts(Mode::Echo, Filters::default()), SAMPLE);
        assert_eq!(malformed, 1);
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn filters_by_sub_kind_and_node() {
        let f = Filters {
            sub: Some("netsim".to_owned()),
            ..Filters::default()
        };
        let (out, _) = run(&opts(Mode::Echo, f), SAMPLE);
        assert_eq!(out.lines().count(), 2);

        let f = Filters {
            kind: Some("msg_dropped".to_owned()),
            ..Filters::default()
        };
        let (out, _) = run(&opts(Mode::Echo, f), SAMPLE);
        assert_eq!(out.lines().count(), 1);

        let f = Filters {
            node: Some(9),
            ..Filters::default()
        };
        let (out, _) = run(&opts(Mode::Echo, f), SAMPLE);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn summary_rolls_up_by_sub_and_kind() {
        let (out, _) = run(&opts(Mode::Summary, Filters::default()), SAMPLE);
        assert!(out.contains("records: 3"));
        assert!(out.contains("msg_sent"));
        assert!(out.contains("recruitment"));
        assert!(out.contains("span: t_us 0..2500"));
    }

    #[test]
    fn per_window_buckets_by_time() {
        let (out, _) = run(&opts(Mode::PerWindow(1000), Filters::default()), SAMPLE);
        assert!(out.contains("windows (1000 us each): 3"));
    }

    #[test]
    fn parse_args_accepts_combined_flags() {
        let args: Vec<String> = ["trace.jsonl", "--sub", "netsim", "--per-window", "500"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let o = parse_args(&args).map_err(|e| e.to_string());
        match o {
            Ok(o) => {
                assert_eq!(o.input.as_deref(), Some("trace.jsonl"));
                assert_eq!(o.mode, Mode::PerWindow(500));
                assert_eq!(o.filters.sub.as_deref(), Some("netsim"));
            }
            Err(e) => {
                assert!(false, "parse failed: {e}");
            }
        }
    }

    #[test]
    fn topics_rollup_derives_and_honors_embedded_topic() {
        let mixed = concat!(
            "{\"seq\":0,\"t_us\":0,\"sub\":\"netsim\",\"kind\":\"msg_sent\",\"from\":3,\"to\":9}\n",
            "{\"seq\":1,\"t_us\":5,\"sub\":\"netsim\",\"kind\":\"msg_sent\",\"from\":3,\"to\":9}\n",
            "{\"topic\":\"iobt/7/3/msg_sent\",\"seq\":2,\"t_us\":9,\"sub\":\"netsim\",\"kind\":\"msg_sent\",\"from\":3,\"to\":9}\n",
            "{\"seq\":3,\"t_us\":12,\"sub\":\"core\",\"kind\":\"window_closed\",\"window\":0}\n",
        );
        let mut o = opts(Mode::Topics, Filters::default());
        o.mission = 4;
        let (out, malformed) = run(&o, mixed);
        assert_eq!(malformed, 0);
        assert!(out.contains("topics: 3"), "got: {out}");
        assert!(out.contains("iobt/4/3/msg_sent"));
        assert!(out.contains("iobt/7/3/msg_sent"));
        assert!(out.contains("iobt/4/-/window_closed"));
    }

    #[test]
    fn sub_filter_selects_bridge_events() {
        let mixed = concat!(
            "{\"seq\":0,\"t_us\":0,\"sub\":\"bridge\",\"kind\":\"bridge_retry\",\"attempt\":1,\"backoff_ticks\":2}\n",
            "{\"seq\":1,\"t_us\":1,\"sub\":\"netsim\",\"kind\":\"msg_sent\",\"from\":3,\"to\":9}\n",
        );
        let f = Filters {
            sub: Some("bridge".to_owned()),
            ..Filters::default()
        };
        let (out, _) = run(&opts(Mode::Echo, f), mixed);
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("bridge_retry"));
    }

    #[test]
    fn parse_flat_object_rejects_nesting_and_garbage() {
        assert!(parse_flat_object("{\"a\":{\"b\":1}}").is_none());
        assert!(parse_flat_object("{\"a\":1} extra").is_none());
        assert!(parse_flat_object("[1,2]").is_none());
        let ok = parse_flat_object("{\"a\":-1.5e3,\"b\":true,\"c\":null,\"d\":\"x\\u0041\"}");
        match ok {
            Some(m) => {
                assert_eq!(m.get("a"), Some(&Value::Num(-1500.0)));
                assert_eq!(m.get("d"), Some(&Value::Str("xA".to_owned())));
            }
            None => assert!(false, "expected parse"),
        }
    }
}
