//! Deterministic observability for the IoBT platform.
//!
//! The runtime, simulator, synthesis engine and adaptation services emit
//! structured [`TraceEvent`]s through a shared [`Recorder`] handle. Three
//! properties distinguish this layer from a conventional logger:
//!
//! * **Sim-time stamping.** Every record carries the *simulation* clock
//!   (integer microseconds) plus a monotone sequence number — never the
//!   wall clock. Two runs of the same seed therefore produce
//!   byte-identical traces (lint rule R2 applies to this crate).
//! * **Deterministic aggregation.** The [`MetricsRegistry`] keeps
//!   counters, gauges and fixed-bucket histograms in ordered maps, and
//!   folds into a [`MetricsDigest`] that is `PartialEq`-comparable and
//!   fingerprintable across runs.
//! * **Near-zero cost when off.** A disabled [`Recorder`] is a `None`
//!   handle: every recording site is a single branch. The [`NullSink`]
//!   keeps metrics but discards trace records.
//!
//! Sinks are pluggable: [`NullSink`] (metrics only), [`RingSink`]
//! (bounded in-memory buffer for tests and post-mortems) and
//! [`JsonlSink`] (one JSON object per line, stable key order). Sampling
//! is per-subsystem and deterministic (`every_nth`), and gates only the
//! sink — metrics always observe every event.
//!
//! ```
//! use iobt_obs::{Recorder, Subsystem, TraceEvent};
//!
//! let (rec, ring) = Recorder::memory(1024);
//! rec.set_time_us(1_500_000);
//! rec.record(TraceEvent::MsgSent { from: 3, to: 9 });
//! assert_eq!(ring.len(), 1);
//! assert_eq!(rec.metrics_digest().counter("netsim.msg_sent"), Some(1));
//! assert_eq!(Subsystem::Netsim.as_str(), "netsim");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod sink;

pub use event::{DropCause, Subsystem, TraceEvent, TraceRecord};
pub use metrics::{Histogram, HistogramSnapshot, MetricsDigest, MetricsRegistry};
pub use recorder::{Recorder, RecorderCheckpoint, SamplingConfig};
pub use sink::{JsonlSink, NullSink, RingHandle, RingSink, SharedBytes, TraceSink};

/// Convenience re-exports mirroring the other subsystem crates.
pub mod prelude {
    pub use crate::event::{DropCause, Subsystem, TraceEvent, TraceRecord};
    pub use crate::metrics::{Histogram, HistogramSnapshot, MetricsDigest, MetricsRegistry};
    pub use crate::recorder::{Recorder, RecorderCheckpoint, SamplingConfig};
    pub use crate::sink::{JsonlSink, NullSink, RingHandle, RingSink, SharedBytes, TraceSink};
}
