//! Pluggable trace sinks: null, bounded in-memory ring, JSONL writer.

use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

use crate::event::TraceRecord;

/// Where sampled trace records go. Sinks receive records *after* the
/// per-subsystem sampling gate; metrics are updated regardless of what
/// the sink does.
pub trait TraceSink {
    /// Accepts one record.
    fn accept(&mut self, record: &TraceRecord);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

/// Discards every record. With a `NullSink` the recorder still counts
/// metrics, so this is the "metrics only, near-zero overhead" mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn accept(&mut self, _record: &TraceRecord) {}
}

#[derive(Debug, Default)]
struct RingState {
    records: Vec<TraceRecord>,
    capacity: usize,
    next: usize,
    dropped: u64,
}

/// A shared read handle onto a [`RingSink`]'s buffer. Cloning is cheap
/// (reference-counted); the handle stays valid after the recorder is
/// dropped, which is how tests inspect what was traced.
#[derive(Debug, Clone, Default)]
pub struct RingHandle(Rc<RefCell<RingState>>);

impl RingHandle {
    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.0.borrow().records.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().records.is_empty()
    }

    /// How many records were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.0.borrow().dropped
    }

    /// Snapshots the buffered records in emission order (oldest first).
    pub fn records(&self) -> Vec<TraceRecord> {
        let state = self.0.borrow();
        if state.records.len() < state.capacity {
            state.records.clone()
        } else {
            // Full ring: `next` points at the oldest record.
            let mut out = Vec::with_capacity(state.records.len());
            out.extend_from_slice(&state.records[state.next..]);
            out.extend_from_slice(&state.records[..state.next]);
            out
        }
    }
}

/// A bounded in-memory sink: keeps the most recent `capacity` records,
/// counting (not silently hiding) what it had to overwrite.
#[derive(Debug)]
pub struct RingSink(Rc<RefCell<RingState>>);

impl RingSink {
    /// Creates a ring of the given capacity (minimum 1) and the handle
    /// used to read it back.
    pub fn new(capacity: usize) -> (Self, RingHandle) {
        let capacity = capacity.max(1);
        let state = Rc::new(RefCell::new(RingState {
            records: Vec::new(),
            capacity,
            next: 0,
            dropped: 0,
        }));
        (RingSink(Rc::clone(&state)), RingHandle(state))
    }
}

impl TraceSink for RingSink {
    fn accept(&mut self, record: &TraceRecord) {
        let mut state = self.0.borrow_mut();
        let capacity = state.capacity;
        if state.records.len() < capacity {
            state.records.push(record.clone());
        } else {
            let slot = state.next;
            if let Some(r) = state.records.get_mut(slot) {
                *r = record.clone();
            }
            state.next = (slot + 1) % capacity;
            state.dropped += 1;
        }
    }
}

/// Streams records as JSON lines into any [`io::Write`]. Encoding is
/// deterministic (fixed key order, shortest-roundtrip floats), so two
/// runs of the same seed produce byte-identical output.
///
/// I/O errors poison the sink: it stops writing and remembers the
/// error instead of panicking mid-simulation (query with
/// [`JsonlSink::io_error`]).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    line: String,
    error: Option<io::ErrorKind>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            line: String::with_capacity(128),
            error: None,
        }
    }

    /// The first I/O error encountered, if the sink is poisoned.
    pub fn io_error(&self) -> Option<io::ErrorKind> {
        self.error
    }

    /// Flushes and returns the inner writer (and any sticky error).
    pub fn into_inner(mut self) -> (W, Option<io::ErrorKind>) {
        let _ = self.writer.flush();
        (self.writer, self.error)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn accept(&mut self, record: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        record.encode_jsonl(&mut self.line);
        if let Err(e) = self.writer.write_all(self.line.as_bytes()) {
            self.error = Some(e.kind());
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e.kind());
            }
        }
    }
}

/// A reference-counted byte buffer implementing [`io::Write`] — lets a
/// test hand a `JsonlSink` to a recorder and still read the bytes back
/// afterwards.
#[derive(Debug, Clone, Default)]
pub struct SharedBytes(Rc<RefCell<Vec<u8>>>);

impl SharedBytes {
    /// Creates an empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the accumulated bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.borrow().clone()
    }

    /// The accumulated bytes, lossily decoded as UTF-8.
    pub fn to_string_lossy(&self) -> String {
        String::from_utf8_lossy(&self.0.borrow()).into_owned()
    }

    /// Number of bytes accumulated.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when no bytes were written.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }
}

impl Write for SharedBytes {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            t_us: seq * 10,
            seq,
            event: TraceEvent::MsgSent { from: seq, to: 0 },
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_overwrites() {
        let (mut sink, handle) = RingSink::new(3);
        for i in 0..5 {
            sink.accept(&rec(i));
        }
        assert_eq!(handle.len(), 3);
        assert_eq!(handle.dropped(), 2);
        let seqs: Vec<u64> = handle.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn ring_capacity_zero_is_clamped() {
        let (mut sink, handle) = RingSink::new(0);
        sink.accept(&rec(0));
        sink.accept(&rec(1));
        assert_eq!(handle.len(), 1);
        assert_eq!(handle.dropped(), 1);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let shared = SharedBytes::new();
        let mut sink = JsonlSink::new(shared.clone());
        sink.accept(&rec(0));
        sink.accept(&rec(1));
        sink.flush();
        let text = shared.to_string_lossy();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"seq\":0,"));
        assert!(sink.io_error().is_none());
    }

    #[test]
    fn jsonl_sink_poisons_on_error() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "down"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.accept(&rec(0));
        assert_eq!(sink.io_error(), Some(io::ErrorKind::BrokenPipe));
        // Poisoned: further accepts are silently skipped, no panic.
        sink.accept(&rec(1));
    }
}
