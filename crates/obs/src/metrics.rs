//! Deterministic metrics: counters, gauges, fixed-bucket histograms, and
//! the stable [`MetricsDigest`] fingerprint.
//!
//! All maps are `BTreeMap`s keyed by `&'static str` metric names, so
//! iteration order — and therefore the digest and its fingerprint — is
//! identical across runs (lint rule R1 conventions).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// Interns a metric name, returning a `&'static str` usable as a
/// registry key. Registry keys are `&'static str` by design (every
/// normal call site passes a literal); checkpoint restore is the one
/// place names arrive as owned strings, so restored names are leaked
/// once and reused on every later restore of the same name. The set of
/// metric names in this workspace is small and fixed, so the leak is
/// bounded.
fn intern(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let cell = INTERNED.get_or_init(|| Mutex::new(BTreeSet::new()));
    // A poisoned lock only means another thread panicked mid-insert;
    // the set itself is still valid, so keep going.
    let mut set = match cell.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// A fixed-bound histogram with explicit underflow/overflow buckets.
///
/// For bounds `[b0, b1, …, bk]` there are `k + 2` buckets:
/// bucket `0` counts `v <= b0` (the underflow side), bucket `i` counts
/// `b(i-1) < v <= bi`, and the final bucket counts `v > bk` (overflow).
/// Bounds are fixed at construction, so merged or compared histograms
/// from identical runs are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram over the given ascending bucket bounds.
    /// Non-ascending or non-finite bounds are dropped (the histogram
    /// keeps the longest valid ascending prefix).
    pub fn new(bounds: &[f64]) -> Self {
        let mut clean: Vec<f64> = Vec::with_capacity(bounds.len());
        for &b in bounds {
            if b.is_finite() && clean.last().is_none_or(|&prev| b > prev) {
                clean.push(b);
            }
        }
        let buckets = clean.len() + 1;
        Histogram {
            bounds: clean,
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket (they are out of every bound) but excluded from
    /// `sum` so the mean stays finite.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if !v.is_finite() {
            if let Some(last) = self.counts.last_mut() {
                *last += 1;
            }
            return;
        }
        self.sum += v;
        let idx = self.bounds.partition_point(|&b| b < v);
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
    }

    /// Total number of observations (including non-finite ones).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a histogram from a snapshot (checkpoint restore).
    /// Returns `None` when the snapshot is internally inconsistent —
    /// non-ascending/non-finite bounds or a count vector of the wrong
    /// length — so corrupted checkpoints are rejected, not trusted.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Option<Self> {
        let clean = Histogram::new(&snap.bounds);
        if clean.bounds != snap.bounds || snap.counts.len() != snap.bounds.len() + 1 {
            return None;
        }
        Some(Histogram {
            bounds: snap.bounds.clone(),
            counts: snap.counts.clone(),
            total: snap.total,
            sum: snap.sum,
        })
    }

    /// Freezes this histogram into a digest-friendly snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            total: self.total,
            sum: self.sum,
        }
    }
}

/// An immutable, comparable snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries, overflow last).
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of finite observations.
    pub sum: f64,
}

/// The registry every [`Recorder`](crate::Recorder) carries: ordered
/// maps of counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Sets the named gauge to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Records `v` into the named histogram, creating it with `bounds`
    /// on first use (later calls ignore `bounds`).
    pub fn observe(&mut self, name: &'static str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .record(v);
    }

    /// Current value of a counter, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of a gauge, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Read access to a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Rebuilds a registry from a digest (checkpoint restore). Names
    /// are interned so they satisfy the `&'static str` key type.
    /// Returns `None` when any histogram snapshot is inconsistent.
    pub fn from_digest(digest: &MetricsDigest) -> Option<Self> {
        let mut reg = MetricsRegistry::new();
        for (name, v) in &digest.counters {
            reg.counters.insert(intern(name), *v);
        }
        for (name, v) in &digest.gauges {
            reg.gauges.insert(intern(name), *v);
        }
        for (name, snap) in &digest.histograms {
            reg.histograms.insert(intern(name), Histogram::from_snapshot(snap)?);
        }
        Some(reg)
    }

    /// Freezes the registry into a stable, comparable digest.
    pub fn digest(&self) -> MetricsDigest {
        MetricsDigest {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| ((*k).to_owned(), h.snapshot()))
                .collect(),
        }
    }
}

/// A frozen, ordered view of a [`MetricsRegistry`]: equality across two
/// digests means the two runs agreed on every counter, gauge and
/// histogram bucket. The determinism tests compare digests the same way
/// `EndStateDigest` compares end states (PR-2 conventions).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsDigest {
    /// `(name, value)` counters in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges in name order.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` histograms in name order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsDigest {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// True when no metric was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the digest into one canonical string (the fingerprint
    /// input). Floats use shortest-roundtrip `Display`, so identical
    /// bit patterns render identically.
    pub fn canonical_string(&self) -> String {
        let mut s = String::with_capacity(256);
        for (k, v) in &self.counters {
            let _ = write!(s, "c:{k}={v};");
        }
        for (k, v) in &self.gauges {
            let _ = write!(s, "g:{k}={v};");
        }
        for (k, h) in &self.histograms {
            let _ = write!(s, "h:{k}=n{}s{}", h.total, h.sum);
            // Bucket bounds are part of the histogram's identity: two
            // runs bucketing the same samples differently must not
            // fingerprint as equal.
            for b in &h.bounds {
                let _ = write!(s, "|{b}");
            }
            for c in &h.counts {
                let _ = write!(s, ",{c}");
            }
            s.push(';');
        }
        s
    }

    /// A 64-bit FNV-1a fingerprint of the canonical rendering —
    /// convenient for logging one comparable number per run.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.canonical_string().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

impl fmt::Display for MetricsDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MetricsDigest(fingerprint={:016x}, {} counters, {} gauges, {} histograms)",
            self.fingerprint(),
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len()
        )
    }
}

/// Standard latency bucket bounds in milliseconds.
pub(crate) const LATENCY_MS_BOUNDS: [f64; 10] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
];

/// Standard solver-step bucket bounds.
pub(crate) const SOLVER_STEP_BOUNDS: [f64; 8] = [
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0, 100_000_000.0,
];

/// Standard utility bucket bounds.
pub(crate) const UTILITY_BOUNDS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_underflow_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.record(-5.0); // underflow side -> bucket 0
        h.record(0.5); // bucket 0
        h.record(1.0); // boundary is inclusive -> bucket 0
        h.record(1.0001); // bucket 1
        h.record(10.0); // bucket 1
        h.record(99.9); // bucket 2
        h.record(100.0); // bucket 2
        h.record(1e9); // overflow bucket
        assert_eq!(h.counts(), &[3, 2, 2, 1]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_handles_non_finite_and_empty() {
        let mut h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.counts(), &[0, 2]);
        assert_eq!(h.sum(), 0.0);
        let empty = Histogram::new(&[1.0, 2.0]);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.counts(), &[0, 0, 0]);
    }

    #[test]
    fn histogram_rejects_bad_bounds() {
        let h = Histogram::new(&[1.0, 1.0, 0.5, 2.0, f64::NAN]);
        // Longest valid ascending prefix: [1.0, 2.0].
        assert_eq!(h.bounds(), &[1.0, 2.0]);
        assert_eq!(h.counts().len(), 3);
    }

    #[test]
    fn empty_digest_is_empty_and_stable() {
        let d = MetricsRegistry::new().digest();
        assert!(d.is_empty());
        assert_eq!(d, MetricsDigest::default());
        assert_eq!(d.fingerprint(), MetricsDigest::default().fingerprint());
        assert_eq!(d.counter("anything"), None);
        assert_eq!(d.histogram("anything"), None);
    }

    #[test]
    fn digest_equality_and_fingerprint_track_content() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for r in [&mut a, &mut b] {
            r.inc("x.count", 2);
            r.set_gauge("x.level", 0.25);
            r.observe("x.lat", &[1.0, 10.0], 3.0);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest().fingerprint(), b.digest().fingerprint());
        b.inc("x.count", 1);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest().fingerprint(), b.digest().fingerprint());
        assert_eq!(a.digest().counter("x.count"), Some(2));
        assert_eq!(a.digest().gauge("x.level"), Some(0.25));
    }

    #[test]
    fn digest_display_is_compact() {
        let mut r = MetricsRegistry::new();
        r.inc("a", 1);
        let shown = r.digest().to_string();
        assert!(shown.contains("1 counters"));
        assert!(shown.contains("fingerprint="));
    }
}
