//! The trace-event taxonomy and its deterministic JSONL encoding.
//!
//! Every event names the subsystem that emitted it and carries only
//! plain values (raw `u64` identifiers, integer microseconds, `f64`
//! measurements) so this crate stays dependency-free and the encoding
//! stays stable. Encoding is hand-rolled with a fixed key order —
//! `serde_json` would also be deterministic, but an explicit encoder
//! makes the byte-identical-trace guarantee auditable in one screen.

use std::fmt::Write as _;

/// The subsystem that emitted an event. Used for filtering and for the
/// per-subsystem sampling controls in
/// [`SamplingConfig`](crate::SamplingConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// The battlefield network simulator (`iobt-netsim`).
    Netsim,
    /// The mission runtime (`iobt-core`).
    Core,
    /// The composition/repair solvers (`iobt-synthesis`).
    Synthesis,
    /// The adaptation services (`iobt-adapt`).
    Adapt,
    /// The fault-injection subsystem (`iobt-faults`).
    Faults,
    /// The multi-tenant mission scheduler (`iobt-fleet`).
    Fleet,
    /// The fault-tolerant edge-streaming daemon (`iobt-bridge`).
    Bridge,
}

impl Subsystem {
    /// Stable lower-case name used in the JSONL schema (`"sub"` key).
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Netsim => "netsim",
            Subsystem::Core => "core",
            Subsystem::Synthesis => "synthesis",
            Subsystem::Adapt => "adapt",
            Subsystem::Faults => "faults",
            Subsystem::Fleet => "fleet",
            Subsystem::Bridge => "bridge",
        }
    }

    /// Parses the stable name back into a subsystem.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "netsim" => Some(Subsystem::Netsim),
            "core" => Some(Subsystem::Core),
            "synthesis" => Some(Subsystem::Synthesis),
            "adapt" => Some(Subsystem::Adapt),
            "faults" => Some(Subsystem::Faults),
            "fleet" => Some(Subsystem::Fleet),
            "bridge" => Some(Subsystem::Bridge),
            _ => None,
        }
    }

    /// Number of subsystems (the length of every per-subsystem slot
    /// array: sampling strides, emitted counters, checkpoints).
    pub const COUNT: usize = 7;

    /// All subsystems, in sampling-slot order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::Netsim,
        Subsystem::Core,
        Subsystem::Synthesis,
        Subsystem::Adapt,
        Subsystem::Faults,
        Subsystem::Fleet,
        Subsystem::Bridge,
    ];

    pub(crate) fn slot(self) -> usize {
        match self {
            Subsystem::Netsim => 0,
            Subsystem::Core => 1,
            Subsystem::Synthesis => 2,
            Subsystem::Adapt => 3,
            Subsystem::Faults => 4,
            Subsystem::Fleet => 5,
            Subsystem::Bridge => 6,
        }
    }
}

/// Why the simulator dropped a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// No route existed from source to destination.
    NoRoute,
    /// A hop lost the channel-loss coin flip on every retry.
    Channel,
    /// Source, relay or destination was dead (energy / churn / kill).
    Dead,
    /// Source or destination was in a sleep-schedule off phase.
    Asleep,
}

impl DropCause {
    /// Stable lower-case name used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::NoRoute => "no_route",
            DropCause::Channel => "channel",
            DropCause::Dead => "dead",
            DropCause::Asleep => "asleep",
        }
    }
}

/// A structured trace event. Identifiers are raw `u64`s (see
/// `NodeId::raw`) so `iobt-obs` sits below every other crate in the
/// dependency graph.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    // -- netsim ----------------------------------------------------------
    /// A message was handed to the radio for transmission.
    MsgSent {
        /// Source node id.
        from: u64,
        /// Destination node id.
        to: u64,
    },
    /// A message reached its destination.
    MsgDelivered {
        /// Source node id.
        from: u64,
        /// Destination node id.
        to: u64,
        /// End-to-end latency in integer microseconds of sim time.
        latency_us: u64,
    },
    /// A message died in the network.
    MsgDropped {
        /// Source node id.
        from: u64,
        /// Destination node id.
        to: u64,
        /// Which failure mode killed it.
        cause: DropCause,
    },
    /// A hop of a precomputed route vanished mid-transmission (the
    /// topology changed underneath the message, e.g. a relay depleted
    /// while forwarding) and the transmission fell back to the drop
    /// path.
    RouteFallback {
        /// Source node id.
        from: u64,
        /// Destination node id.
        to: u64,
    },
    /// The connectivity graph was (re)built after topology churn.
    GraphRebuilt {
        /// Nodes alive at rebuild time.
        nodes: u64,
        /// Undirected edges in the rebuilt graph.
        edges: u64,
    },
    /// A node exhausted its battery and died.
    NodeDepleted {
        /// Node id.
        node: u64,
    },
    /// A node was forced down (churn / disruption / kill).
    NodeDown {
        /// Node id.
        node: u64,
    },
    /// A node came back up.
    NodeUp {
        /// Node id.
        node: u64,
    },
    /// A jammer was switched on or off.
    JammerSet {
        /// Index into the scenario's jammer list.
        index: u64,
        /// New state.
        on: bool,
    },
    /// A network partition cut was activated or cleared.
    PartitionSet {
        /// Index into the simulator's partition-spec list.
        index: u64,
        /// New state.
        on: bool,
    },
    /// A channel-wide link degradation was activated or cleared.
    DegradeSet {
        /// Index into the simulator's degradation-spec list.
        index: u64,
        /// New state.
        on: bool,
        /// Extra path loss applied while active, in dB.
        extra_loss_db: f64,
        /// Latency multiplier applied while active.
        latency_mult: f64,
    },
    /// A compromised-relay spec was activated or cleared.
    CompromiseSet {
        /// Index into the simulator's compromise-spec list.
        index: u64,
        /// New state.
        on: bool,
    },
    /// A message was routed through a compromised relay that tampers
    /// with payloads; the delivered copy is flagged untrustworthy.
    MsgTampered {
        /// Source node id.
        from: u64,
        /// Destination node id.
        to: u64,
        /// The compromised relay the message traversed.
        relay: u64,
    },
    /// A region blackout fired: every alive node inside the rect went
    /// down at once (correlated kill, e.g. EMP/artillery).
    RegionOutage {
        /// Index into the simulator's blackout list.
        index: u64,
        /// Nodes killed by this outage.
        killed: u64,
    },
    /// A region blackout was lifted and its surviving nodes restored.
    RegionRestore {
        /// Index into the simulator's blackout list.
        index: u64,
        /// Nodes revived (depleted nodes stay down).
        revived: u64,
    },

    // -- faults ----------------------------------------------------------
    /// A fault from a `FaultPlan` was scheduled onto the simulator.
    FaultScheduled {
        /// Stable fault-kind name (`"crash"`, `"partition"`, …).
        fault: &'static str,
        /// Injection time, integer microseconds of sim time.
        at_us: u64,
    },

    // -- core ------------------------------------------------------------
    /// Discovery + recruitment finished.
    Recruitment {
        /// Gray/blue candidates considered.
        candidates: u64,
        /// Assets actually recruited.
        recruited: u64,
    },
    /// An execution window closed and its utility was scored.
    WindowClosed {
        /// Zero-based window index.
        window: u64,
        /// Reports delivered inside the window.
        delivered: u64,
        /// Window utility in `[0, 1]`.
        utility: f64,
    },
    /// The repair reflex fired: utility fell below the threshold.
    RepairTriggered {
        /// Window that triggered the reflex.
        window: u64,
        /// Observed utility that tripped the threshold.
        utility: f64,
        /// The configured repair threshold.
        threshold: f64,
    },
    /// A composition repair was computed and deployed.
    RepairApplied {
        /// Window in which the repair landed.
        window: u64,
        /// Nodes added by the repair.
        added: u64,
        /// Whether the repaired composition satisfies the mission.
        satisfied: bool,
    },
    /// The heartbeat failure detector marked a node as suspected.
    Suspected {
        /// Suspected node id.
        node: u64,
        /// Silence observed when suspicion fired, integer microseconds.
        silent_us: u64,
    },
    /// The failure detector triggered a repair before window close.
    EarlyRepair {
        /// Window in which the early repair fired.
        window: u64,
        /// Suspected nodes that triggered it.
        suspects: u64,
    },
    /// The degradation ladder shed load to preserve core coverage.
    Shed {
        /// Ladder level after the shed (1-based; 0 = full capability).
        level: u64,
        /// Stable action name (`"redundancy"`, `"modality"`,
        /// `"coverage"`).
        action: &'static str,
    },
    /// The degradation ladder restored previously shed capability.
    Restore {
        /// Ladder level after the restore.
        level: u64,
        /// Stable action name of what was restored.
        action: &'static str,
    },
    /// A tasking message went unacked and was retransmitted.
    TaskRetry {
        /// Target node id.
        node: u64,
        /// 1-based attempt number of the retransmission.
        attempt: u64,
    },
    /// Tasking a node was abandoned after the attempt cap.
    TaskAbandoned {
        /// Target node id.
        node: u64,
        /// Attempts made before giving up.
        attempts: u64,
    },

    // -- synthesis -------------------------------------------------------
    /// A composition solve completed (on the calling thread).
    Solve {
        /// Stable solver name (`"greedy"`, `"anneal"`, …).
        solver: &'static str,
        /// Budget steps consumed (coverage evaluations).
        steps: u64,
        /// CELF lazy-heap pushes (0 for non-greedy solvers).
        heap_pushes: u64,
        /// CELF stale-entry refreshes (0 for non-greedy solvers).
        heap_refreshes: u64,
        /// Candidates selected.
        selected: u64,
        /// Whether the mission requirement was satisfied.
        satisfied: bool,
    },
    /// One member of a portfolio race finished (reported after join, in
    /// deterministic member order).
    PortfolioMember {
        /// Stable member solver name.
        member: &'static str,
        /// Whether this member satisfied the mission.
        satisfied: bool,
        /// Cost of the member's composition.
        cost: f64,
        /// Candidates the member selected.
        selected: u64,
        /// Whether this member's result was chosen as the winner.
        winner: bool,
    },

    // -- adapt -----------------------------------------------------------
    /// An actuation request passed through the §VI safety interlock.
    Actuation {
        /// Requesting node id.
        requester: u64,
        /// Target actuator id.
        actuator: u64,
        /// Stable decision name (`"approved"`, `"withheld_occupied"`,
        /// `"denied_no_authorization"`).
        decision: &'static str,
    },
    /// One epoch of resource allocation was applied.
    Allocation {
        /// Zero-based epoch index.
        epoch: u64,
        /// Regions allocated this epoch.
        regions: u64,
        /// Samples that hit the saturation penalty this epoch.
        saturated: u64,
    },

    // -- fleet -----------------------------------------------------------
    /// A mission was admitted to the fleet's run queue.
    FleetAdmit {
        /// Fleet-assigned mission ticket.
        ticket: u64,
        /// The mission's scenario seed.
        seed: u64,
        /// Total utility windows the mission will execute.
        windows: u64,
    },
    /// A scheduler quantum executed: one resident mission stepped up to
    /// `quantum` windows on a worker.
    FleetSlice {
        /// Mission ticket.
        ticket: u64,
        /// First window index executed in this slice.
        from_window: u64,
        /// Windows actually executed (< quantum only at mission end).
        windows: u64,
    },
    /// An idle mission was checkpointed to disk and its in-memory runner
    /// dropped.
    FleetEvict {
        /// Mission ticket.
        ticket: u64,
        /// Window boundary the checkpoint captured.
        window: u64,
        /// Serialized checkpoint payload size.
        bytes: u64,
    },
    /// An evicted mission was rebuilt from its on-disk checkpoint.
    FleetResume {
        /// Mission ticket.
        ticket: u64,
        /// Window boundary execution restarts from.
        window: u64,
    },
    /// A mission ran its final window and produced its report.
    FleetComplete {
        /// Mission ticket.
        ticket: u64,
        /// Windows the mission executed in total.
        windows: u64,
        /// Composition repairs performed over the mission's life.
        repairs: u64,
    },
    /// A retryable checkpoint-IO failure was absorbed: the mission was
    /// deferred and will be retried after a backoff.
    FleetRetry {
        /// Mission ticket.
        ticket: u64,
        /// Window boundary the mission was at when the fault hit.
        window: u64,
        /// 1-based attempt number of the failed operation.
        attempt: u64,
        /// Scheduler slices the mission waits before its next attempt.
        backoff_slices: u64,
    },
    /// A mission was quarantined: panicked, exhausted its retries, blew
    /// its slice budget, or hit a non-retryable fault. The worker and
    /// every other mission survive.
    FleetQuarantine {
        /// Mission ticket.
        ticket: u64,
        /// Stable error-kind name (`"panic"`, `"checkpoint_save"`, …).
        kind: &'static str,
        /// Attempts consumed before quarantine.
        attempts: u64,
    },
    /// An admission was shed: the queue was at its `max_queued` bound,
    /// so the fleet rejected new work instead of stalling residents.
    FleetShed {
        /// The ticket index the mission would have received.
        ticket: u64,
        /// Missions queued (non-terminal) at rejection time.
        queued: u64,
    },
    /// A mission was re-admitted from the durable fleet manifest after
    /// a scheduler crash.
    FleetRecover {
        /// Mission ticket.
        ticket: u64,
        /// Window boundary execution restarts from (0 = from scratch).
        window: u64,
    },

    // -- bridge ----------------------------------------------------------
    /// The edge bridge (re)established its transport connection.
    BridgeConnect {
        /// Reconnect attempts consumed before this connection came up
        /// (0 = first dial succeeded).
        attempt: u64,
    },
    /// A transport connection was lost or a reconnect attempt failed;
    /// the bridge backs off before dialling again.
    BridgeRetry {
        /// 1-based reconnect attempt that will run after the backoff.
        attempt: u64,
        /// Pump ticks the bridge waits before that attempt.
        backoff_ticks: u64,
    },
    /// Egress frames were dropped — at the bounded ring (overflow or a
    /// blocked-push deadline) or at detach.
    BridgeDrop {
        /// Stable cause name (`"overflow_oldest"`, `"overflow_newest"`,
        /// `"block_timeout"`, `"gave_up"`).
        cause: &'static str,
        /// Frames dropped by this occurrence.
        frames: u64,
    },
    /// The bridge exhausted its reconnect budget, discarded its buffer,
    /// and detached for good; the mission continues unaffected.
    BridgeGaveUp {
        /// Reconnect attempts consumed before giving up.
        attempts: u64,
        /// Buffered frames discarded at detach.
        discarded: u64,
    },
    /// An inbound tasking command was rejected as a duplicate or stale
    /// sequence (idempotent ingress).
    BridgeCmdDup {
        /// Command source id.
        src: u64,
        /// Sequence number of the rejected command.
        seq: u64,
        /// True when the sequence was older than the newest applied one
        /// (stale); false when it repeated a seen sequence exactly.
        stale: bool,
    },
}

impl TraceEvent {
    /// The subsystem this event belongs to.
    pub fn subsystem(&self) -> Subsystem {
        match self {
            TraceEvent::MsgSent { .. }
            | TraceEvent::MsgDelivered { .. }
            | TraceEvent::MsgDropped { .. }
            | TraceEvent::RouteFallback { .. }
            | TraceEvent::GraphRebuilt { .. }
            | TraceEvent::NodeDepleted { .. }
            | TraceEvent::NodeDown { .. }
            | TraceEvent::NodeUp { .. }
            | TraceEvent::JammerSet { .. }
            | TraceEvent::PartitionSet { .. }
            | TraceEvent::DegradeSet { .. }
            | TraceEvent::CompromiseSet { .. }
            | TraceEvent::MsgTampered { .. }
            | TraceEvent::RegionOutage { .. }
            | TraceEvent::RegionRestore { .. } => Subsystem::Netsim,
            TraceEvent::FaultScheduled { .. } => Subsystem::Faults,
            TraceEvent::Recruitment { .. }
            | TraceEvent::WindowClosed { .. }
            | TraceEvent::RepairTriggered { .. }
            | TraceEvent::RepairApplied { .. }
            | TraceEvent::Suspected { .. }
            | TraceEvent::EarlyRepair { .. }
            | TraceEvent::Shed { .. }
            | TraceEvent::Restore { .. }
            | TraceEvent::TaskRetry { .. }
            | TraceEvent::TaskAbandoned { .. } => Subsystem::Core,
            TraceEvent::Solve { .. } | TraceEvent::PortfolioMember { .. } => Subsystem::Synthesis,
            TraceEvent::Actuation { .. } | TraceEvent::Allocation { .. } => Subsystem::Adapt,
            TraceEvent::FleetAdmit { .. }
            | TraceEvent::FleetSlice { .. }
            | TraceEvent::FleetEvict { .. }
            | TraceEvent::FleetResume { .. }
            | TraceEvent::FleetComplete { .. }
            | TraceEvent::FleetRetry { .. }
            | TraceEvent::FleetQuarantine { .. }
            | TraceEvent::FleetShed { .. }
            | TraceEvent::FleetRecover { .. } => Subsystem::Fleet,
            TraceEvent::BridgeConnect { .. }
            | TraceEvent::BridgeRetry { .. }
            | TraceEvent::BridgeDrop { .. }
            | TraceEvent::BridgeGaveUp { .. }
            | TraceEvent::BridgeCmdDup { .. } => Subsystem::Bridge,
        }
    }

    /// The node id an event is primarily *about*, when it has one: the
    /// source of a message, the subject of a node-lifecycle or suspicion
    /// event, the requester of an actuation. Events about the run as a
    /// whole (windows, solves, fleet scheduling, bridge transport) have
    /// none. This is the `<node>` segment of the edge bridge's
    /// `iobt/<mission>/<node>/<kind>` topic hierarchy, and the same
    /// mapping backs `iobt-trace --topics`.
    pub fn primary_node(&self) -> Option<u64> {
        match self {
            TraceEvent::MsgSent { from, .. }
            | TraceEvent::MsgDelivered { from, .. }
            | TraceEvent::MsgDropped { from, .. }
            | TraceEvent::RouteFallback { from, .. }
            | TraceEvent::MsgTampered { from, .. } => Some(*from),
            TraceEvent::NodeDepleted { node }
            | TraceEvent::NodeDown { node }
            | TraceEvent::NodeUp { node }
            | TraceEvent::Suspected { node, .. }
            | TraceEvent::TaskRetry { node, .. }
            | TraceEvent::TaskAbandoned { node, .. } => Some(*node),
            TraceEvent::Actuation { requester, .. } => Some(*requester),
            _ => None,
        }
    }

    /// Stable snake-case event name used in the JSONL schema (`"kind"`).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MsgSent { .. } => "msg_sent",
            TraceEvent::MsgDelivered { .. } => "msg_delivered",
            TraceEvent::MsgDropped { .. } => "msg_dropped",
            TraceEvent::RouteFallback { .. } => "route_fallback",
            TraceEvent::GraphRebuilt { .. } => "graph_rebuilt",
            TraceEvent::NodeDepleted { .. } => "node_depleted",
            TraceEvent::NodeDown { .. } => "node_down",
            TraceEvent::NodeUp { .. } => "node_up",
            TraceEvent::JammerSet { .. } => "jammer_set",
            TraceEvent::PartitionSet { .. } => "partition_set",
            TraceEvent::DegradeSet { .. } => "degrade_set",
            TraceEvent::CompromiseSet { .. } => "compromise_set",
            TraceEvent::MsgTampered { .. } => "msg_tampered",
            TraceEvent::RegionOutage { .. } => "region_outage",
            TraceEvent::RegionRestore { .. } => "region_restore",
            TraceEvent::FaultScheduled { .. } => "fault_scheduled",
            TraceEvent::Recruitment { .. } => "recruitment",
            TraceEvent::WindowClosed { .. } => "window_closed",
            TraceEvent::RepairTriggered { .. } => "repair_triggered",
            TraceEvent::RepairApplied { .. } => "repair_applied",
            TraceEvent::Suspected { .. } => "suspected",
            TraceEvent::EarlyRepair { .. } => "early_repair",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::Restore { .. } => "restore",
            TraceEvent::TaskRetry { .. } => "task_retry",
            TraceEvent::TaskAbandoned { .. } => "task_abandoned",
            TraceEvent::Solve { .. } => "solve",
            TraceEvent::PortfolioMember { .. } => "portfolio_member",
            TraceEvent::Actuation { .. } => "actuation",
            TraceEvent::Allocation { .. } => "allocation",
            TraceEvent::FleetAdmit { .. } => "fleet_admit",
            TraceEvent::FleetSlice { .. } => "fleet_slice",
            TraceEvent::FleetEvict { .. } => "fleet_evict",
            TraceEvent::FleetResume { .. } => "fleet_resume",
            TraceEvent::FleetComplete { .. } => "fleet_complete",
            TraceEvent::FleetRetry { .. } => "fleet_retry",
            TraceEvent::FleetQuarantine { .. } => "fleet_quarantine",
            TraceEvent::FleetShed { .. } => "fleet_shed",
            TraceEvent::FleetRecover { .. } => "fleet_recover",
            TraceEvent::BridgeConnect { .. } => "bridge_connect",
            TraceEvent::BridgeRetry { .. } => "bridge_retry",
            TraceEvent::BridgeDrop { .. } => "bridge_drop",
            TraceEvent::BridgeGaveUp { .. } => "bridge_gave_up",
            TraceEvent::BridgeCmdDup { .. } => "bridge_cmd_dup",
        }
    }
}

/// One stamped trace record: the sim-time clock at emission, a monotone
/// per-recorder sequence number, and the event payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time at emission, integer microseconds.
    pub t_us: u64,
    /// Monotone sequence number (ties on `t_us` stay ordered).
    pub seq: u64,
    /// The event payload.
    pub event: TraceEvent,
}

/// Appends `v` as a JSON number. `f64` uses Rust's shortest-roundtrip
/// `Display`, which is deterministic for identical bit patterns; non-
/// finite values (never produced by the platform) encode as `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Infallible: fmt::Write for String never errors.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_kv_u64(out: &mut String, key: &str, v: u64) {
    let _ = write!(out, ",\"{key}\":{v}");
}

fn push_kv_f64(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, ",\"{key}\":");
    push_f64(out, v);
}

fn push_kv_bool(out: &mut String, key: &str, v: bool) {
    let _ = write!(out, ",\"{key}\":{v}");
}

fn push_kv_str(out: &mut String, key: &str, v: &str) {
    // All string payloads are static snake_case names — no escaping
    // needed, but guard anyway so the encoder can never emit bad JSON.
    let _ = write!(out, ",\"{key}\":\"");
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl TraceRecord {
    /// Appends this record as one JSON object + `'\n'` to `out`.
    ///
    /// Key order is fixed (`seq`, `t_us`, `sub`, `kind`, then payload
    /// fields in declaration order) so traces from identical runs are
    /// byte-identical.
    pub fn encode_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_us\":{},\"sub\":\"{}\",\"kind\":\"{}\"",
            self.seq,
            self.t_us,
            self.event.subsystem().as_str(),
            self.event.kind()
        );
        match &self.event {
            TraceEvent::MsgSent { from, to } | TraceEvent::RouteFallback { from, to } => {
                push_kv_u64(out, "from", *from);
                push_kv_u64(out, "to", *to);
            }
            TraceEvent::MsgDelivered {
                from,
                to,
                latency_us,
            } => {
                push_kv_u64(out, "from", *from);
                push_kv_u64(out, "to", *to);
                push_kv_u64(out, "latency_us", *latency_us);
            }
            TraceEvent::MsgDropped { from, to, cause } => {
                push_kv_u64(out, "from", *from);
                push_kv_u64(out, "to", *to);
                push_kv_str(out, "cause", cause.as_str());
            }
            TraceEvent::GraphRebuilt { nodes, edges } => {
                push_kv_u64(out, "nodes", *nodes);
                push_kv_u64(out, "edges", *edges);
            }
            TraceEvent::NodeDepleted { node }
            | TraceEvent::NodeDown { node }
            | TraceEvent::NodeUp { node } => {
                push_kv_u64(out, "node", *node);
            }
            TraceEvent::JammerSet { index, on }
            | TraceEvent::PartitionSet { index, on }
            | TraceEvent::CompromiseSet { index, on } => {
                push_kv_u64(out, "index", *index);
                push_kv_bool(out, "on", *on);
            }
            TraceEvent::DegradeSet {
                index,
                on,
                extra_loss_db,
                latency_mult,
            } => {
                push_kv_u64(out, "index", *index);
                push_kv_bool(out, "on", *on);
                push_kv_f64(out, "extra_loss_db", *extra_loss_db);
                push_kv_f64(out, "latency_mult", *latency_mult);
            }
            TraceEvent::MsgTampered { from, to, relay } => {
                push_kv_u64(out, "from", *from);
                push_kv_u64(out, "to", *to);
                push_kv_u64(out, "relay", *relay);
            }
            TraceEvent::RegionOutage { index, killed } => {
                push_kv_u64(out, "index", *index);
                push_kv_u64(out, "killed", *killed);
            }
            TraceEvent::RegionRestore { index, revived } => {
                push_kv_u64(out, "index", *index);
                push_kv_u64(out, "revived", *revived);
            }
            TraceEvent::FaultScheduled { fault, at_us } => {
                push_kv_str(out, "fault", fault);
                push_kv_u64(out, "at_us", *at_us);
            }
            TraceEvent::Recruitment {
                candidates,
                recruited,
            } => {
                push_kv_u64(out, "candidates", *candidates);
                push_kv_u64(out, "recruited", *recruited);
            }
            TraceEvent::WindowClosed {
                window,
                delivered,
                utility,
            } => {
                push_kv_u64(out, "window", *window);
                push_kv_u64(out, "delivered", *delivered);
                push_kv_f64(out, "utility", *utility);
            }
            TraceEvent::RepairTriggered {
                window,
                utility,
                threshold,
            } => {
                push_kv_u64(out, "window", *window);
                push_kv_f64(out, "utility", *utility);
                push_kv_f64(out, "threshold", *threshold);
            }
            TraceEvent::RepairApplied {
                window,
                added,
                satisfied,
            } => {
                push_kv_u64(out, "window", *window);
                push_kv_u64(out, "added", *added);
                push_kv_bool(out, "satisfied", *satisfied);
            }
            TraceEvent::Suspected { node, silent_us } => {
                push_kv_u64(out, "node", *node);
                push_kv_u64(out, "silent_us", *silent_us);
            }
            TraceEvent::EarlyRepair { window, suspects } => {
                push_kv_u64(out, "window", *window);
                push_kv_u64(out, "suspects", *suspects);
            }
            TraceEvent::Shed { level, action } | TraceEvent::Restore { level, action } => {
                push_kv_u64(out, "level", *level);
                push_kv_str(out, "action", action);
            }
            TraceEvent::TaskRetry { node, attempt } => {
                push_kv_u64(out, "node", *node);
                push_kv_u64(out, "attempt", *attempt);
            }
            TraceEvent::TaskAbandoned { node, attempts } => {
                push_kv_u64(out, "node", *node);
                push_kv_u64(out, "attempts", *attempts);
            }
            TraceEvent::Solve {
                solver,
                steps,
                heap_pushes,
                heap_refreshes,
                selected,
                satisfied,
            } => {
                push_kv_str(out, "solver", solver);
                push_kv_u64(out, "steps", *steps);
                push_kv_u64(out, "heap_pushes", *heap_pushes);
                push_kv_u64(out, "heap_refreshes", *heap_refreshes);
                push_kv_u64(out, "selected", *selected);
                push_kv_bool(out, "satisfied", *satisfied);
            }
            TraceEvent::PortfolioMember {
                member,
                satisfied,
                cost,
                selected,
                winner,
            } => {
                push_kv_str(out, "member", member);
                push_kv_bool(out, "satisfied", *satisfied);
                push_kv_f64(out, "cost", *cost);
                push_kv_u64(out, "selected", *selected);
                push_kv_bool(out, "winner", *winner);
            }
            TraceEvent::Actuation {
                requester,
                actuator,
                decision,
            } => {
                push_kv_u64(out, "requester", *requester);
                push_kv_u64(out, "actuator", *actuator);
                push_kv_str(out, "decision", decision);
            }
            TraceEvent::Allocation {
                epoch,
                regions,
                saturated,
            } => {
                push_kv_u64(out, "epoch", *epoch);
                push_kv_u64(out, "regions", *regions);
                push_kv_u64(out, "saturated", *saturated);
            }
            TraceEvent::FleetAdmit {
                ticket,
                seed,
                windows,
            } => {
                push_kv_u64(out, "ticket", *ticket);
                push_kv_u64(out, "seed", *seed);
                push_kv_u64(out, "windows", *windows);
            }
            TraceEvent::FleetSlice {
                ticket,
                from_window,
                windows,
            } => {
                push_kv_u64(out, "ticket", *ticket);
                push_kv_u64(out, "from_window", *from_window);
                push_kv_u64(out, "windows", *windows);
            }
            TraceEvent::FleetEvict {
                ticket,
                window,
                bytes,
            } => {
                push_kv_u64(out, "ticket", *ticket);
                push_kv_u64(out, "window", *window);
                push_kv_u64(out, "bytes", *bytes);
            }
            TraceEvent::FleetResume { ticket, window } => {
                push_kv_u64(out, "ticket", *ticket);
                push_kv_u64(out, "window", *window);
            }
            TraceEvent::FleetComplete {
                ticket,
                windows,
                repairs,
            } => {
                push_kv_u64(out, "ticket", *ticket);
                push_kv_u64(out, "windows", *windows);
                push_kv_u64(out, "repairs", *repairs);
            }
            TraceEvent::FleetRetry {
                ticket,
                window,
                attempt,
                backoff_slices,
            } => {
                push_kv_u64(out, "ticket", *ticket);
                push_kv_u64(out, "window", *window);
                push_kv_u64(out, "attempt", *attempt);
                push_kv_u64(out, "backoff_slices", *backoff_slices);
            }
            TraceEvent::FleetQuarantine {
                ticket,
                kind,
                attempts,
            } => {
                push_kv_u64(out, "ticket", *ticket);
                push_kv_str(out, "error", kind);
                push_kv_u64(out, "attempts", *attempts);
            }
            TraceEvent::FleetShed { ticket, queued } => {
                push_kv_u64(out, "ticket", *ticket);
                push_kv_u64(out, "queued", *queued);
            }
            TraceEvent::FleetRecover { ticket, window } => {
                push_kv_u64(out, "ticket", *ticket);
                push_kv_u64(out, "window", *window);
            }
            TraceEvent::BridgeConnect { attempt } => {
                push_kv_u64(out, "attempt", *attempt);
            }
            TraceEvent::BridgeRetry {
                attempt,
                backoff_ticks,
            } => {
                push_kv_u64(out, "attempt", *attempt);
                push_kv_u64(out, "backoff_ticks", *backoff_ticks);
            }
            TraceEvent::BridgeDrop { cause, frames } => {
                push_kv_str(out, "cause", cause);
                push_kv_u64(out, "frames", *frames);
            }
            TraceEvent::BridgeGaveUp {
                attempts,
                discarded,
            } => {
                push_kv_u64(out, "attempts", *attempts);
                push_kv_u64(out, "discarded", *discarded);
            }
            TraceEvent::BridgeCmdDup { src, seq, stale } => {
                push_kv_u64(out, "src", *src);
                push_kv_u64(out, "seq", *seq);
                push_kv_bool(out, "stale", *stale);
            }
        }
        out.push_str("}\n");
    }

    /// Encodes this record as an owned JSONL line (including `'\n'`).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        self.encode_jsonl(&mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_subsystems_are_consistent() {
        let e = TraceEvent::MsgDropped {
            from: 1,
            to: 2,
            cause: DropCause::NoRoute,
        };
        assert_eq!(e.subsystem(), Subsystem::Netsim);
        assert_eq!(e.kind(), "msg_dropped");
        for sub in Subsystem::ALL {
            assert_eq!(Subsystem::parse(sub.as_str()), Some(sub));
        }
        assert_eq!(Subsystem::parse("bogus"), None);
    }

    #[test]
    fn jsonl_encoding_has_fixed_key_order() {
        let r = TraceRecord {
            t_us: 1_500_000,
            seq: 7,
            event: TraceEvent::MsgDelivered {
                from: 3,
                to: 9,
                latency_us: 2_250,
            },
        };
        assert_eq!(
            r.to_jsonl(),
            "{\"seq\":7,\"t_us\":1500000,\"sub\":\"netsim\",\"kind\":\"msg_delivered\",\
             \"from\":3,\"to\":9,\"latency_us\":2250}\n"
        );
    }

    #[test]
    fn jsonl_floats_use_shortest_roundtrip() {
        let r = TraceRecord {
            t_us: 0,
            seq: 0,
            event: TraceEvent::WindowClosed {
                window: 2,
                delivered: 10,
                utility: 0.5,
            },
        };
        assert!(r.to_jsonl().contains("\"utility\":0.5"));
        let nan = TraceRecord {
            t_us: 0,
            seq: 0,
            event: TraceEvent::WindowClosed {
                window: 0,
                delivered: 0,
                utility: f64::NAN,
            },
        };
        assert!(nan.to_jsonl().contains("\"utility\":null"));
    }

    #[test]
    fn string_escaping_guards_control_characters() {
        let mut s = String::new();
        push_kv_str(&mut s, "k", "a\"b\\c\nd\u{1}");
        assert_eq!(s, ",\"k\":\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
