//! Incremental re-synthesis: repairing a composition after losses.
//!
//! §III: "it should be possible to assemble (or re-assemble, for example,
//! upon damage) composite assets … on demand and within an appropriately
//! short time", and discovery/composition "will need to be robust to
//! failure or removal of assets as a normal operating regime." Instead of
//! re-solving from scratch, [`repair`] keeps the surviving selection and
//! greedily re-covers only the pairs that dropped below redundancy —
//! typically orders of magnitude cheaper than full re-synthesis (measured
//! in experiment `f2_synthesis_scale`).

use std::collections::HashSet;
use std::time::Instant;

use iobt_types::NodeId;

use crate::problem::CompositionProblem;
use crate::solvers::CompositionResult;

/// Outcome of a repair pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairResult {
    /// The repaired selection (survivors + replacements), sorted.
    pub selected: Vec<usize>,
    /// Replacement candidates added.
    pub added: Vec<usize>,
    /// Coverage fraction after repair.
    pub coverage: f64,
    /// Whether the requirement is met again.
    pub satisfied: bool,
    /// Repair wall-clock time in milliseconds.
    pub elapsed_ms: f64,
}

/// Repairs `previous` after the nodes in `failed` (by id) are lost.
///
/// Keeps every surviving selected candidate, then greedily adds unused
/// candidates (excluding failed ones) by marginal-gain-per-cost until the
/// requirement is met again or no candidate helps.
pub fn repair(
    problem: &CompositionProblem,
    previous: &CompositionResult,
    failed: &HashSet<NodeId>,
) -> RepairResult {
    let start = Instant::now();
    let k = problem.redundancy as u16;
    let survivors: Vec<usize> = previous
        .selected
        .iter()
        .copied()
        .filter(|&i| !failed.contains(&problem.candidates[i].id))
        .collect();
    let mut counts = problem.coverage_counts(&survivors);
    let needed = ((problem.required_fraction * problem.pair_count as f64).ceil() as usize)
        .min(problem.pair_count);
    let mut satisfied = counts.iter().filter(|&&c| c >= k).count();
    let mut in_set: Vec<bool> = vec![false; problem.candidates.len()];
    for &i in &survivors {
        in_set[i] = true;
    }
    let mut selected = survivors;
    let mut added = Vec::new();
    while satisfied < needed {
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in problem.candidates.iter().enumerate() {
            if in_set[i] || failed.contains(&cand.id) || cand.covers.is_empty() {
                continue;
            }
            let gain = cand
                .covers
                .iter()
                .filter(|&&p| counts[p as usize] < k)
                .count();
            if gain == 0 {
                continue;
            }
            let ratio = gain as f64 / cand.cost;
            let better = match best {
                None => true,
                Some((bi, br)) => ratio > br + 1e-12 || ((ratio - br).abs() <= 1e-12 && i < bi),
            };
            if better {
                best = Some((i, ratio));
            }
        }
        let Some((i, _)) = best else { break };
        in_set[i] = true;
        selected.push(i);
        added.push(i);
        for &p in &problem.candidates[i].covers {
            let c = &mut counts[p as usize];
            *c += 1;
            if *c == k {
                satisfied += 1;
            }
        }
    }
    selected.sort_unstable();
    let coverage = problem.coverage_fraction(&selected);
    RepairResult {
        satisfied: coverage + 1e-12 >= problem.required_fraction,
        selected,
        added,
        coverage,
        elapsed_ms: start.elapsed().as_secs_f64() * 1_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::Solver;
    use iobt_types::{
        Affiliation, EnergyBudget, Mission, MissionId, MissionKind, NodeSpec, Point, Rect, Sensor,
        SensorKind,
    };

    fn node_at(id: u64, x: f64, y: f64, range: f64) -> NodeSpec {
        NodeSpec::builder(NodeId::new(id))
            .affiliation(Affiliation::Blue)
            .position(Point::new(x, y))
            .sensor(Sensor::new(SensorKind::Visual, range, 0.9))
            .energy(EnergyBudget::unlimited())
            .build()
    }

    fn problem() -> CompositionProblem {
        let m = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
            .area(Rect::square(200.0))
            .require_modality(SensorKind::Visual)
            .coverage_fraction(1.0)
            .build();
        // Two redundant central nodes plus corner spares.
        let nodes = vec![
            node_at(0, 100.0, 100.0, 180.0),
            node_at(1, 100.0, 100.0, 180.0),
            node_at(2, 50.0, 50.0, 180.0),
            node_at(3, 150.0, 150.0, 180.0),
        ];
        CompositionProblem::from_mission(&m, &nodes, 3)
    }

    #[test]
    fn no_failures_is_a_noop() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        let r = repair(&p, &base, &HashSet::new());
        assert_eq!(r.selected, base.selected);
        assert!(r.added.is_empty());
        assert!(r.satisfied);
    }

    #[test]
    fn repair_replaces_a_failed_coverer() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        assert!(base.satisfied);
        // Fail every selected node.
        let failed: HashSet<NodeId> = base
            .selected
            .iter()
            .map(|&i| p.candidates[i].id)
            .collect();
        let r = repair(&p, &base, &failed);
        assert!(r.satisfied, "spares should restore coverage");
        assert!(!r.added.is_empty());
        for &i in &r.selected {
            assert!(!failed.contains(&p.candidates[i].id));
        }
    }

    #[test]
    fn unrepairable_losses_are_reported() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        // Fail everything.
        let failed: HashSet<NodeId> = p.candidates.iter().map(|c| c.id).collect();
        let r = repair(&p, &base, &failed);
        assert!(!r.satisfied);
        assert!(r.selected.is_empty());
        assert_eq!(r.coverage, 0.0);
    }

    #[test]
    fn repair_keeps_survivors() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        let first_id = p.candidates[base.selected[0]].id;
        let mut failed = HashSet::new();
        // Fail a node that is NOT selected — nothing should change.
        for c in &p.candidates {
            if !base.selected.iter().any(|&i| p.candidates[i].id == c.id) {
                failed.insert(c.id);
                break;
            }
        }
        let r = repair(&p, &base, &failed);
        assert!(r.selected.iter().any(|&i| p.candidates[i].id == first_id));
        assert!(r.satisfied);
    }
}
