//! Incremental re-synthesis: repairing a composition after losses.
//!
//! §III: "it should be possible to assemble (or re-assemble, for example,
//! upon damage) composite assets … on demand and within an appropriately
//! short time", and discovery/composition "will need to be robust to
//! failure or removal of assets as a normal operating regime." Instead of
//! re-solving from scratch, [`repair`] keeps the surviving selection and
//! re-covers only the pairs that dropped below redundancy — typically
//! orders of magnitude cheaper than full re-synthesis (measured in
//! experiment `f2_synthesis_scale`).

use std::collections::BTreeSet;
use std::time::Instant;

use iobt_types::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::problem::CompositionProblem;
use crate::solvers::{greedy_extend, CompositionResult, SolveStats, Solver};

/// Outcome of a repair pass. Selection-determined only — wall-clock
/// timing lives in the separate channel of [`repair_with_timed`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepairResult {
    /// The repaired selection (survivors + replacements), sorted.
    pub selected: Vec<usize>,
    /// Replacement candidates added.
    pub added: Vec<usize>,
    /// Coverage fraction after repair.
    pub coverage: f64,
    /// Whether the requirement is met again.
    pub satisfied: bool,
}

/// Repairs `previous` after the nodes in `failed` (by id) are lost, using
/// the default greedy strategy. Equivalent to
/// [`repair_with`]`(…, `[`Solver::Greedy`]`)`.
pub fn repair(
    problem: &CompositionProblem,
    previous: &CompositionResult,
    failed: &BTreeSet<NodeId>,
) -> RepairResult {
    repair_with(problem, previous, failed, Solver::Greedy)
}

/// Repairs `previous` after the nodes in `failed` (by id) are lost.
///
/// Keeps every surviving selected candidate, then extends the selection
/// with unused, non-failed candidates according to `solver`:
///
/// - [`Solver::Greedy`], [`Solver::Anneal`], [`Solver::Exhaustive`], and
///   [`Solver::Portfolio`] all extend lazily by marginal-gain-per-cost
///   (the repair pool is small, so the CELF extension is the right tool
///   regardless of how the original composition was produced);
/// - [`Solver::Random`] extends with uniformly random eligible candidates
///   — the matching baseline for repair experiments.
pub fn repair_with(
    problem: &CompositionProblem,
    previous: &CompositionResult,
    failed: &BTreeSet<NodeId>,
    solver: Solver,
) -> RepairResult {
    let survivors: Vec<usize> = previous
        .selected
        .iter()
        .copied()
        .filter(|&i| !failed.contains(&problem.candidates[i].id))
        .collect();
    let mut counter = problem.counter_for(&survivors);
    let mut in_set: Vec<bool> = vec![false; problem.candidates.len()];
    for &i in &survivors {
        in_set[i] = true;
    }
    let eligible = |i: usize| !in_set[i] && !failed.contains(&problem.candidates[i].id);
    let added = match solver {
        Solver::Random { seed } => {
            let needed = problem.pairs_needed();
            let pool: Vec<usize> = (0..problem.candidates.len()).filter(|&i| eligible(i)).collect();
            let mut order = pool;
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut added = Vec::new();
            for i in order {
                if counter.satisfied() >= needed {
                    break;
                }
                counter.add(&problem.candidates[i].covers);
                added.push(i);
            }
            added
        }
        _ => greedy_extend(problem, &mut counter, eligible, &mut SolveStats::default()),
    };
    let mut selected = survivors;
    selected.extend_from_slice(&added);
    selected.sort_unstable();
    let coverage = problem.coverage_fraction(&selected);
    RepairResult {
        satisfied: coverage + 1e-12 >= problem.required_fraction,
        selected,
        added,
        coverage,
    }
}

/// [`repair_with`] plus a wall-clock timing channel in milliseconds —
/// the reporting companion benches and the runtime's `WallClockReport`
/// use. The timing can never influence the repair itself.
pub fn repair_with_timed(
    problem: &CompositionProblem,
    previous: &CompositionResult,
    failed: &BTreeSet<NodeId>,
    solver: Solver,
) -> (RepairResult, f64) {
    let start = Instant::now(); // lint: allow(wall-clock) — reporting only: the timing channel never influences the repair
    let result = repair_with(problem, previous, failed, solver);
    (result, start.elapsed().as_secs_f64() * 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::Solver;
    use iobt_types::{
        Affiliation, EnergyBudget, Mission, MissionId, MissionKind, NodeSpec, Point, Rect, Sensor,
        SensorKind,
    };

    fn node_at(id: u64, x: f64, y: f64, range: f64) -> NodeSpec {
        NodeSpec::builder(NodeId::new(id))
            .affiliation(Affiliation::Blue)
            .position(Point::new(x, y))
            .sensor(Sensor::new(SensorKind::Visual, range, 0.9))
            .energy(EnergyBudget::unlimited())
            .build()
    }

    fn problem() -> CompositionProblem {
        let m = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
            .area(Rect::square(200.0))
            .require_modality(SensorKind::Visual)
            .coverage_fraction(1.0)
            .build();
        // Two redundant central nodes plus corner spares.
        let nodes = vec![
            node_at(0, 100.0, 100.0, 180.0),
            node_at(1, 100.0, 100.0, 180.0),
            node_at(2, 50.0, 50.0, 180.0),
            node_at(3, 150.0, 150.0, 180.0),
        ];
        CompositionProblem::from_mission(&m, &nodes, 3)
    }

    #[test]
    fn no_failures_is_a_noop() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        let r = repair(&p, &base, &BTreeSet::new());
        assert_eq!(r.selected, base.selected);
        assert!(r.added.is_empty());
        assert!(r.satisfied);
    }

    #[test]
    fn repair_replaces_a_failed_coverer() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        assert!(base.satisfied);
        // Fail every selected node.
        let failed: BTreeSet<NodeId> = base
            .selected
            .iter()
            .map(|&i| p.candidates[i].id)
            .collect();
        let r = repair(&p, &base, &failed);
        assert!(r.satisfied, "spares should restore coverage");
        assert!(!r.added.is_empty());
        for &i in &r.selected {
            assert!(!failed.contains(&p.candidates[i].id));
        }
    }

    #[test]
    fn unrepairable_losses_are_reported() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        // Fail everything.
        let failed: BTreeSet<NodeId> = p.candidates.iter().map(|c| c.id).collect();
        let r = repair(&p, &base, &failed);
        assert!(!r.satisfied);
        assert!(r.selected.is_empty());
        assert_eq!(r.coverage, 0.0);
    }

    #[test]
    fn repair_keeps_survivors() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        let first_id = p.candidates[base.selected[0]].id;
        let mut failed = BTreeSet::new();
        // Fail a node that is NOT selected — nothing should change.
        for c in &p.candidates {
            if !base.selected.iter().any(|&i| p.candidates[i].id == c.id) {
                failed.insert(c.id);
                break;
            }
        }
        let r = repair(&p, &base, &failed);
        assert!(r.selected.iter().any(|&i| p.candidates[i].id == first_id));
        assert!(r.satisfied);
    }

    #[test]
    fn random_repair_restores_coverage_with_more_nodes() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        let failed: BTreeSet<NodeId> = base.selected.iter().map(|&i| p.candidates[i].id).collect();
        let greedy_fix = repair_with(&p, &base, &failed, Solver::Greedy);
        let random_fix = repair_with(&p, &base, &failed, Solver::Random { seed: 3 });
        assert!(random_fix.satisfied);
        assert!(random_fix.added.len() >= greedy_fix.added.len());
        for &i in &random_fix.selected {
            assert!(!failed.contains(&p.candidates[i].id));
        }
    }

    #[test]
    fn repair_with_is_deterministic() {
        let p = problem();
        let base = Solver::Greedy.solve(&p);
        let failed: BTreeSet<NodeId> = [p.candidates[base.selected[0]].id].into_iter().collect();
        for solver in [Solver::Greedy, Solver::Random { seed: 1 }] {
            let a = repair_with(&p, &base, &failed, solver);
            let b = repair_with(&p, &base, &failed, solver);
            assert_eq!(a.selected, b.selected);
            assert_eq!(a.added, b.added);
        }
    }
}
