//! Compositional assurance: quantifying the probability a composed asset
//! keeps meeting its requirement under failures.
//!
//! §III: "the aggregate properties of the composite, including timeliness,
//! performance/functionality, security, and dependability, must be formally
//! assured in an appropriately quantifiable and operationally relevant
//! manner, subject to well-understood assumptions." The assumption here:
//! nodes fail independently, node `i` with probability `p_i` (derived from
//! trust and energy). Under that model the per-pair survival probability
//! has a closed form, and mission success probability is estimated both
//! analytically (expected surviving coverage) and by Monte Carlo (exact up
//! to sampling error). Experiment `t3_assurance` validates the prediction
//! against actual failure injection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::problem::CompositionProblem;

/// Assurance prediction for a composed selection.
#[derive(Debug, Clone, PartialEq)]
pub struct AssuranceReport {
    /// Probability each required pair keeps redundancy ≥ k after failures.
    pub pair_survival: Vec<f64>,
    /// Expected fraction of pairs surviving (analytic).
    pub expected_coverage: f64,
    /// Monte-Carlo estimate of P(mission stays satisfied).
    pub success_probability: f64,
    /// Number of Monte-Carlo trials behind `success_probability`.
    pub trials: usize,
}

/// Per-node failure probability from its trust score: distrusted assets
/// are modelled as more likely to defect/fail. `p = base + (1 - trust) * scale`,
/// clamped to `[0, 0.95]`.
pub fn failure_probability(trust: f64, base: f64, scale: f64) -> f64 {
    (base + (1.0 - trust.clamp(0.0, 1.0)) * scale).clamp(0.0, 0.95)
}

/// Computes the assurance report for a selection.
///
/// `node_failure[i]` is the failure probability of `selection[i]`'s
/// candidate (parallel arrays). The analytic part computes, per pair, the
/// probability that at least `k` of its covering selected nodes survive
/// (exact dynamic programming over the coverer set — no independence
/// approximation beyond the failure model itself).
///
/// # Panics
///
/// Panics when `selection` and `node_failure` lengths differ.
pub fn assess(
    problem: &CompositionProblem,
    selection: &[usize],
    node_failure: &[f64],
    trials: usize,
    seed: u64,
) -> AssuranceReport {
    assert_eq!(
        selection.len(),
        node_failure.len(),
        "one failure probability per selected node"
    );
    let k = problem.redundancy;
    // Coverers per pair.
    let mut coverers: Vec<Vec<usize>> = vec![Vec::new(); problem.pair_count];
    for (si, &ci) in selection.iter().enumerate() {
        for p in problem.candidates[ci].covers.iter() {
            coverers[p as usize].push(si);
        }
    }
    // Analytic per-pair survival: P(#survivors >= k) via DP on the
    // Poisson-binomial distribution of its coverers.
    let pair_survival: Vec<f64> = coverers
        .iter()
        .map(|cs| poisson_binomial_at_least(cs.iter().map(|&si| 1.0 - node_failure[si]), k))
        .collect();
    let expected_coverage = if pair_survival.is_empty() {
        1.0
    } else {
        pair_survival.iter().sum::<f64>() / pair_survival.len() as f64
    };
    // Monte Carlo mission success.
    let needed = ((problem.required_fraction * problem.pair_count as f64).ceil() as usize)
        .min(problem.pair_count);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0usize;
    for _ in 0..trials {
        let alive: Vec<bool> = node_failure.iter().map(|&p| rng.gen::<f64>() >= p).collect();
        let satisfied = coverers
            .iter()
            .filter(|cs| cs.iter().filter(|&&si| alive[si]).count() >= k)
            .count();
        if satisfied >= needed {
            successes += 1;
        }
    }
    AssuranceReport {
        pair_survival,
        expected_coverage,
        success_probability: if trials == 0 {
            0.0
        } else {
            successes as f64 / trials as f64
        },
        trials,
    }
}

/// P(at least `k` of independent Bernoulli trials with probabilities `ps`
/// succeed), via the standard O(n·k) DP.
fn poisson_binomial_at_least(ps: impl Iterator<Item = f64>, k: usize) -> f64 {
    // dp[j] = P(exactly j successes so far) for j < k; dp[k] absorbs
    // "k or more". Updating in descending j keeps the pass in place.
    let mut dp = vec![0.0; k + 1];
    dp[0] = 1.0;
    for p in ps {
        for j in (0..=k).rev() {
            let promoted = if j > 0 { dp[j - 1] * p } else { 0.0 };
            dp[j] = if j == k {
                dp[k] + promoted // absorbed mass never leaves
            } else {
                dp[j] * (1.0 - p) + promoted
            };
        }
    }
    dp[k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_types::{
        Affiliation, EnergyBudget, Mission, MissionId, MissionKind, NodeId, NodeSpec, Point, Rect,
        Sensor, SensorKind,
    };

    fn poisson_binomial_reference(ps: &[f64], k: usize) -> f64 {
        // Brute force over all outcomes.
        let n = ps.len();
        let mut total = 0.0;
        for mask in 0u32..(1 << n) {
            let mut prob = 1.0;
            let mut successes = 0;
            for (i, &p) in ps.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    prob *= p;
                    successes += 1;
                } else {
                    prob *= 1.0 - p;
                }
            }
            if successes >= k {
                total += prob;
            }
        }
        total
    }

    #[test]
    fn poisson_binomial_matches_bruteforce() {
        let cases: Vec<(Vec<f64>, usize)> = vec![
            (vec![0.9, 0.8, 0.7], 1),
            (vec![0.9, 0.8, 0.7], 2),
            (vec![0.9, 0.8, 0.7], 3),
            (vec![0.5; 6], 3),
            (vec![0.99, 0.01], 1),
            (vec![], 1),
            (vec![0.3], 0),
        ];
        for (ps, k) in cases {
            let dp = poisson_binomial_at_least(ps.iter().copied(), k);
            let brute = poisson_binomial_reference(&ps, k);
            assert!(
                (dp - brute).abs() < 1e-9,
                "ps={ps:?} k={k}: dp={dp} brute={brute}"
            );
        }
    }

    fn problem_with_nodes(nodes: &[NodeSpec], k: usize) -> CompositionProblem {
        let m = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
            .area(Rect::square(100.0))
            .require_modality(SensorKind::Visual)
            .coverage_fraction(1.0)
            .resilience(k)
            .build();
        CompositionProblem::from_mission(&m, nodes, 2)
    }

    fn coverer(id: u64) -> NodeSpec {
        NodeSpec::builder(NodeId::new(id))
            .affiliation(Affiliation::Blue)
            .position(Point::new(50.0, 50.0))
            .sensor(Sensor::new(SensorKind::Visual, 200.0, 0.9))
            .energy(EnergyBudget::unlimited())
            .build()
    }

    #[test]
    fn redundant_coverage_survives_better() {
        let nodes = vec![coverer(0), coverer(1), coverer(2)];
        let p = problem_with_nodes(&nodes, 1);
        let single = assess(&p, &[0], &[0.3], 2_000, 1);
        let triple = assess(&p, &[0, 1, 2], &[0.3, 0.3, 0.3], 2_000, 1);
        assert!(triple.success_probability > single.success_probability);
        assert!(triple.expected_coverage > single.expected_coverage);
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        let nodes = vec![coverer(0), coverer(1)];
        let p = problem_with_nodes(&nodes, 1);
        let report = assess(&p, &[0, 1], &[0.4, 0.2], 20_000, 2);
        // Every pair has the same two coverers: survival = 1 - 0.4*0.2.
        let expected = 1.0 - 0.4 * 0.2;
        assert!((report.expected_coverage - expected).abs() < 1e-9);
        // With full coverage required, success prob equals pair survival.
        assert!((report.success_probability - expected).abs() < 0.02);
    }

    #[test]
    fn zero_failure_probability_guarantees_success() {
        let nodes = vec![coverer(0)];
        let p = problem_with_nodes(&nodes, 1);
        let report = assess(&p, &[0], &[0.0], 500, 3);
        assert_eq!(report.success_probability, 1.0);
        assert!(report.pair_survival.iter().all(|&s| (s - 1.0).abs() < 1e-12));
    }

    #[test]
    fn failure_probability_mapping() {
        assert!(failure_probability(1.0, 0.05, 0.5) < failure_probability(0.0, 0.05, 0.5));
        assert_eq!(failure_probability(1.0, 0.05, 0.5), 0.05);
        assert!(failure_probability(-5.0, 0.9, 1.0) <= 0.95);
    }

    #[test]
    #[should_panic(expected = "one failure probability")]
    fn assess_validates_lengths() {
        let nodes = vec![coverer(0)];
        let p = problem_with_nodes(&nodes, 1);
        assess(&p, &[0], &[0.1, 0.2], 10, 0);
    }
}
