//! Assured synthesis of composite IoBT assets (paper §III, Fig. 2).
//!
//! From a [`Mission`](iobt_types::Mission) and a pool of recruited
//! candidates, this crate derives a [composition
//! problem](problem::CompositionProblem) (which sensing modality must cover
//! which cell of the area, with what redundancy), solves it with a
//! portfolio of [solvers](solvers::Solver) (greedy / annealing / exhaustive
//! / random baseline), quantifies the dependability of the result with the
//! [assurance calculus](assurance), and [repairs](mod@repair) compositions
//! incrementally when assets are lost.
//!
//! # Examples
//!
//! ```
//! use iobt_synthesis::prelude::*;
//! use iobt_types::prelude::*;
//!
//! let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
//!     .area(Rect::square(500.0))
//!     .require_modality(SensorKind::Visual)
//!     .coverage_fraction(0.9)
//!     .build();
//! let nodes: Vec<NodeSpec> = (0..50)
//!     .map(|i| {
//!         NodeSpec::builder(NodeId::new(i))
//!             .affiliation(Affiliation::Blue)
//!             .position(Point::new((i % 10) as f64 * 55.0, (i / 10) as f64 * 110.0))
//!             .sensor(Sensor::new(SensorKind::Visual, 120.0, 0.9))
//!             .build()
//!     })
//!     .collect();
//! let problem = CompositionProblem::from_mission(&mission, &nodes, 6);
//! let result = Solver::Greedy.solve(&problem);
//! assert!(result.satisfied);
//! assert!(result.selected.len() < nodes.len(), "greedy economizes");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assurance;
pub mod coverage;
pub mod index;
pub mod problem;
pub mod repair;
pub mod solvers;

pub use assurance::{assess, failure_probability, AssuranceReport};
pub use coverage::{CoverageCounter, CoverageSet};
pub use index::CellIndex;
pub use problem::{candidate_cost, Candidate, CompositionProblem};
pub use repair::{repair, repair_with, repair_with_timed, RepairResult};
pub use solvers::{CompositionResult, MemberOutcome, SolveStats, Solver, SolverBudget};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::{
        assess, candidate_cost, failure_probability, repair, repair_with, repair_with_timed,
        AssuranceReport, Candidate, CellIndex, CompositionProblem, CompositionResult,
        CoverageCounter, CoverageSet, MemberOutcome, RepairResult, SolveStats, Solver,
        SolverBudget,
    };
}
