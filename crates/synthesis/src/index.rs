//! Uniform spatial-bucket index over grid cell centers.
//!
//! Problem construction must decide, for every (candidate, modality)
//! pair, which cells the candidate's sensor reaches. The brute-force scan
//! checks every cell center — `O(candidates × modalities × cells)` — which
//! dominates construction time at 10k-candidate scale. Mission grids are
//! uniform, so a bucket grid over the cell centers answers "which centers
//! lie within range `r` of point `p`?" touching only the buckets the query
//! disc overlaps.

use iobt_types::Point;

/// A spatial index over a fixed set of points (cell centers).
///
/// Two layouts, chosen at build time:
///
/// - **Uniform**: mission grids are exact row-major lattices (every row
///   repeats the same column x-coordinates bit-for-bit). Queries then
///   reduce to two interval lookups on tiny per-axis coordinate arrays
///   plus one `dx² + dy²` test per cell in the bounding box — no
///   division, no sqrt, no indirection through the centers slice.
/// - **Buckets**: arbitrary point sets fall back to a bucket grid in CSR
///   form: one flat, bucket-major entry array plus per-bucket offsets. A
///   range query sweeps, per bucket row, ONE contiguous entry slice
///   (buckets in a row are adjacent in CSR order).
#[derive(Debug, Clone)]
pub struct CellIndex {
    layout: Layout,
}

#[derive(Debug, Clone)]
enum Layout {
    Uniform {
        /// Column x-coordinates (strictly increasing, `cols` long).
        xs: Vec<f64>,
        /// Row y-coordinates (strictly increasing, `rows` long).
        ys: Vec<f64>,
        /// `1 / column pitch` (1.0 for a single column); only an
        /// accelerator for interval lookup — exactness never depends on it.
        inv_px: f64,
        /// `1 / row pitch`, same caveat.
        inv_py: f64,
    },
    Buckets(BucketGrid),
}

#[derive(Debug, Clone)]
struct BucketGrid {
    min_x: f64,
    min_y: f64,
    /// Bucket edge length in meters (> 0 even for degenerate inputs).
    bucket: f64,
    cols: usize,
    rows: usize,
    /// CSR offsets, `cols * rows + 1` long; bucket `(row, col)` owns
    /// `entries[starts[row * cols + col]..starts[row * cols + col + 1]]`.
    starts: Vec<u32>,
    /// Center indices, bucket-major.
    entries: Vec<u32>,
}

/// Detects an exact row-major lattice: `centers[r * cols + c]` must equal
/// `(xs[c], ys[r])` bit-for-bit with both axes strictly increasing.
fn detect_uniform(centers: &[Point]) -> Option<(Vec<f64>, Vec<f64>)> {
    let first_y = centers[0].y;
    let cols = centers
        .iter()
        .position(|c| c.y != first_y)
        .unwrap_or(centers.len());
    if !centers.len().is_multiple_of(cols) {
        return None;
    }
    let rows = centers.len() / cols;
    let xs: Vec<f64> = centers[..cols].iter().map(|c| c.x).collect();
    let ys: Vec<f64> = (0..rows).map(|r| centers[r * cols].y).collect();
    if xs.windows(2).any(|w| w[0] >= w[1]) || ys.windows(2).any(|w| w[0] >= w[1]) {
        return None;
    }
    for (i, c) in centers.iter().enumerate() {
        if c.x != xs[i % cols] || c.y != ys[i / cols] {
            return None;
        }
    }
    Some((xs, ys))
}

/// First/one-past-last index of `coords` values inside `[lo, hi]`.
///
/// The pitch estimate only seeds the position; the fix-up loops make the
/// result exact for any strictly increasing `coords`.
#[inline]
fn interval(coords: &[f64], inv_pitch: f64, lo: f64, hi: f64) -> (usize, usize) {
    let n = coords.len();
    let origin = coords[0];
    let mut a = ((lo - origin) * inv_pitch).ceil().clamp(0.0, n as f64) as usize;
    while a > 0 && coords[a - 1] >= lo {
        a -= 1;
    }
    while a < n && coords[a] < lo {
        a += 1;
    }
    let mut b = (((hi - origin) * inv_pitch).floor() + 1.0).clamp(0.0, n as f64) as usize;
    while b < n && coords[b] <= hi {
        b += 1;
    }
    while b > 0 && coords[b - 1] > hi {
        b -= 1;
    }
    (a, b)
}

impl CellIndex {
    /// Builds an index over `centers`. Exact row-major lattices (the mission
    /// grid case) get the uniform layout; anything else gets a bucket grid
    /// sized for roughly one point per bucket.
    pub fn build(centers: &[Point]) -> Self {
        if let Some((xs, ys)) = (!centers.is_empty())
            .then(|| detect_uniform(centers))
            .flatten()
        {
            let inv = |c: &[f64]| {
                if c.len() > 1 {
                    1.0 / (c[1] - c[0])
                } else {
                    1.0
                }
            };
            return CellIndex {
                layout: Layout::Uniform {
                    inv_px: inv(&xs),
                    inv_py: inv(&ys),
                    xs,
                    ys,
                },
            };
        }
        CellIndex {
            layout: Layout::Buckets(BucketGrid::build(centers)),
        }
    }

    /// Calls `hit` with the index of every center within `range` meters of
    /// `pos` (inclusive boundary, exactly matching a full-scan distance
    /// check). Visit order is layout-defined, not index-sorted.
    #[inline]
    pub fn for_each_in_range(
        &self,
        centers: &[Point],
        pos: Point,
        range: f64,
        mut hit: impl FnMut(u32),
    ) {
        self.for_each_covered(centers, pos, &[range], |ci, _| hit(ci));
    }

    /// Multi-modality range query: calls `hit(ci, mi)` for every center
    /// `ci` within `ranges[mi]` meters of `pos` (inclusive boundary,
    /// bit-identical to a full-scan `distance_sq_to` check). Negative
    /// entries — e.g. a `NEG_INFINITY` "missing modality" sentinel — never
    /// hit. One sweep of the union disc replaces one query per modality,
    /// which matters when the per-query setup rivals the per-cell work.
    #[inline]
    pub fn for_each_covered(
        &self,
        centers: &[Point],
        pos: Point,
        ranges: &[f64],
        mut hit: impl FnMut(u32, usize),
    ) {
        self.for_each_covered_run(centers, pos, ranges, |s, e, mi| {
            for ci in s..e {
                hit(ci, mi);
            }
        });
    }

    /// Run-granular form of [`CellIndex::for_each_covered`]: hits are
    /// reported as half-open center-index runs `run(start, end, mi)`.
    ///
    /// On the uniform layout the centers a disc reaches in one grid row are
    /// contiguous (`dx²` is unimodal along a row, exactly, even in floating
    /// point), so each (row, modality) yields at most one run found by
    /// scanning inward from the bounding-box edges — interior cells are
    /// never distance-tested. Bucket-grid fallback reports single-cell
    /// runs. Callers that can sink whole runs (e.g. bitset construction)
    /// avoid per-hit work entirely.
    #[inline]
    pub fn for_each_covered_run(
        &self,
        centers: &[Point],
        pos: Point,
        ranges: &[f64],
        mut run: impl FnMut(u32, u32, usize),
    ) {
        let mut rmax = -1.0f64;
        for &r in ranges {
            if r > rmax {
                rmax = r;
            }
        }
        if rmax < 0.0 {
            return;
        }
        match &self.layout {
            Layout::Uniform { xs, ys, inv_px, inv_py } => {
                let (c0, c1) = interval(xs, *inv_px, pos.x - rmax, pos.x + rmax);
                if c0 >= c1 {
                    return;
                }
                let (r0, r1) = interval(ys, *inv_py, pos.y - rmax, pos.y + rmax);
                let cols = xs.len();
                let row = &xs[c0..c1];
                for (dr, &y) in ys[r0..r1].iter().enumerate() {
                    let dy = pos.y - y;
                    let dy2 = dy * dy;
                    let base = ((r0 + dr) * cols + c0) as u32;
                    for (mi, &rg) in ranges.iter().enumerate() {
                        if rg < 0.0 {
                            continue;
                        }
                        // Same expression shape as `Point::distance_sq_to`
                        // (`dx * dx + dy * dy` vs `r * r`), so the inclusive
                        // boundary matches the full scan bit-for-bit.
                        let rsq = rg * rg;
                        if dy2 > rsq {
                            continue; // d2 >= dy2 for every cell in the row
                        }
                        let inside = |&x: &f64| {
                            let dx = pos.x - x;
                            dx * dx + dy2 <= rsq
                        };
                        let Some(a) = row.iter().position(inside) else {
                            continue;
                        };
                        // A hit exists, so the reverse scan terminates.
                        // lint: allow(panic) — the forward scan just found a member, so the reverse scan must too
                        let b = row.len() - row.iter().rev().position(inside).unwrap();
                        run(base + a as u32, base + b as u32, mi);
                    }
                }
            }
            Layout::Buckets(grid) => grid.for_each_covered(centers, pos, rmax, ranges, &mut run),
        }
    }
}

impl BucketGrid {
    fn build(centers: &[Point]) -> Self {
        if centers.is_empty() {
            return BucketGrid {
                min_x: 0.0,
                min_y: 0.0,
                bucket: 1.0,
                cols: 1,
                rows: 1,
                starts: vec![0, 0],
                entries: Vec::new(),
            };
        }
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for c in centers {
            min_x = min_x.min(c.x);
            min_y = min_y.min(c.y);
            max_x = max_x.max(c.x);
            max_y = max_y.max(c.y);
        }
        let extent = (max_x - min_x).max(max_y - min_y);
        let side = (centers.len() as f64).sqrt().ceil().max(1.0);
        let bucket = (extent / side).max(1e-9);
        let cols = ((max_x - min_x) / bucket) as usize + 1;
        let rows = ((max_y - min_y) / bucket) as usize + 1;
        let bucket_of = |c: &Point| -> usize {
            let col = (((c.x - min_x) / bucket) as usize).min(cols - 1);
            let row = (((c.y - min_y) / bucket) as usize).min(rows - 1);
            row * cols + col
        };
        // Counting sort into CSR: count, prefix-sum, scatter.
        let mut starts = vec![0u32; cols * rows + 1];
        for c in centers {
            starts[bucket_of(c) + 1] += 1;
        }
        for b in 1..starts.len() {
            starts[b] += starts[b - 1];
        }
        let mut cursor = starts.clone();
        let mut entries = vec![0u32; centers.len()];
        for (i, c) in centers.iter().enumerate() {
            let b = bucket_of(c);
            entries[cursor[b] as usize] = i as u32;
            cursor[b] += 1;
        }
        BucketGrid {
            min_x,
            min_y,
            bucket,
            cols,
            rows,
            starts,
            entries,
        }
    }

    fn for_each_covered(
        &self,
        centers: &[Point],
        pos: Point,
        rmax: f64,
        ranges: &[f64],
        run: &mut impl FnMut(u32, u32, usize),
    ) {
        // Bucket span the union disc can overlap; clamped to the grid so
        // far-away candidates touch nothing.
        let lo_col = ((pos.x - rmax - self.min_x) / self.bucket).floor().max(0.0) as usize;
        let lo_row = ((pos.y - rmax - self.min_y) / self.bucket).floor().max(0.0) as usize;
        if lo_col >= self.cols || lo_row >= self.rows {
            return;
        }
        let hi_col = (((pos.x + rmax - self.min_x) / self.bucket).floor() as usize)
            .min(self.cols - 1);
        let hi_row = (((pos.y + rmax - self.min_y) / self.bucket).floor() as usize)
            .min(self.rows - 1);
        if (pos.x + rmax) < self.min_x || (pos.y + rmax) < self.min_y {
            return;
        }
        for row in lo_row..=hi_row {
            // Buckets lo_col..=hi_col of this row are contiguous in CSR
            // order: sweep them as one slice.
            let base = row * self.cols;
            let s = self.starts[base + lo_col] as usize;
            let e = self.starts[base + hi_col + 1] as usize;
            for &ci in &self.entries[s..e] {
                let d2 = pos.distance_sq_to(centers[ci as usize]);
                for (mi, &r) in ranges.iter().enumerate() {
                    if r >= 0.0 && d2 <= r * r {
                        run(ci, ci + 1, mi);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_centers(n: usize, pitch: f64) -> Vec<Point> {
        let mut v = Vec::new();
        for r in 0..n {
            for c in 0..n {
                v.push(Point::new(
                    (c as f64 + 0.5) * pitch,
                    (r as f64 + 0.5) * pitch,
                ));
            }
        }
        v
    }

    fn query_sorted(index: &CellIndex, centers: &[Point], pos: Point, range: f64) -> Vec<u32> {
        let mut out = Vec::new();
        index.for_each_in_range(centers, pos, range, |ci| out.push(ci));
        out.sort_unstable();
        out
    }

    fn scan_sorted(centers: &[Point], pos: Point, range: f64) -> Vec<u32> {
        (0..centers.len() as u32)
            .filter(|&ci| pos.distance_sq_to(centers[ci as usize]) <= range * range)
            .collect()
    }

    #[test]
    fn matches_full_scan_on_a_grid() {
        let centers = grid_centers(12, 100.0);
        let index = CellIndex::build(&centers);
        for (px, py, r) in [
            (600.0, 600.0, 150.0),
            (0.0, 0.0, 400.0),
            (1250.0, 30.0, 90.0),
            (-500.0, -500.0, 100.0), // fully outside
            (600.0, 600.0, 5_000.0), // covers everything
            (601.0, 599.0, 0.0),
        ] {
            let pos = Point::new(px, py);
            assert_eq!(
                query_sorted(&index, &centers, pos, r),
                scan_sorted(&centers, pos, r),
                "query at ({px}, {py}) range {r}"
            );
        }
    }

    #[test]
    fn inclusive_boundary_matches_scan() {
        let centers = grid_centers(4, 10.0);
        let index = CellIndex::build(&centers);
        // Exactly on-boundary: distance to (5, 5) from (15, 5) is 10.
        let pos = Point::new(15.0, 5.0);
        let hits = query_sorted(&index, &centers, pos, 10.0);
        assert_eq!(hits, scan_sorted(&centers, pos, 10.0));
        assert!(hits.contains(&0));
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let index = CellIndex::build(&[]);
        index.for_each_in_range(&[], Point::ORIGIN, 100.0, |_| {
            panic!("no centers to hit")
        });
        // All centers coincident.
        let same = vec![Point::new(5.0, 5.0); 7];
        let index = CellIndex::build(&same);
        let hits = query_sorted(&index, &same, Point::new(5.0, 5.0), 1.0);
        assert_eq!(hits, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(query_sorted(&index, &same, Point::new(50.0, 50.0), 1.0).is_empty());
    }

    #[test]
    fn scattered_points_match_scan() {
        // Non-lattice input exercises the bucket-grid fallback layout.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let centers: Vec<Point> = (0..257)
            .map(|_| Point::new(next() * 1_900.0, next() * 1_900.0))
            .collect();
        let index = CellIndex::build(&centers);
        for (px, py, r) in [
            (950.0, 950.0, 200.0),
            (0.0, 1_900.0, 700.0),
            (-100.0, 300.0, 150.0),
            (950.0, 950.0, 10_000.0),
        ] {
            let pos = Point::new(px, py);
            assert_eq!(
                query_sorted(&index, &centers, pos, r),
                scan_sorted(&centers, pos, r),
                "query at ({px}, {py}) range {r}"
            );
        }
    }

    #[test]
    fn jittered_grid_falls_back_and_matches_scan() {
        let mut centers = grid_centers(6, 50.0);
        centers[17].x += 0.125; // break exact-lattice detection
        let index = CellIndex::build(&centers);
        for r in [0.0, 40.0, 75.0, 1_000.0] {
            let pos = Point::new(151.0, 149.0);
            assert_eq!(
                query_sorted(&index, &centers, pos, r),
                scan_sorted(&centers, pos, r)
            );
        }
    }

    #[test]
    fn single_row_and_single_column_grids_match_scan() {
        for centers in [
            (0..9).map(|c| Point::new(c as f64 * 10.0, 5.0)).collect::<Vec<_>>(),
            (0..9).map(|r| Point::new(5.0, r as f64 * 10.0)).collect::<Vec<_>>(),
        ] {
            let index = CellIndex::build(&centers);
            for (px, py, r) in [(25.0, 5.0, 10.0), (5.0, 25.0, 10.0), (40.0, 40.0, 60.0)] {
                let pos = Point::new(px, py);
                assert_eq!(
                    query_sorted(&index, &centers, pos, r),
                    scan_sorted(&centers, pos, r),
                    "query at ({px}, {py}) range {r}"
                );
            }
        }
    }

    #[test]
    fn negative_range_hits_nothing() {
        let centers = grid_centers(3, 1.0);
        let index = CellIndex::build(&centers);
        index.for_each_in_range(&centers, Point::new(1.0, 1.0), -1.0, |_| {
            panic!("negative range")
        });
    }
}
