//! Packed coverage bitsets and word-parallel redundancy accounting.
//!
//! The composition solvers spend nearly all their time asking two
//! questions about a candidate: *which pairs does it cover* and *how many
//! of those still need coverers*. Representing a candidate's covered
//! (cell, modality) pairs as a packed `u64` bitset answers the second
//! question 64 pairs at a time: the marginal gain of a candidate is one
//! AND-NOT + popcount pass over its words instead of a per-pair loop.

/// Word count up to which a [`CoverageSet`] lives inline (no heap
/// allocation): 512 pairs. Problem construction builds one set per
/// candidate, so avoiding a malloc per candidate matters at 10k scale.
const INLINE_WORDS: usize = 8;

#[derive(Clone)]
enum Words {
    Inline { len: u8, buf: [u64; INLINE_WORDS] },
    Heap(Vec<u64>),
}

/// A set of coverage-pair indices packed 64-per-word.
///
/// Construction order is irrelevant (bitsets are canonical), iteration
/// yields indices in ascending order, and equality/hashing follow set
/// semantics — all matching the sorted `Vec<u32>` representation this
/// type replaced. Universes up to `64 * INLINE_WORDS` pairs are stored
/// inline.
#[derive(Clone)]
pub struct CoverageSet {
    words: Words,
}

impl PartialEq for CoverageSet {
    fn eq(&self, other: &Self) -> bool {
        self.words() == other.words()
    }
}

impl Eq for CoverageSet {}

impl CoverageSet {
    /// An empty set able to hold pair indices `0..universe`.
    pub fn with_capacity(universe: usize) -> Self {
        let n = universe.div_ceil(64);
        CoverageSet {
            words: if n <= INLINE_WORDS {
                Words::Inline {
                    len: n as u8,
                    buf: [0u64; INLINE_WORDS],
                }
            } else {
                Words::Heap(vec![0u64; n])
            },
        }
    }

    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            Words::Inline { len, buf } => &mut buf[..*len as usize],
            Words::Heap(v) => v,
        }
    }

    /// Builds a set from pair indices (any order, duplicates collapse).
    pub fn from_indices(universe: usize, indices: impl IntoIterator<Item = u32>) -> Self {
        let mut set = CoverageSet::with_capacity(universe);
        for i in indices {
            set.insert(i);
        }
        set
    }

    /// Adds a pair index.
    ///
    /// # Panics
    ///
    /// Panics when `pair` is beyond the construction capacity.
    #[inline]
    pub fn insert(&mut self, pair: u32) {
        self.words_mut()[(pair / 64) as usize] |= 1u64 << (pair % 64);
    }

    /// Bulk insert of `count` pairs `start, start + stride, ...` — the
    /// run form of [`CoverageSet::insert`]. Strides 1 and 2 (one- and
    /// two-modality problems) set whole-word masks instead of per-bit.
    ///
    /// # Panics
    ///
    /// Panics when the last pair is beyond the construction capacity, or
    /// when `count > 0 && stride == 0`.
    #[inline]
    pub fn insert_run(&mut self, start: u32, count: u32, stride: u32) {
        set_strided_run(self.words_mut(), start, count, stride);
    }

    /// Whether the set contains a pair index.
    #[inline]
    pub fn contains(&self, pair: u32) -> bool {
        self.words()
            .get((pair / 64) as usize)
            .is_some_and(|w| w & (1u64 << (pair % 64)) != 0)
    }

    /// Number of pairs in the set.
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Iterates pair indices in ascending order.
    pub fn iter(&self) -> CoverageIter<'_> {
        let words = self.words();
        CoverageIter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }

    /// The backing words (low bit of word 0 is pair 0).
    pub fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline { len, buf } => &buf[..*len as usize],
            Words::Heap(v) => v,
        }
    }

    /// Counts pairs in `self` that are NOT in `mask` — the word-parallel
    /// core of marginal-gain evaluation (`mask` holds already-saturated
    /// pairs).
    pub fn count_outside(&self, mask: &[u64]) -> usize {
        self.words()
            .iter()
            .zip(mask)
            .map(|(w, m)| (w & !m).count_ones() as usize)
            .sum()
    }
}

/// Sets bits `start, start + stride, ...` (`count` of them) in a packed
/// word slice. Shared by [`CoverageSet::insert_run`] and the problem
/// constructor, which writes into the backing words directly.
#[inline]
pub(crate) fn set_strided_run(words: &mut [u64], start: u32, count: u32, stride: u32) {
    if count == 0 {
        return;
    }
    assert!(stride > 0, "stride must be nonzero");
    let end = start + (count - 1) * stride; // inclusive last bit
    let (w0, b0) = ((start / 64) as usize, start % 64);
    let (w1, b1) = ((end / 64) as usize, end % 64);
    // A stride that divides 64 repeats the same bit pattern in every
    // word, so the run becomes one masked OR per touched word.
    let pattern = match stride {
        1 => u64::MAX,
        2 => 0x5555_5555_5555_5555u64 << (start % 2),
        _ => {
            for i in 0..count {
                let p = start + i * stride;
                words[(p / 64) as usize] |= 1u64 << (p % 64);
            }
            return;
        }
    };
    assert!(w1 < words.len(), "run beyond capacity");
    let lo_mask = u64::MAX << b0;
    let hi_mask = u64::MAX >> (63 - b1);
    if w0 == w1 {
        words[w0] |= lo_mask & hi_mask & pattern;
        return;
    }
    words[w0] |= lo_mask & pattern;
    for w in &mut words[w0 + 1..w1] {
        *w |= pattern;
    }
    words[w1] |= hi_mask & pattern;
}

impl std::fmt::Debug for CoverageSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a CoverageSet {
    type Item = u32;
    type IntoIter = CoverageIter<'a>;

    fn into_iter(self) -> CoverageIter<'a> {
        self.iter()
    }
}

/// Ascending iterator over a [`CoverageSet`].
pub struct CoverageIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for CoverageIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u32 * 64 + bit)
    }
}

/// Incremental per-pair multiplicity tracking with a word-parallel
/// saturation mask.
///
/// Maintains, under candidate additions/removals: the exact per-pair
/// coverer count, the number of pairs at redundancy ≥ `k`, and a bitset of
/// those saturated pairs (so [`CoverageCounter::gain`] is word-parallel).
#[derive(Debug, Clone)]
pub struct CoverageCounter {
    k: u16,
    counts: Vec<u16>,
    saturated: Vec<u64>,
    satisfied: usize,
}

impl CoverageCounter {
    /// An empty counter over `pair_count` pairs at redundancy `k`.
    ///
    /// `k == 0` means every pair is trivially satisfied from the start.
    pub fn new(pair_count: usize, k: usize) -> Self {
        let k = k.min(u16::MAX as usize) as u16;
        let words = pair_count.div_ceil(64);
        let mut counter = CoverageCounter {
            k,
            counts: vec![0u16; pair_count],
            saturated: vec![0u64; words],
            satisfied: 0,
        };
        if k == 0 {
            // All pairs start saturated; mask bits beyond pair_count stay
            // clear so word-parallel gain never counts phantom pairs.
            for (i, w) in counter.saturated.iter_mut().enumerate() {
                let bits_here = (pair_count - i * 64).min(64);
                *w = if bits_here == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits_here) - 1
                };
            }
            counter.satisfied = pair_count;
        }
        counter
    }

    /// Number of pairs at redundancy ≥ `k`.
    #[inline]
    pub fn satisfied(&self) -> usize {
        self.satisfied
    }

    /// Exact per-pair multiplicities.
    pub fn counts(&self) -> &[u16] {
        &self.counts
    }

    /// Marginal gain of adding `covers`: how many of its pairs are not
    /// yet saturated. One AND-NOT + popcount pass per word.
    #[inline]
    pub fn gain(&self, covers: &CoverageSet) -> usize {
        covers.count_outside(&self.saturated)
    }

    /// How many pairs would newly reach redundancy `k` if `covers` were
    /// added (the annealer's add-move delta).
    pub fn newly_satisfied_if_added(&self, covers: &CoverageSet) -> usize {
        if self.k == 0 {
            return 0;
        }
        let target = self.k - 1;
        covers
            .iter()
            .filter(|&p| self.counts[p as usize] == target)
            .count()
    }

    /// How many pairs would drop below redundancy `k` if `covers` were
    /// removed (the annealer's remove-move delta).
    pub fn newly_unsatisfied_if_removed(&self, covers: &CoverageSet) -> usize {
        if self.k == 0 {
            return 0;
        }
        covers
            .iter()
            .filter(|&p| self.counts[p as usize] == self.k)
            .count()
    }

    /// Adds one candidate's coverage.
    pub fn add(&mut self, covers: &CoverageSet) {
        for p in covers.iter() {
            let c = &mut self.counts[p as usize];
            *c = c.saturating_add(1);
            if *c == self.k {
                self.saturated[(p / 64) as usize] |= 1u64 << (p % 64);
                self.satisfied += 1;
            }
        }
    }

    /// Removes one previously-added candidate's coverage.
    pub fn remove(&mut self, covers: &CoverageSet) {
        for p in covers.iter() {
            let c = &mut self.counts[p as usize];
            if *c == self.k && self.k > 0 {
                self.saturated[(p / 64) as usize] &= !(1u64 << (p % 64));
                self.satisfied -= 1;
            }
            *c = c.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_canonical() {
        let a = CoverageSet::from_indices(200, [7u32, 3, 130, 64]);
        let b = CoverageSet::from_indices(200, [130u32, 64, 3, 7, 7]);
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 7, 64, 130]);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert!(a.contains(64) && !a.contains(65));
    }

    #[test]
    fn empty_set_behaves() {
        let s = CoverageSet::with_capacity(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn counter_tracks_saturation_incrementally() {
        let mut c = CoverageCounter::new(130, 2);
        let a = CoverageSet::from_indices(130, [0u32, 1, 128]);
        let b = CoverageSet::from_indices(130, [1u32, 128, 129]);
        assert_eq!(c.gain(&a), 3);
        assert_eq!(c.newly_satisfied_if_added(&a), 0);
        c.add(&a);
        assert_eq!(c.satisfied(), 0);
        assert_eq!(c.newly_satisfied_if_added(&b), 2); // pairs 1 and 128 reach k=2
        c.add(&b);
        assert_eq!(c.satisfied(), 2);
        // Saturated pairs no longer contribute gain.
        assert_eq!(c.gain(&a), 1); // only pair 0 still below k
        assert_eq!(c.newly_unsatisfied_if_removed(&b), 2);
        c.remove(&b);
        assert_eq!(c.satisfied(), 0);
        assert_eq!(c.counts()[1], 1);
    }

    #[test]
    fn insert_run_matches_repeated_insert() {
        for stride in [1u32, 2, 3, 5] {
            for start in [0u32, 1, 7, 63, 64, 65, 120, 200] {
                for count in [0u32, 1, 2, 3, 17, 64, 65, 90] {
                    let universe = 1_000;
                    let mut bulk = CoverageSet::with_capacity(universe);
                    bulk.insert_run(start, count, stride);
                    let mut single = CoverageSet::with_capacity(universe);
                    for i in 0..count {
                        single.insert(start + i * stride);
                    }
                    assert_eq!(
                        bulk, single,
                        "stride {stride} start {start} count {count}"
                    );
                }
            }
        }
    }

    #[test]
    fn insert_run_composes_with_existing_bits() {
        let mut s = CoverageSet::from_indices(300, [0u32, 64, 130]);
        s.insert_run(62, 4, 2); // 62, 64, 66, 68
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 62, 64, 66, 68, 130]
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn insert_run_past_capacity_panics() {
        let mut s = CoverageSet::with_capacity(100);
        s.insert_run(90, 40, 2);
    }

    #[test]
    fn zero_redundancy_is_trivially_satisfied() {
        let c = CoverageCounter::new(70, 0);
        assert_eq!(c.satisfied(), 70);
        let s = CoverageSet::from_indices(70, [0u32, 69]);
        assert_eq!(c.gain(&s), 0);
    }
}
