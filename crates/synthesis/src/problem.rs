//! The composition problem: from mission requirements and candidate
//! assets to a covering-selection instance.
//!
//! §III-B reduces "reasoning from goals to means" to concrete needs: which
//! sensing modalities must cover which cells of the mission area, with what
//! redundancy, drawing only on sufficiently trusted assets. We discretize
//! the mission area into a grid; a *coverage pair* is one (cell, modality)
//! combination. A candidate covers a pair when it carries a matching
//! sensor whose range reaches the cell center. The solvers in
//! [`crate::solvers`] then pick candidate subsets that cover enough pairs
//! `k` times over at minimum cost.

use iobt_types::{Mission, NodeId, NodeSpec, Point, SensorKind};

use crate::coverage::{CoverageCounter, CoverageSet};
use crate::index::CellIndex;

/// A recruitable asset as the solver sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Node identity.
    pub id: NodeId,
    /// Position at composition time.
    pub position: Point,
    /// Trust score in `[0, 1]`.
    pub trust: f64,
    /// Selection cost (see [`candidate_cost`]).
    pub cost: f64,
    /// Coverage pairs this candidate covers, as a packed bitset.
    pub covers: CoverageSet,
}

/// Relative cost of selecting a node: every node costs 1, gray and
/// battery-limited assets cost more (prefer durable blue infrastructure),
/// mirroring the "fewest/cheapest assets" objectives of §III-B.
pub fn candidate_cost(spec: &NodeSpec) -> f64 {
    let mut cost = 1.0;
    if !spec.affiliation().is_friendly() {
        cost += 0.5;
    }
    if spec.energy().capacity_j().is_finite() {
        cost += 0.25;
    }
    if spec.is_human() {
        cost += 0.25;
    }
    cost
}

/// A fully-specified composition instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionProblem {
    /// Candidates that passed the trust gate.
    pub candidates: Vec<Candidate>,
    /// Cell centers of the mission-area grid.
    pub cell_centers: Vec<Point>,
    /// Modalities required (parallel to pair layout).
    pub modalities: Vec<SensorKind>,
    /// Total number of coverage pairs (`cells × modalities`).
    pub pair_count: usize,
    /// Required redundancy `k` per pair.
    pub redundancy: usize,
    /// Fraction of pairs that must reach redundancy `k` for success.
    pub required_fraction: f64,
}

impl CompositionProblem {
    /// Builds the instance from a mission and candidate specs, using a
    /// `grid x grid` discretization of the mission area.
    ///
    /// Candidates below the mission's trust floor are dropped here, so the
    /// solvers never see them. Cell lookups go through a [`CellIndex`], so
    /// each candidate pays only for the cells its sensors can reach rather
    /// than a full scan of the grid.
    ///
    /// # Panics
    ///
    /// Panics when `grid == 0`.
    pub fn from_mission(mission: &Mission, specs: &[NodeSpec], grid: usize) -> Self {
        let (cell_centers, modalities, pair_count) = Self::layout(mission, grid);
        let index = CellIndex::build(&cell_centers);
        let stride = modalities.len();
        let mut candidates = Vec::with_capacity(specs.len());
        // Best range per required modality for the current spec; a single
        // pass over the node's sensors replaces one filtered max-scan per
        // modality (`best_sensor` semantics: max range wins, and a missing
        // modality contributes nothing).
        let mut ranges = vec![f64::NEG_INFINITY; stride];
        for s in specs {
            let trust = s.trust().value();
            if trust < mission.min_trust() {
                continue;
            }
            ranges.fill(f64::NEG_INFINITY);
            for sensor in s.capabilities().sensors() {
                if let Some(mi) = modalities.iter().position(|&m| m == sensor.kind()) {
                    if sensor.range_m() > ranges[mi] {
                        ranges[mi] = sensor.range_m();
                    }
                }
            }
            // One union-disc sweep covers all modalities at once (the
            // NEG_INFINITY sentinel entries never hit); each reported cell
            // run lands as strided word masks in the backing bitset, so
            // interior cells cost neither a distance test nor a per-bit
            // insert.
            let mut covers = CoverageSet::with_capacity(pair_count);
            let words = covers.words_mut();
            index.for_each_covered_run(&cell_centers, s.position(), &ranges, |cs, ce, mi| {
                crate::coverage::set_strided_run(
                    words,
                    cs * stride as u32 + mi as u32,
                    ce - cs,
                    stride as u32,
                );
            });
            candidates.push(Candidate {
                id: s.id(),
                position: s.position(),
                trust,
                cost: candidate_cost(s),
                covers,
            });
        }
        CompositionProblem {
            candidates,
            cell_centers,
            modalities,
            pair_count,
            redundancy: mission.resilience(),
            required_fraction: mission.coverage_fraction(),
        }
    }

    /// Brute-force construction checking every cell center per candidate.
    ///
    /// This is the pre-index implementation kept verbatim — including its
    /// per-candidate `Vec<u32>` accumulation and sort, with only a final
    /// conversion into the packed [`CoverageSet`] representation —
    /// so equivalence tests can assert the indexed path builds the exact
    /// same instance and the `synthesis_kernels` / `f2_synthesis_scale`
    /// benchmarks measure the real before/after construction cost.
    #[doc(hidden)]
    pub fn from_mission_scan(mission: &Mission, specs: &[NodeSpec], grid: usize) -> Self {
        let (cell_centers, modalities, pair_count) = Self::layout(mission, grid);
        let candidates = specs
            .iter()
            .filter(|s| s.trust().value() >= mission.min_trust())
            .map(|s| {
                let mut covers = Vec::new();
                for (mi, &modality) in modalities.iter().enumerate() {
                    let Some(sensor) = s.capabilities().best_sensor(modality) else {
                        continue;
                    };
                    let range_sq = sensor.range_m() * sensor.range_m();
                    for (ci, center) in cell_centers.iter().enumerate() {
                        if s.position().distance_sq_to(*center) <= range_sq {
                            covers.push((ci * modalities.len() + mi) as u32);
                        }
                    }
                }
                covers.sort_unstable();
                Candidate {
                    id: s.id(),
                    position: s.position(),
                    trust: s.trust().value(),
                    cost: candidate_cost(s),
                    covers: CoverageSet::from_indices(pair_count, covers),
                }
            })
            .collect();
        CompositionProblem {
            candidates,
            cell_centers,
            modalities,
            pair_count,
            redundancy: mission.resilience(),
            required_fraction: mission.coverage_fraction(),
        }
    }

    fn layout(mission: &Mission, grid: usize) -> (Vec<Point>, Vec<SensorKind>, usize) {
        assert!(grid > 0, "grid must be nonzero");
        let cells = mission.area().grid(grid, grid);
        let cell_centers: Vec<Point> = cells.iter().map(|c| c.center()).collect();
        let modalities = mission.required_modalities();
        let pair_count = cell_centers.len() * modalities.len();
        (cell_centers, modalities, pair_count)
    }

    /// Number of pairs at redundancy ≥ `k` under a selection (indices into
    /// `candidates`).
    pub fn pairs_satisfied(&self, selection: &[usize]) -> usize {
        self.counter_for(selection).satisfied()
    }

    /// Per-pair coverage multiplicity under a selection.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn coverage_counts(&self, selection: &[usize]) -> Vec<u16> {
        let mut counts = vec![0u16; self.pair_count];
        for &i in selection {
            for p in self.candidates[i].covers.iter() {
                counts[p as usize] = counts[p as usize].saturating_add(1);
            }
        }
        counts
    }

    /// Builds an incremental redundancy counter pre-loaded with a
    /// selection — the entry point the solvers share.
    pub fn counter_for(&self, selection: &[usize]) -> CoverageCounter {
        let mut counter = CoverageCounter::new(self.pair_count, self.redundancy);
        for &i in selection {
            counter.add(&self.candidates[i].covers);
        }
        counter
    }

    /// Number of satisfied pairs needed to meet the mission requirement.
    pub fn pairs_needed(&self) -> usize {
        ((self.required_fraction * self.pair_count as f64).ceil() as usize).min(self.pair_count)
    }

    /// Fraction of pairs at redundancy ≥ `k` under a selection.
    pub fn coverage_fraction(&self, selection: &[usize]) -> f64 {
        if self.pair_count == 0 {
            return 1.0;
        }
        self.pairs_satisfied(selection) as f64 / self.pair_count as f64
    }

    /// Total cost of a selection.
    pub fn cost(&self, selection: &[usize]) -> f64 {
        selection.iter().map(|&i| self.candidates[i].cost).sum()
    }

    /// Whether a selection meets the mission requirement.
    pub fn is_satisfied(&self, selection: &[usize]) -> bool {
        self.coverage_fraction(selection) + 1e-12 >= self.required_fraction
    }

    /// The best achievable coverage fraction using *all* candidates —
    /// an upper bound telling solvers whether the requirement is feasible
    /// at all.
    pub fn max_achievable_fraction(&self) -> f64 {
        let all: Vec<usize> = (0..self.candidates.len()).collect();
        self.coverage_fraction(&all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_types::{Affiliation, EnergyBudget, MissionId, MissionKind, Rect, Sensor, TrustScore};

    fn sensing_node(id: u64, x: f64, y: f64, kind: SensorKind, range: f64) -> NodeSpec {
        NodeSpec::builder(NodeId::new(id))
            .affiliation(Affiliation::Blue)
            .position(Point::new(x, y))
            .sensor(Sensor::new(kind, range, 0.9))
            .energy(EnergyBudget::unlimited())
            .build()
    }

    fn mission() -> Mission {
        Mission::builder(MissionId::new(1), MissionKind::Surveillance)
            .area(Rect::square(100.0))
            .require_modality(SensorKind::Visual)
            .coverage_fraction(1.0)
            .resilience(1)
            .min_trust(0.5)
            .build()
    }

    #[test]
    fn central_long_range_node_covers_everything() {
        let node = sensing_node(1, 50.0, 50.0, SensorKind::Visual, 200.0);
        let p = CompositionProblem::from_mission(&mission(), &[node], 4);
        assert_eq!(p.pair_count, 16);
        assert_eq!(p.candidates.len(), 1);
        assert_eq!(p.candidates[0].covers.len(), 16);
        assert!(p.is_satisfied(&[0]));
        assert_eq!(p.coverage_fraction(&[0]), 1.0);
    }

    #[test]
    fn short_range_node_covers_its_corner_only() {
        let node = sensing_node(1, 10.0, 10.0, SensorKind::Visual, 20.0);
        let p = CompositionProblem::from_mission(&mission(), &[node], 4);
        let covered = p.candidates[0].covers.len();
        assert!((1..16).contains(&covered), "partial coverage: {covered}");
        assert!(!p.is_satisfied(&[0]));
    }

    #[test]
    fn wrong_modality_covers_nothing() {
        let node = sensing_node(1, 50.0, 50.0, SensorKind::Seismic, 500.0);
        let p = CompositionProblem::from_mission(&mission(), &[node], 4);
        assert!(p.candidates[0].covers.is_empty());
    }

    #[test]
    fn untrusted_candidates_are_dropped() {
        let node = sensing_node(1, 50.0, 50.0, SensorKind::Visual, 200.0)
            .with_trust(TrustScore::new(0.1));
        let p = CompositionProblem::from_mission(&mission(), &[node], 4);
        assert!(p.candidates.is_empty());
        assert_eq!(p.max_achievable_fraction(), 0.0);
    }

    #[test]
    fn redundancy_requires_k_distinct_coverers() {
        let m = Mission::builder(MissionId::new(2), MissionKind::Surveillance)
            .area(Rect::square(100.0))
            .require_modality(SensorKind::Visual)
            .coverage_fraction(1.0)
            .resilience(2)
            .build();
        let a = sensing_node(1, 50.0, 50.0, SensorKind::Visual, 200.0);
        let b = sensing_node(2, 50.0, 50.0, SensorKind::Visual, 200.0);
        let p = CompositionProblem::from_mission(&m, &[a, b], 3);
        assert!(!p.is_satisfied(&[0]), "one node cannot give k=2");
        assert!(p.is_satisfied(&[0, 1]));
    }

    #[test]
    fn costs_prefer_blue_unlimited_nonhuman() {
        let blue = sensing_node(1, 0.0, 0.0, SensorKind::Visual, 10.0);
        assert_eq!(candidate_cost(&blue), 1.0);
        let gray = NodeSpec::builder(NodeId::new(2))
            .affiliation(Affiliation::Gray)
            .energy(EnergyBudget::new(100.0))
            .human(true)
            .build();
        assert_eq!(candidate_cost(&gray), 2.0);
    }

    #[test]
    fn multi_modality_pairs_are_laid_out_per_cell() {
        let m = Mission::builder(MissionId::new(3), MissionKind::Surveillance)
            .area(Rect::square(100.0))
            .require_modality(SensorKind::Visual)
            .require_modality(SensorKind::Radar)
            .build();
        let node = sensing_node(1, 50.0, 50.0, SensorKind::Visual, 200.0);
        let p = CompositionProblem::from_mission(&m, &[node], 2);
        assert_eq!(p.pair_count, 8); // 4 cells × 2 modalities
        // Visual-only node covers exactly the visual pair of each cell.
        assert_eq!(p.candidates[0].covers.len(), 4);
        assert!(p.candidates[0].covers.iter().all(|pi| pi % 2 == 0));
    }
}
