//! Composition solvers: lazy greedy, simulated annealing, portfolio,
//! exhaustive, random.
//!
//! §III-B: "these approaches search discovered IoBT nodes to determine
//! subsets that optimally satisfy the requirements … clever solutions must
//! be developed to address tractability." The greedy solver exploits the
//! submodularity of coverage (the classic `1 − 1/e` guarantee applies to
//! its max-coverage core) and runs as CELF-style lazy greedy: marginal
//! gains only shrink as the selection grows, so stale heap entries are
//! upper bounds and most candidates are never re-evaluated. Annealing
//! refines greedy output with incrementally-scored moves; the portfolio
//! races independent strategies across threads and keeps the cheapest
//! satisfying answer; exhaustive search bounds optimality on small
//! instances; random selection is the naive baseline.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use iobt_obs::{Recorder, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coverage::CoverageCounter;
use crate::problem::CompositionProblem;

/// A solver's output. Contains only selection-determined fields, so two
/// solves of the same `(problem, solver)` compare equal; wall-clock
/// timing lives outside the result (see [`Solver::solve_timed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionResult {
    /// Selected candidate indices, sorted ascending.
    pub selected: Vec<usize>,
    /// Achieved coverage fraction (pairs at redundancy ≥ k).
    pub coverage: f64,
    /// Total selection cost.
    pub cost: f64,
    /// Whether the mission requirement was met.
    pub satisfied: bool,
}

/// Deterministic work counters accumulated during a solve: how many
/// budget steps (coverage-gain evaluations / move proposals / subset
/// evaluations) were spent and how the CELF lazy heap behaved. Stats are
/// pure functions of `(problem, solver)` — they feed the observability
/// layer, never the selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Solver steps consumed (the unit [`SolverBudget`] counts).
    pub steps: u64,
    /// Entries pushed onto the CELF lazy heap (initial + refreshed).
    pub heap_pushes: u64,
    /// Stale heap entries that had to be re-evaluated.
    pub heap_refreshes: u64,
}

impl SolveStats {
    /// Accumulates another stats block (used by the portfolio to sum its
    /// members).
    pub fn absorb(&mut self, other: SolveStats) {
        self.steps += other.steps;
        self.heap_pushes += other.heap_pushes;
        self.heap_refreshes += other.heap_refreshes;
    }
}

/// How one member of a portfolio race fared. Reported in member order
/// (never finish order), so the list is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberOutcome {
    /// Stable member label (`"greedy"`, `"anneal_a"`, …).
    pub member: &'static str,
    /// Whether the member satisfied the mission requirement.
    pub satisfied: bool,
    /// Cost of the member's selection.
    pub cost: f64,
    /// Number of candidates the member selected.
    pub selected: usize,
    /// Whether this member's selection was adopted as the winner.
    pub winner: bool,
    /// The member's own work counters.
    pub stats: SolveStats,
}

/// A deterministic computation budget for the randomized/enumerative
/// solvers, counted in solver steps (annealing move proposals, subset
/// evaluations) rather than wall-clock time.
///
/// A wall-clock budget makes the *result* depend on machine load: the
/// same seed could afford 10k annealing moves on one run and 9k on the
/// next, and select different nodes. Step budgets keep every solve
/// bit-reproducible for a fixed `(problem, budget, seed)`. Wall-clock
/// appears only in the timing channel of [`Solver::solve_timed`], which
/// is pure reporting and never feeds back into a selection (`iobt-lint`
/// rule R2 enforces this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverBudget {
    steps: u64,
}

impl SolverBudget {
    /// A budget of exactly `steps` solver steps.
    pub const fn steps(steps: u64) -> Self {
        SolverBudget { steps }
    }

    /// Steps remaining.
    pub const fn remaining(&self) -> u64 {
        self.steps
    }

    /// Whether the budget can pay for `cost` steps up front.
    pub const fn covers(&self, cost: u64) -> bool {
        cost <= self.steps
    }

    /// Consumes one step; returns `false` once the budget is exhausted.
    pub fn consume(&mut self) -> bool {
        if self.steps == 0 {
            return false;
        }
        self.steps -= 1;
        true
    }
}

/// Which solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Marginal-gain-per-cost lazy greedy (CELF).
    Greedy,
    /// Greedy followed by simulated-annealing refinement.
    Anneal {
        /// Annealing iterations.
        iterations: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Uniform random selection until satisfied (baseline).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Exact minimum-cost search (only for ≤ ~20 candidates).
    Exhaustive,
    /// Races greedy, three annealing seeds, and the random baseline on
    /// scoped threads; keeps the cheapest satisfying result (falling back
    /// to the best coverage when nothing satisfies). Deterministic for a
    /// fixed `seed`: every member is deterministic and the winner is
    /// picked by member order, never by finish order.
    Portfolio {
        /// Iteration budget for each annealing member.
        iterations: usize,
        /// Base RNG seed; members derive their own streams from it.
        seed: u64,
    },
}

impl std::fmt::Display for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Solver::Greedy => write!(f, "greedy"),
            Solver::Anneal { iterations, .. } => write!(f, "anneal({iterations})"),
            Solver::Random { .. } => write!(f, "random"),
            Solver::Exhaustive => write!(f, "exhaustive"),
            Solver::Portfolio { iterations, .. } => write!(f, "portfolio({iterations})"),
        }
    }
}

impl Solver {
    /// Stable lower-case solver family name (used in trace events).
    pub fn name(&self) -> &'static str {
        match self {
            Solver::Greedy => "greedy",
            Solver::Anneal { .. } => "anneal",
            Solver::Random { .. } => "random",
            Solver::Exhaustive => "exhaustive",
            Solver::Portfolio { .. } => "portfolio",
        }
    }

    /// Runs the solver on a problem instance.
    pub fn solve(&self, problem: &CompositionProblem) -> CompositionResult {
        self.solve_inner(problem).0
    }

    /// Runs the solver and returns its deterministic work counters
    /// alongside the result.
    pub fn solve_with_stats(&self, problem: &CompositionProblem) -> (CompositionResult, SolveStats) {
        let (result, stats, _) = self.solve_inner(problem);
        (result, stats)
    }

    /// Runs the solver and records a [`TraceEvent::Solve`] (plus one
    /// [`TraceEvent::PortfolioMember`] per member, in member order) on
    /// `recorder`. Recording happens on the calling thread after any
    /// worker threads have joined, so the trace order is deterministic.
    pub fn solve_observed(
        &self,
        problem: &CompositionProblem,
        recorder: &Recorder,
    ) -> CompositionResult {
        let (result, stats, members) = self.solve_inner(problem);
        for m in &members {
            recorder.record(TraceEvent::PortfolioMember {
                member: m.member,
                satisfied: m.satisfied,
                cost: m.cost,
                selected: m.selected as u64,
                winner: m.winner,
            });
        }
        recorder.record(TraceEvent::Solve {
            solver: self.name(),
            steps: stats.steps,
            heap_pushes: stats.heap_pushes,
            heap_refreshes: stats.heap_refreshes,
            selected: result.selected.len() as u64,
            satisfied: result.satisfied,
        });
        result
    }

    /// Runs the solver and reports the wall-clock time it took, in
    /// milliseconds. The timing is a reporting channel only — it is not
    /// part of [`CompositionResult`] and can never influence a selection.
    pub fn solve_timed(&self, problem: &CompositionProblem) -> (CompositionResult, f64) {
        let start = Instant::now(); // lint: allow(wall-clock) — reporting only: the timing channel never influences a selection
        let result = self.solve(problem);
        (result, start.elapsed().as_secs_f64() * 1_000.0)
    }

    fn solve_inner(
        &self,
        problem: &CompositionProblem,
    ) -> (CompositionResult, SolveStats, Vec<MemberOutcome>) {
        let mut stats = SolveStats::default();
        let mut selected = match *self {
            Solver::Greedy => greedy(problem, &mut stats),
            Solver::Anneal { iterations, seed } => anneal(
                problem,
                SolverBudget::steps(iterations as u64),
                seed,
                &mut stats,
            ),
            Solver::Random { seed } => random_baseline(problem, seed, &mut stats),
            Solver::Exhaustive => exhaustive(problem, &mut stats),
            Solver::Portfolio { iterations, seed } => {
                return portfolio(problem, iterations, seed);
            }
        };
        selected.sort_unstable();
        (finish(problem, selected), stats, Vec::new())
    }

    /// The member solvers a [`Solver::Portfolio`] with these parameters
    /// races, in preference order.
    pub fn portfolio_members(iterations: usize, seed: u64) -> Vec<Solver> {
        vec![
            Solver::Greedy,
            Solver::Anneal { iterations, seed },
            Solver::Anneal {
                iterations,
                seed: seed.wrapping_add(1),
            },
            Solver::Anneal {
                iterations,
                seed: seed.wrapping_add(2),
            },
            Solver::Random {
                seed: seed.wrapping_add(3),
            },
        ]
    }
}

/// Stable labels for the five portfolio members, aligned with
/// [`Solver::portfolio_members`] order.
const PORTFOLIO_MEMBER_LABELS: [&str; 5] = ["greedy", "anneal_a", "anneal_b", "anneal_c", "random"];

pub(crate) fn finish(problem: &CompositionProblem, selected: Vec<usize>) -> CompositionResult {
    let coverage = problem.coverage_fraction(&selected);
    let cost = problem.cost(&selected);
    CompositionResult {
        satisfied: problem.is_satisfied(&selected),
        selected,
        coverage,
        cost,
    }
}

/// Compares two candidates by marginal-gain-per-cost via cross
/// multiplication, breaking exact ties toward the smaller index.
///
/// Exact in `f64`: gains are small integers and candidate costs are
/// multiples of 0.25 in `[1, 2]` (see
/// [`candidate_cost`](crate::problem::candidate_cost)), so both products
/// are computed without rounding. Both the reference scan greedy and the
/// CELF heap order with this same function, which is what makes their
/// selections identical.
#[inline]
fn better_ratio(gain_a: usize, cost_a: f64, idx_a: usize, gain_b: usize, cost_b: f64, idx_b: usize) -> bool {
    let lhs = gain_a as f64 * cost_b;
    let rhs = gain_b as f64 * cost_a;
    lhs > rhs || (lhs == rhs && idx_a < idx_b)
}

/// A CELF heap entry: the candidate's gain as of `stamp` selections.
struct CelfEntry {
    gain: usize,
    cost: f64,
    idx: usize,
    stamp: usize,
}

impl PartialEq for CelfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for CelfEntry {}

impl PartialOrd for CelfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CelfEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on ratio; equal ratios pop the smaller index first.
        let lhs = self.gain as f64 * other.cost;
        let rhs = other.gain as f64 * self.cost;
        lhs.partial_cmp(&rhs)
            // lint: allow(panic) — gains are small integers and costs are in [1, 2], so both products are finite
            .expect("finite gains and costs")
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// CELF lazy-greedy extension of `counter` (already loaded with any
/// initial selection) over the candidates where `eligible` is true.
/// Returns the indices added, in selection order.
///
/// Coverage gains are submodular — adding nodes never increases another
/// node's marginal gain — so a heap entry computed at an earlier stamp is
/// an upper bound. A popped entry whose gain is current is therefore the
/// true argmax and is selected without touching the rest of the pool.
pub(crate) fn greedy_extend(
    problem: &CompositionProblem,
    counter: &mut CoverageCounter,
    eligible: impl Fn(usize) -> bool,
    stats: &mut SolveStats,
) -> Vec<usize> {
    let needed = problem.pairs_needed();
    let mut heap = BinaryHeap::with_capacity(problem.candidates.len());
    for (i, cand) in problem.candidates.iter().enumerate() {
        if !eligible(i) {
            continue;
        }
        stats.steps += 1;
        let gain = counter.gain(&cand.covers);
        if gain > 0 {
            stats.heap_pushes += 1;
            heap.push(CelfEntry {
                gain,
                cost: cand.cost,
                idx: i,
                stamp: 0,
            });
        }
    }
    let mut added = Vec::new();
    let mut stamp = 0usize;
    while counter.satisfied() < needed {
        let selected = loop {
            let Some(top) = heap.pop() else {
                return added; // nothing can add coverage
            };
            if top.stamp == stamp {
                break top.idx;
            }
            // Stale upper bound: refresh and reinsert (zero gains are
            // dropped — submodularity says they can never recover).
            stats.steps += 1;
            stats.heap_refreshes += 1;
            let gain = counter.gain(&problem.candidates[top.idx].covers);
            if gain > 0 {
                stats.heap_pushes += 1;
                heap.push(CelfEntry {
                    gain,
                    stamp,
                    ..top
                });
            }
        };
        counter.add(&problem.candidates[selected].covers);
        added.push(selected);
        stamp += 1;
    }
    added
}

/// Greedy marginal-gain-per-cost selection (lazy CELF evaluation). Stops
/// when the requirement is met or no candidate adds coverage.
fn greedy(problem: &CompositionProblem, stats: &mut SolveStats) -> Vec<usize> {
    let mut counter = problem.counter_for(&[]);
    greedy_extend(problem, &mut counter, |_| true, stats)
}

/// Reference greedy: full rescan of every candidate per selection, using
/// the same exact comparator as the CELF path. Kept (test-visible) so
/// equivalence tests can assert the lazy evaluation changes nothing.
#[doc(hidden)]
pub fn greedy_scan(problem: &CompositionProblem) -> Vec<usize> {
    let needed = problem.pairs_needed();
    let mut counter = problem.counter_for(&[]);
    let mut selected = Vec::new();
    let mut in_set = vec![false; problem.candidates.len()];
    while counter.satisfied() < needed {
        let mut best: Option<(usize, usize)> = None; // (idx, gain)
        for (i, cand) in problem.candidates.iter().enumerate() {
            if in_set[i] {
                continue;
            }
            let gain = counter.gain(&cand.covers);
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bi, bg)) => {
                    better_ratio(gain, cand.cost, i, bg, problem.candidates[bi].cost, bi)
                }
            };
            if better {
                best = Some((i, gain));
            }
        }
        let Some((i, _)) = best else {
            break;
        };
        in_set[i] = true;
        selected.push(i);
        counter.add(&problem.candidates[i].covers);
    }
    selected
}

/// Simulated annealing from the greedy seed: random add/remove moves
/// scored by (deficit, cost) with a geometric temperature schedule. The
/// [`SolverBudget`] pays one step per proposed move, so the trajectory is
/// a pure function of `(problem, budget, seed)`.
/// Move deltas are evaluated incrementally against a [`CoverageCounter`]
/// — `O(pairs the node covers)` per proposal instead of re-scoring the
/// whole selection.
fn anneal(
    problem: &CompositionProblem,
    mut budget: SolverBudget,
    seed: u64,
    stats: &mut SolveStats,
) -> Vec<usize> {
    let n = problem.candidates.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = greedy(problem, stats);
    let mut in_set = vec![false; n];
    for &i in &current {
        in_set[i] = true;
    }
    let needed = (problem.required_fraction * problem.pair_count as f64).ceil();
    // Heavy penalty per unsatisfied required pair, plus cost.
    let score = |satisfied: usize, cost: f64| -> f64 {
        (needed - satisfied as f64).max(0.0) * 100.0 + cost
    };
    let mut counter = problem.counter_for(&current);
    let mut current_cost = problem.cost(&current);
    let mut current_score = score(counter.satisfied(), current_cost);
    let mut best = current.clone();
    let mut best_score = current_score;
    let mut temperature = 5.0f64;
    let cooling = 0.995f64;
    while budget.consume() {
        stats.steps += 1;
        // Propose a move and score it without applying.
        let add = current.is_empty() || rng.gen::<f64>() < 0.5;
        let (idx, pos, proposed_score) = if add {
            let i = rng.gen_range(0..n);
            if in_set[i] {
                continue;
            }
            let covers = &problem.candidates[i].covers;
            let satisfied = counter.satisfied() + counter.newly_satisfied_if_added(covers);
            (i, usize::MAX, score(satisfied, current_cost + problem.candidates[i].cost))
        } else {
            let pos = rng.gen_range(0..current.len());
            let i = current[pos];
            let covers = &problem.candidates[i].covers;
            let satisfied = counter.satisfied() - counter.newly_unsatisfied_if_removed(covers);
            (i, pos, score(satisfied, current_cost - problem.candidates[i].cost))
        };
        let accept = proposed_score <= current_score
            || rng.gen::<f64>()
                < ((current_score - proposed_score) / temperature.max(1e-9)).exp();
        if accept {
            if add {
                counter.add(&problem.candidates[idx].covers);
                current.push(idx);
                in_set[idx] = true;
                current_cost += problem.candidates[idx].cost;
            } else {
                counter.remove(&problem.candidates[idx].covers);
                current.swap_remove(pos);
                in_set[idx] = false;
                current_cost -= problem.candidates[idx].cost;
            }
            current_score = proposed_score;
            if proposed_score < best_score {
                best_score = proposed_score;
                best = current.clone();
            }
        }
        temperature *= cooling;
    }
    best
}

/// Adds uniformly random unused candidates until the requirement is met
/// or everything is selected.
fn random_baseline(problem: &CompositionProblem, seed: u64, stats: &mut SolveStats) -> Vec<usize> {
    let n = problem.candidates.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let needed = problem.pairs_needed();
    let mut counter = problem.counter_for(&[]);
    let mut selected = Vec::new();
    for i in order {
        if counter.satisfied() >= needed {
            break;
        }
        stats.steps += 1;
        counter.add(&problem.candidates[i].covers);
        selected.push(i);
    }
    selected
}

/// Subset evaluations [`exhaustive`] may spend before falling back to
/// greedy: `2^20` (i.e. at most 20 candidates).
const EXHAUSTIVE_BUDGET: SolverBudget = SolverBudget::steps(1 << 20);

/// Exact minimum-cost satisfying subset by subset enumeration. Falls back
/// to greedy when the enumeration would blow [`EXHAUSTIVE_BUDGET`].
fn exhaustive(problem: &CompositionProblem, stats: &mut SolveStats) -> Vec<usize> {
    let n = problem.candidates.len();
    if n == 0 {
        return Vec::new();
    }
    if n >= 64 || !EXHAUSTIVE_BUDGET.covers(1u64 << n) {
        return greedy(problem, stats);
    }
    // The empty selection is valid when the requirement is trivially met
    // (e.g. required fraction zero).
    if problem.is_satisfied(&[]) {
        return Vec::new();
    }
    let mut best: Option<(f64, Vec<usize>)> = None;
    for mask in 1u32..(1u32 << n) {
        stats.steps += 1;
        let selection: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let cost = problem.cost(&selection);
        if let Some((bc, _)) = &best {
            if cost >= *bc {
                continue;
            }
        }
        if problem.is_satisfied(&selection) {
            best = Some((cost, selection));
        }
    }
    match best {
        Some((_, s)) => s,
        None => greedy(problem, stats),
    }
}

/// Races the portfolio members on scoped threads and picks the winner
/// deterministically: cheapest satisfying result, ties and the
/// nothing-satisfies case resolved by member order.
fn portfolio(
    problem: &CompositionProblem,
    iterations: usize,
    seed: u64,
) -> (CompositionResult, SolveStats, Vec<MemberOutcome>) {
    let members = Solver::portfolio_members(iterations, seed);
    let results: Vec<(CompositionResult, SolveStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = members
            .iter()
            .map(|member| scope.spawn(move || member.solve_with_stats(problem)))
            .collect();
        // Joining in spawn order keeps the result list aligned with
        // `members` regardless of which thread finishes first.
        handles
            .into_iter()
            // lint: allow(panic) — join only fails if a member panicked; propagating that panic is the right response
            .map(|h| h.join().expect("portfolio member panicked"))
            .collect()
    });
    let mut winner: Option<usize> = None;
    for (i, (r, _)) in results.iter().enumerate() {
        let better = match winner {
            None => true,
            Some(w) => {
                let w = &results[w].0;
                match (r.satisfied, w.satisfied) {
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => r.cost < w.cost,
                    (false, false) => r.coverage > w.coverage,
                }
            }
        };
        if better {
            winner = Some(i);
        }
    }
    let mut stats = SolveStats::default();
    let outcomes: Vec<MemberOutcome> = results
        .iter()
        .enumerate()
        .map(|(i, (r, s))| {
            stats.absorb(*s);
            MemberOutcome {
                member: PORTFOLIO_MEMBER_LABELS.get(i).copied().unwrap_or("extra"),
                satisfied: r.satisfied,
                cost: r.cost,
                selected: r.selected.len(),
                winner: winner == Some(i),
                stats: *s,
            }
        })
        .collect();
    let selected = winner
        .map(|w| results[w].0.selected.clone())
        .unwrap_or_default();
    (finish(problem, selected), stats, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_types::{
        Affiliation, EnergyBudget, Mission, MissionId, MissionKind, NodeId, NodeSpec, Point, Rect,
        Sensor, SensorKind,
    };

    fn grid_mission(k: usize, fraction: f64) -> Mission {
        Mission::builder(MissionId::new(1), MissionKind::Surveillance)
            .area(Rect::square(300.0))
            .require_modality(SensorKind::Visual)
            .coverage_fraction(fraction)
            .resilience(k)
            .min_trust(0.5)
            .build()
    }

    fn node_at(id: u64, x: f64, y: f64, range: f64) -> NodeSpec {
        NodeSpec::builder(NodeId::new(id))
            .affiliation(Affiliation::Blue)
            .position(Point::new(x, y))
            .sensor(Sensor::new(SensorKind::Visual, range, 0.9))
            .energy(EnergyBudget::unlimited())
            .build()
    }

    fn corner_nodes() -> Vec<NodeSpec> {
        // Four corner nodes each cover one quadrant; one central node
        // covers everything but costs the same — greedy should prefer it.
        let mut nodes = vec![
            node_at(0, 75.0, 75.0, 120.0),
            node_at(1, 225.0, 75.0, 120.0),
            node_at(2, 75.0, 225.0, 120.0),
            node_at(3, 225.0, 225.0, 120.0),
        ];
        nodes.push(node_at(4, 150.0, 150.0, 250.0));
        nodes
    }

    #[test]
    fn greedy_prefers_the_dominating_node() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 1.0), &corner_nodes(), 4);
        let r = Solver::Greedy.solve(&p);
        assert!(r.satisfied);
        assert_eq!(r.selected, vec![4], "central node dominates");
        assert_eq!(r.coverage, 1.0);
    }

    #[test]
    fn all_solvers_satisfy_a_feasible_instance() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.9), &corner_nodes(), 4);
        for solver in [
            Solver::Greedy,
            Solver::Anneal { iterations: 500, seed: 1 },
            Solver::Random { seed: 2 },
            Solver::Exhaustive,
            Solver::Portfolio { iterations: 300, seed: 5 },
        ] {
            let r = solver.solve(&p);
            assert!(r.satisfied, "{solver} failed: coverage {}", r.coverage);
        }
    }

    #[test]
    fn exhaustive_is_at_least_as_cheap_as_greedy() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 1.0), &corner_nodes(), 4);
        let g = Solver::Greedy.solve(&p);
        let e = Solver::Exhaustive.solve(&p);
        assert!(e.satisfied);
        assert!(e.cost <= g.cost + 1e-9);
    }

    #[test]
    fn anneal_never_worse_than_greedy() {
        let mut nodes = corner_nodes();
        // Add decoys with small coverage.
        for i in 5..25 {
            nodes.push(node_at(i, (i * 13 % 300) as f64, (i * 29 % 300) as f64, 40.0));
        }
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.95), &nodes, 5);
        let g = Solver::Greedy.solve(&p);
        let a = Solver::Anneal { iterations: 2_000, seed: 3 }.solve(&p);
        assert!(a.satisfied);
        assert!(a.cost <= g.cost + 1e-9, "anneal {} vs greedy {}", a.cost, g.cost);
    }

    #[test]
    fn portfolio_never_worse_than_any_member() {
        let mut nodes = corner_nodes();
        for i in 5..30 {
            nodes.push(node_at(i, (i * 41 % 300) as f64, (i * 17 % 300) as f64, 50.0));
        }
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.9), &nodes, 5);
        let r = Solver::Portfolio { iterations: 800, seed: 11 }.solve(&p);
        assert!(r.satisfied);
        for member in Solver::portfolio_members(800, 11) {
            let m = member.solve(&p);
            if m.satisfied {
                assert!(
                    r.cost <= m.cost + 1e-9,
                    "portfolio {} vs member {member} {}",
                    r.cost,
                    m.cost
                );
            }
        }
    }

    #[test]
    fn portfolio_is_deterministic() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.9), &corner_nodes(), 4);
        let a = Solver::Portfolio { iterations: 400, seed: 9 }.solve(&p);
        let b = Solver::Portfolio { iterations: 400, seed: 9 }.solve(&p);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn lazy_greedy_matches_reference_scan() {
        use iobt_types::catalog::PopulationBuilder;
        for seed in 0..12u64 {
            let area = Rect::square(600.0);
            let catalog = PopulationBuilder::new(area).count(80).build(seed);
            let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
            let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
                .area(area)
                .require_modality(SensorKind::Visual)
                .coverage_fraction(0.9)
                .min_trust(0.3)
                .build();
            let p = CompositionProblem::from_mission(&mission, &specs, 6);
            assert_eq!(
                greedy(&p, &mut SolveStats::default()),
                greedy_scan(&p),
                "CELF must match the scan reference (seed {seed})"
            );
        }
    }

    #[test]
    fn random_uses_more_nodes_than_greedy_on_average() {
        let mut nodes = corner_nodes();
        for i in 5..40 {
            nodes.push(node_at(i, (i * 37 % 300) as f64, (i * 53 % 300) as f64, 60.0));
        }
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.9), &nodes, 5);
        let g = Solver::Greedy.solve(&p);
        let avg_random: f64 = (0..10)
            .map(|s| Solver::Random { seed: s }.solve(&p).selected.len() as f64)
            .sum::<f64>()
            / 10.0;
        assert!(
            avg_random > g.selected.len() as f64,
            "random {avg_random} vs greedy {}",
            g.selected.len()
        );
    }

    #[test]
    fn infeasible_instances_report_unsatisfied() {
        // Nodes too short-ranged to cover everything.
        let nodes = vec![node_at(0, 10.0, 10.0, 30.0)];
        let p = CompositionProblem::from_mission(&grid_mission(1, 1.0), &nodes, 4);
        assert!(p.max_achievable_fraction() < 1.0);
        for solver in [
            Solver::Greedy,
            Solver::Exhaustive,
            Solver::Random { seed: 1 },
            Solver::Portfolio { iterations: 100, seed: 1 },
        ] {
            let r = solver.solve(&p);
            assert!(!r.satisfied, "{solver} cannot satisfy infeasible instance");
        }
    }

    #[test]
    fn redundancy_two_selects_more_nodes() {
        let nodes = corner_nodes();
        let p1 = CompositionProblem::from_mission(&grid_mission(1, 0.9), &nodes, 4);
        let p2 = CompositionProblem::from_mission(&grid_mission(2, 0.9), &nodes, 4);
        let r1 = Solver::Greedy.solve(&p1);
        let r2 = Solver::Greedy.solve(&p2);
        assert!(r2.selected.len() > r1.selected.len());
    }

    #[test]
    fn empty_candidate_set_is_handled() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 1.0), &[], 3);
        for solver in [
            Solver::Greedy,
            Solver::Anneal { iterations: 100, seed: 0 },
            Solver::Random { seed: 0 },
            Solver::Exhaustive,
            Solver::Portfolio { iterations: 100, seed: 0 },
        ] {
            let r = solver.solve(&p);
            assert!(r.selected.is_empty());
            assert!(!r.satisfied);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Greedy must satisfy every instance the full pool can satisfy.
            #[test]
            fn greedy_satisfies_whenever_feasible(
                seed in 0u64..30,
                count in 5usize..60,
                fraction in 0.1..1.0f64,
            ) {
                use iobt_types::catalog::PopulationBuilder;
                let area = Rect::square(500.0);
                let catalog = PopulationBuilder::new(area).count(count).build(seed);
                let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
                let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
                    .area(area)
                    .require_modality(SensorKind::Visual)
                    .coverage_fraction(fraction)
                    .min_trust(0.3)
                    .build();
                let mut problem = CompositionProblem::from_mission(&mission, &specs, 4);
                // Scale the requirement to feasibility.
                problem.required_fraction = problem.max_achievable_fraction() * fraction;
                let r = Solver::Greedy.solve(&problem);
                prop_assert!(r.satisfied, "coverage {} < required {}", r.coverage, problem.required_fraction);
                // Selection indices are valid, sorted, and unique.
                prop_assert!(r.selected.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(r.selected.iter().all(|&i| i < problem.candidates.len()));
            }

            /// Lazy greedy and the scan reference agree on arbitrary
            /// populations and requirements.
            #[test]
            fn lazy_greedy_equals_scan_greedy(
                seed in 0u64..40,
                count in 5usize..70,
                fraction in 0.1..1.0f64,
            ) {
                use iobt_types::catalog::PopulationBuilder;
                let area = Rect::square(500.0);
                let catalog = PopulationBuilder::new(area).count(count).build(seed);
                let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
                let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
                    .area(area)
                    .require_modality(SensorKind::Visual)
                    .coverage_fraction(fraction)
                    .min_trust(0.3)
                    .build();
                let p = CompositionProblem::from_mission(&mission, &specs, 4);
                prop_assert_eq!(greedy(&p, &mut SolveStats::default()), greedy_scan(&p));
            }

            /// Annealing never produces an unsatisfied result when greedy
            /// satisfied (it starts from the greedy seed and only keeps
            /// improvements on the penalty-first score).
            #[test]
            fn anneal_keeps_feasibility(seed in 0u64..10) {
                use iobt_types::catalog::PopulationBuilder;
                let area = Rect::square(400.0);
                let catalog = PopulationBuilder::new(area).count(40).build(seed);
                let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
                let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
                    .area(area)
                    .require_modality(SensorKind::Visual)
                    .min_trust(0.3)
                    .build();
                let mut problem = CompositionProblem::from_mission(&mission, &specs, 4);
                problem.required_fraction = problem.max_achievable_fraction() * 0.8;
                let g = Solver::Greedy.solve(&problem);
                let a = Solver::Anneal { iterations: 500, seed }.solve(&problem);
                prop_assert!(!g.satisfied || a.satisfied);
                prop_assert!(a.cost <= g.cost + 1e-9);
            }
        }
    }

    #[test]
    fn solvers_are_deterministic() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.9), &corner_nodes(), 4);
        let a = Solver::Anneal { iterations: 300, seed: 7 }.solve(&p);
        let b = Solver::Anneal { iterations: 300, seed: 7 }.solve(&p);
        assert_eq!(a.selected, b.selected);
    }

    #[test]
    fn budget_counts_steps_not_time() {
        let mut budget = SolverBudget::steps(3);
        assert_eq!(budget.remaining(), 3);
        assert!(budget.covers(3));
        assert!(!budget.covers(4));
        assert!(budget.consume());
        assert!(budget.consume());
        assert!(budget.consume());
        assert!(!budget.consume(), "fourth step exceeds the budget");
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn anneal_trajectory_is_a_function_of_budget_and_seed() {
        let mut nodes = corner_nodes();
        for i in 5..25 {
            nodes.push(node_at(i, (i * 13 % 300) as f64, (i * 29 % 300) as f64, 40.0));
        }
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.95), &nodes, 5);
        let a = anneal(&p, SolverBudget::steps(1_000), 7, &mut SolveStats::default());
        let b = anneal(&p, SolverBudget::steps(1_000), 7, &mut SolveStats::default());
        assert_eq!(a, b, "same budget and seed, same trajectory");
        // A different budget is allowed to land elsewhere, but must itself
        // be reproducible.
        let c = anneal(&p, SolverBudget::steps(250), 7, &mut SolveStats::default());
        let d = anneal(&p, SolverBudget::steps(250), 7, &mut SolveStats::default());
        assert_eq!(c, d);
    }

    /// The portfolio winner must be identical across repeated runs even
    /// though members race on threads: every member is deterministic and
    /// the winner is chosen by member order, never finish order.
    #[test]
    fn portfolio_winner_is_stable_across_many_runs() {
        let mut nodes = corner_nodes();
        for i in 5..30 {
            nodes.push(node_at(i, (i * 41 % 300) as f64, (i * 17 % 300) as f64, 50.0));
        }
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.9), &nodes, 5);
        let first = Solver::Portfolio { iterations: 400, seed: 13 }.solve(&p);
        for _ in 0..8 {
            let again = Solver::Portfolio { iterations: 400, seed: 13 }.solve(&p);
            assert_eq!(again.selected, first.selected);
            assert_eq!(again.cost, first.cost);
            assert_eq!(again.coverage, first.coverage);
            assert_eq!(again.satisfied, first.satisfied);
        }
    }
}
