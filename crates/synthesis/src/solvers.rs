//! Composition solvers: greedy, simulated annealing, exhaustive, random.
//!
//! §III-B: "these approaches search discovered IoBT nodes to determine
//! subsets that optimally satisfy the requirements … clever solutions must
//! be developed to address tractability." The greedy solver exploits the
//! submodularity of coverage (the classic `1 − 1/e` guarantee applies to
//! its max-coverage core); annealing refines greedy output; exhaustive
//! search bounds optimality on small instances; random selection is the
//! naive baseline.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::problem::CompositionProblem;

/// A solver's output.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionResult {
    /// Selected candidate indices, sorted ascending.
    pub selected: Vec<usize>,
    /// Achieved coverage fraction (pairs at redundancy ≥ k).
    pub coverage: f64,
    /// Total selection cost.
    pub cost: f64,
    /// Whether the mission requirement was met.
    pub satisfied: bool,
    /// Wall-clock solve time in milliseconds.
    pub elapsed_ms: f64,
}

/// Which solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Marginal-gain-per-cost greedy.
    Greedy,
    /// Greedy followed by simulated-annealing refinement.
    Anneal {
        /// Annealing iterations.
        iterations: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Uniform random selection until satisfied (baseline).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Exact minimum-cost search (only for ≤ ~20 candidates).
    Exhaustive,
}

impl std::fmt::Display for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Solver::Greedy => write!(f, "greedy"),
            Solver::Anneal { iterations, .. } => write!(f, "anneal({iterations})"),
            Solver::Random { .. } => write!(f, "random"),
            Solver::Exhaustive => write!(f, "exhaustive"),
        }
    }
}

impl Solver {
    /// Runs the solver on a problem instance.
    pub fn solve(&self, problem: &CompositionProblem) -> CompositionResult {
        let start = Instant::now();
        let mut selected = match *self {
            Solver::Greedy => greedy(problem),
            Solver::Anneal { iterations, seed } => anneal(problem, iterations, seed),
            Solver::Random { seed } => random_baseline(problem, seed),
            Solver::Exhaustive => exhaustive(problem),
        };
        selected.sort_unstable();
        let coverage = problem.coverage_fraction(&selected);
        let cost = problem.cost(&selected);
        CompositionResult {
            satisfied: problem.is_satisfied(&selected),
            selected,
            coverage,
            cost,
            elapsed_ms: start.elapsed().as_secs_f64() * 1_000.0,
        }
    }
}

/// Greedy marginal-gain-per-cost selection. Stops when the requirement is
/// met or no candidate adds coverage.
fn greedy(problem: &CompositionProblem) -> Vec<usize> {
    let k = problem.redundancy as u16;
    let needed = ((problem.required_fraction * problem.pair_count as f64).ceil() as usize)
        .min(problem.pair_count);
    let mut counts = vec![0u16; problem.pair_count];
    let mut satisfied = 0usize;
    let mut selected = Vec::new();
    let mut in_set = vec![false; problem.candidates.len()];
    while satisfied < needed {
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in problem.candidates.iter().enumerate() {
            if in_set[i] || cand.covers.is_empty() {
                continue;
            }
            let gain = cand
                .covers
                .iter()
                .filter(|&&p| counts[p as usize] < k)
                .count();
            if gain == 0 {
                continue;
            }
            let ratio = gain as f64 / cand.cost;
            let better = match best {
                None => true,
                Some((bi, br)) => {
                    ratio > br + 1e-12 || ((ratio - br).abs() <= 1e-12 && i < bi)
                }
            };
            if better {
                best = Some((i, ratio));
            }
        }
        let Some((i, _)) = best else {
            break; // no candidate can add anything
        };
        in_set[i] = true;
        selected.push(i);
        for &p in &problem.candidates[i].covers {
            let c = &mut counts[p as usize];
            *c += 1;
            if *c == k {
                satisfied += 1;
            }
        }
    }
    selected
}

/// Simulated annealing from the greedy seed: random add/remove/swap moves
/// scored by (deficit, cost) with a geometric temperature schedule.
fn anneal(problem: &CompositionProblem, iterations: usize, seed: u64) -> Vec<usize> {
    let n = problem.candidates.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = greedy(problem);
    let mut in_set = vec![false; n];
    for &i in &current {
        in_set[i] = true;
    }
    let score = |sel: &[usize]| -> f64 {
        // Heavy penalty per unsatisfied required pair, plus cost.
        let needed = (problem.required_fraction * problem.pair_count as f64).ceil();
        let deficit = (needed - problem.pairs_satisfied(sel) as f64).max(0.0);
        deficit * 100.0 + problem.cost(sel)
    };
    let mut current_score = score(&current);
    let mut best = current.clone();
    let mut best_score = current_score;
    let mut temperature = 5.0f64;
    let cooling = 0.995f64;
    for _ in 0..iterations {
        // Propose a move.
        let add = current.is_empty() || rng.gen::<f64>() < 0.5;
        let mut proposal = current.clone();
        if add {
            let i = rng.gen_range(0..n);
            if in_set[i] {
                continue;
            }
            proposal.push(i);
        } else {
            let pos = rng.gen_range(0..proposal.len());
            proposal.swap_remove(pos);
        }
        let s = score(&proposal);
        let accept = s <= current_score
            || rng.gen::<f64>() < ((current_score - s) / temperature.max(1e-9)).exp();
        if accept {
            // Update membership.
            for &i in &current {
                in_set[i] = false;
            }
            current = proposal;
            for &i in &current {
                in_set[i] = true;
            }
            current_score = s;
            if s < best_score {
                best_score = s;
                best = current.clone();
            }
        }
        temperature *= cooling;
    }
    best
}

/// Adds uniformly random unused candidates until the requirement is met
/// or everything is selected.
fn random_baseline(problem: &CompositionProblem, seed: u64) -> Vec<usize> {
    let n = problem.candidates.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut selected = Vec::new();
    for i in order {
        if problem.is_satisfied(&selected) {
            break;
        }
        selected.push(i);
    }
    selected
}

/// Exact minimum-cost satisfying subset by subset enumeration (cost-ordered
/// by popcount refinement). Falls back to greedy above 20 candidates.
fn exhaustive(problem: &CompositionProblem) -> Vec<usize> {
    let n = problem.candidates.len();
    if n == 0 {
        return Vec::new();
    }
    if n > 20 {
        return greedy(problem);
    }
    // The empty selection is valid when the requirement is trivially met
    // (e.g. required fraction zero).
    if problem.is_satisfied(&[]) {
        return Vec::new();
    }
    let mut best: Option<(f64, Vec<usize>)> = None;
    for mask in 1u32..(1u32 << n) {
        let selection: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let cost = problem.cost(&selection);
        if let Some((bc, _)) = &best {
            if cost >= *bc {
                continue;
            }
        }
        if problem.is_satisfied(&selection) {
            best = Some((cost, selection));
        }
    }
    best.map(|(_, s)| s).unwrap_or_else(|| greedy(problem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_types::{
        Affiliation, EnergyBudget, Mission, MissionId, MissionKind, NodeId, NodeSpec, Point, Rect,
        Sensor, SensorKind,
    };

    fn grid_mission(k: usize, fraction: f64) -> Mission {
        Mission::builder(MissionId::new(1), MissionKind::Surveillance)
            .area(Rect::square(300.0))
            .require_modality(SensorKind::Visual)
            .coverage_fraction(fraction)
            .resilience(k)
            .min_trust(0.5)
            .build()
    }

    fn node_at(id: u64, x: f64, y: f64, range: f64) -> NodeSpec {
        NodeSpec::builder(NodeId::new(id))
            .affiliation(Affiliation::Blue)
            .position(Point::new(x, y))
            .sensor(Sensor::new(SensorKind::Visual, range, 0.9))
            .energy(EnergyBudget::unlimited())
            .build()
    }

    fn corner_nodes() -> Vec<NodeSpec> {
        // Four corner nodes each cover one quadrant; one central node
        // covers everything but costs the same — greedy should prefer it.
        let mut nodes = vec![
            node_at(0, 75.0, 75.0, 120.0),
            node_at(1, 225.0, 75.0, 120.0),
            node_at(2, 75.0, 225.0, 120.0),
            node_at(3, 225.0, 225.0, 120.0),
        ];
        nodes.push(node_at(4, 150.0, 150.0, 250.0));
        nodes
    }

    #[test]
    fn greedy_prefers_the_dominating_node() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 1.0), &corner_nodes(), 4);
        let r = Solver::Greedy.solve(&p);
        assert!(r.satisfied);
        assert_eq!(r.selected, vec![4], "central node dominates");
        assert_eq!(r.coverage, 1.0);
    }

    #[test]
    fn all_solvers_satisfy_a_feasible_instance() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.9), &corner_nodes(), 4);
        for solver in [
            Solver::Greedy,
            Solver::Anneal { iterations: 500, seed: 1 },
            Solver::Random { seed: 2 },
            Solver::Exhaustive,
        ] {
            let r = solver.solve(&p);
            assert!(r.satisfied, "{solver} failed: coverage {}", r.coverage);
        }
    }

    #[test]
    fn exhaustive_is_at_least_as_cheap_as_greedy() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 1.0), &corner_nodes(), 4);
        let g = Solver::Greedy.solve(&p);
        let e = Solver::Exhaustive.solve(&p);
        assert!(e.satisfied);
        assert!(e.cost <= g.cost + 1e-9);
    }

    #[test]
    fn anneal_never_worse_than_greedy() {
        let mut nodes = corner_nodes();
        // Add decoys with small coverage.
        for i in 5..25 {
            nodes.push(node_at(i, (i * 13 % 300) as f64, (i * 29 % 300) as f64, 40.0));
        }
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.95), &nodes, 5);
        let g = Solver::Greedy.solve(&p);
        let a = Solver::Anneal { iterations: 2_000, seed: 3 }.solve(&p);
        assert!(a.satisfied);
        assert!(a.cost <= g.cost + 1e-9, "anneal {} vs greedy {}", a.cost, g.cost);
    }

    #[test]
    fn random_uses_more_nodes_than_greedy_on_average() {
        let mut nodes = corner_nodes();
        for i in 5..40 {
            nodes.push(node_at(i, (i * 37 % 300) as f64, (i * 53 % 300) as f64, 60.0));
        }
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.9), &nodes, 5);
        let g = Solver::Greedy.solve(&p);
        let avg_random: f64 = (0..10)
            .map(|s| Solver::Random { seed: s }.solve(&p).selected.len() as f64)
            .sum::<f64>()
            / 10.0;
        assert!(
            avg_random > g.selected.len() as f64,
            "random {avg_random} vs greedy {}",
            g.selected.len()
        );
    }

    #[test]
    fn infeasible_instances_report_unsatisfied() {
        // Nodes too short-ranged to cover everything.
        let nodes = vec![node_at(0, 10.0, 10.0, 30.0)];
        let p = CompositionProblem::from_mission(&grid_mission(1, 1.0), &nodes, 4);
        assert!(p.max_achievable_fraction() < 1.0);
        for solver in [Solver::Greedy, Solver::Exhaustive, Solver::Random { seed: 1 }] {
            let r = solver.solve(&p);
            assert!(!r.satisfied, "{solver} cannot satisfy infeasible instance");
        }
    }

    #[test]
    fn redundancy_two_selects_more_nodes() {
        let nodes = corner_nodes();
        let p1 = CompositionProblem::from_mission(&grid_mission(1, 0.9), &nodes, 4);
        let p2 = CompositionProblem::from_mission(&grid_mission(2, 0.9), &nodes, 4);
        let r1 = Solver::Greedy.solve(&p1);
        let r2 = Solver::Greedy.solve(&p2);
        assert!(r2.selected.len() > r1.selected.len());
    }

    #[test]
    fn empty_candidate_set_is_handled() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 1.0), &[], 3);
        for solver in [
            Solver::Greedy,
            Solver::Anneal { iterations: 100, seed: 0 },
            Solver::Random { seed: 0 },
            Solver::Exhaustive,
        ] {
            let r = solver.solve(&p);
            assert!(r.selected.is_empty());
            assert!(!r.satisfied);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Greedy must satisfy every instance the full pool can satisfy.
            #[test]
            fn greedy_satisfies_whenever_feasible(
                seed in 0u64..30,
                count in 5usize..60,
                fraction in 0.1..1.0f64,
            ) {
                use iobt_types::catalog::PopulationBuilder;
                let area = Rect::square(500.0);
                let catalog = PopulationBuilder::new(area).count(count).build(seed);
                let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
                let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
                    .area(area)
                    .require_modality(SensorKind::Visual)
                    .coverage_fraction(fraction)
                    .min_trust(0.3)
                    .build();
                let mut problem = CompositionProblem::from_mission(&mission, &specs, 4);
                // Scale the requirement to feasibility.
                problem.required_fraction = problem.max_achievable_fraction() * fraction;
                let r = Solver::Greedy.solve(&problem);
                prop_assert!(r.satisfied, "coverage {} < required {}", r.coverage, problem.required_fraction);
                // Selection indices are valid, sorted, and unique.
                prop_assert!(r.selected.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(r.selected.iter().all(|&i| i < problem.candidates.len()));
            }

            /// Annealing never produces an unsatisfied result when greedy
            /// satisfied (it starts from the greedy seed and only keeps
            /// improvements on the penalty-first score).
            #[test]
            fn anneal_keeps_feasibility(seed in 0u64..10) {
                use iobt_types::catalog::PopulationBuilder;
                let area = Rect::square(400.0);
                let catalog = PopulationBuilder::new(area).count(40).build(seed);
                let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
                let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
                    .area(area)
                    .require_modality(SensorKind::Visual)
                    .min_trust(0.3)
                    .build();
                let mut problem = CompositionProblem::from_mission(&mission, &specs, 4);
                problem.required_fraction = problem.max_achievable_fraction() * 0.8;
                let g = Solver::Greedy.solve(&problem);
                let a = Solver::Anneal { iterations: 500, seed }.solve(&problem);
                prop_assert!(!g.satisfied || a.satisfied);
                prop_assert!(a.cost <= g.cost + 1e-9);
            }
        }
    }

    #[test]
    fn solvers_are_deterministic() {
        let p = CompositionProblem::from_mission(&grid_mission(1, 0.9), &corner_nodes(), 4);
        let a = Solver::Anneal { iterations: 300, seed: 7 }.solve(&p);
        let b = Solver::Anneal { iterations: 300, seed: 7 }.solve(&p);
        assert_eq!(a.selected, b.selected);
    }
}
