//! The typed mission-failure taxonomy.
//!
//! A mission that leaves the scheduler without finishing carries a
//! [`MissionError`] — what failed ([`MissionErrorKind`]), whether the
//! scheduler considered it transient (`retryable`), and how many
//! attempts were burned before quarantine. This replaces the bare
//! error *string* the fleet used to expose: supervision decisions
//! (retry vs. quarantine, alerting, re-submission) need a stable enum
//! to branch on, not substring matching.

use std::fmt;

use iobt_ckpt::CkptError;

/// What ended a quarantined mission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MissionErrorKind {
    /// The mission's own code panicked mid-slice; the worker caught the
    /// unwind and survived.
    Panic,
    /// Serialising mission state, or writing the checkpoint to the
    /// store, failed.
    CheckpointSave,
    /// Reading back an evicted mission's checkpoint failed (store open,
    /// directory scan, or read error).
    CheckpointLoad,
    /// The checkpoint was read but the mission could not be rebuilt
    /// from it (decode failure or a guard mismatch).
    Resume,
    /// An evicted mission had no good checkpoint left on disk — every
    /// candidate was corrupt, torn, or missing.
    NoCheckpoint,
    /// The mission exceeded its per-mission slice budget
    /// (see [`FleetBuilder::slice_budget`](crate::FleetBuilder::slice_budget)).
    DeadlineExceeded,
}

impl MissionErrorKind {
    /// Stable snake-case name used in `fleet_quarantine` trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            MissionErrorKind::Panic => "panic",
            MissionErrorKind::CheckpointSave => "checkpoint_save",
            MissionErrorKind::CheckpointLoad => "checkpoint_load",
            MissionErrorKind::Resume => "resume",
            MissionErrorKind::NoCheckpoint => "no_checkpoint",
            MissionErrorKind::DeadlineExceeded => "deadline_exceeded",
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(MissionErrorKind::Panic),
            1 => Some(MissionErrorKind::CheckpointSave),
            2 => Some(MissionErrorKind::CheckpointLoad),
            3 => Some(MissionErrorKind::Resume),
            4 => Some(MissionErrorKind::NoCheckpoint),
            5 => Some(MissionErrorKind::DeadlineExceeded),
            _ => None,
        }
    }

    pub(crate) fn tag(self) -> u8 {
        match self {
            MissionErrorKind::Panic => 0,
            MissionErrorKind::CheckpointSave => 1,
            MissionErrorKind::CheckpointLoad => 2,
            MissionErrorKind::Resume => 3,
            MissionErrorKind::NoCheckpoint => 4,
            MissionErrorKind::DeadlineExceeded => 5,
        }
    }
}

/// Why a mission was quarantined, exposed via
/// [`Fleet::error`](crate::Fleet::error).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct MissionError {
    /// The failure class.
    pub kind: MissionErrorKind,
    /// Whether the scheduler classified the underlying fault as
    /// transient. A quarantined mission with `retryable: true` exhausted
    /// its retry budget on a fault that might clear (e.g. ENOSPC);
    /// `retryable: false` marks faults retrying cannot fix (panic,
    /// corrupt checkpoint, blown deadline).
    pub retryable: bool,
    /// Attempts consumed before quarantine (1 for non-retryable
    /// faults that quarantine on first occurrence).
    pub attempts: u32,
    /// Human-readable detail: the panic payload, the IO error chain, or
    /// the decode failure.
    pub detail: String,
}

impl MissionError {
    pub(crate) fn new(kind: MissionErrorKind, retryable: bool, detail: String) -> Self {
        MissionError {
            kind,
            retryable,
            attempts: 1,
            detail,
        }
    }
}

impl fmt::Display for MissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} attempt(s){}: {}",
            self.kind.as_str(),
            self.attempts,
            if self.retryable {
                " (retryable fault, budget exhausted)"
            } else {
                ""
            },
            self.detail
        )
    }
}

impl std::error::Error for MissionError {}

/// Why [`FleetBuilder::recover`](crate::FleetBuilder::recover) could
/// not rebuild a fleet from its durable manifest.
#[derive(Debug)]
#[non_exhaustive]
pub enum RecoverError {
    /// The builder configuration itself was invalid.
    Config(crate::FleetConfigError),
    /// The checkpoint root holds no fleet manifest — nothing to
    /// recover (the fleet never ran with
    /// [`FleetBuilder::durable_manifest`](crate::FleetBuilder::durable_manifest)
    /// on, or the directory is wrong).
    NoManifest,
    /// The caller re-supplied a different number of scenarios than the
    /// manifest has tickets. Scenarios are provided in ticket order,
    /// one per submitted mission.
    ScenarioCount {
        /// Tickets in the manifest.
        expected: usize,
        /// Scenarios the caller passed.
        got: usize,
    },
    /// A re-supplied scenario does not match the fingerprint recorded
    /// for its ticket — recovering with the wrong scenario would
    /// silently change mission results.
    ScenarioMismatch {
        /// The ticket whose scenario disagreed.
        ticket: u64,
    },
    /// Every manifest generation on disk failed to load; the last
    /// error seen.
    Load(CkptError),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Config(e) => write!(f, "invalid fleet configuration: {e}"),
            RecoverError::NoManifest => {
                write!(f, "no fleet manifest found under the checkpoint root")
            }
            RecoverError::ScenarioCount { expected, got } => write!(
                f,
                "manifest has {expected} tickets but {got} scenarios were supplied"
            ),
            RecoverError::ScenarioMismatch { ticket } => write!(
                f,
                "scenario supplied for ticket m-{ticket:06} does not match the manifest fingerprint"
            ),
            RecoverError::Load(e) => write!(f, "every manifest generation failed to load: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Config(e) => Some(e),
            RecoverError::Load(e) => Some(e),
            _ => None,
        }
    }
}

/// Classifies a checkpoint-store fault: IO-level failures (including
/// torn files surfacing as CRC/truncation on read) are transient from
/// the scheduler's point of view — the store may heal (disk space
/// freed, transient EIO) or a retry re-writes the file. Decode and
/// mismatch errors mean the bytes themselves are wrong for this
/// mission, which no retry fixes.
pub(crate) fn ckpt_fault_is_retryable(e: &CkptError) -> bool {
    !matches!(e, CkptError::Decode(_) | CkptError::Mismatch(_))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_roundtrip() {
        for kind in [
            MissionErrorKind::Panic,
            MissionErrorKind::CheckpointSave,
            MissionErrorKind::CheckpointLoad,
            MissionErrorKind::Resume,
            MissionErrorKind::NoCheckpoint,
            MissionErrorKind::DeadlineExceeded,
        ] {
            assert_eq!(MissionErrorKind::from_tag(kind.tag()), Some(kind));
            assert!(!kind.as_str().is_empty());
        }
        assert_eq!(MissionErrorKind::from_tag(200), None);
    }

    #[test]
    fn display_carries_kind_attempts_and_detail() {
        let mut e = MissionError::new(
            MissionErrorKind::CheckpointSave,
            true,
            "disk full".to_string(),
        );
        e.attempts = 4;
        let s = e.to_string();
        assert!(s.contains("checkpoint_save"));
        assert!(s.contains("4 attempt"));
        assert!(s.contains("disk full"));
    }
}
