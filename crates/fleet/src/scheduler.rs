//! The fleet scheduler: admission queue, `std::thread::scope` worker
//! pool, per-mission state machine, and checkpoint-eviction.
//!
//! # Scheduling model
//!
//! Missions are `Send`-able *data* (scenario + portable config +
//! checkpoint bytes); live [`MissionRunner`]s are deliberately
//! thread-bound and never cross a thread. A mission moves between
//! workers only through its serialized checkpoint — which is exactly the
//! eviction path, so migration and crash recovery are one mechanism.
//!
//! Each worker is admission-first: it prefers the global queue (fresh
//! and evicted tickets) over its own residents, so every submitted
//! mission keeps making progress instead of the first `max_resident`
//! running to completion while the rest wait. When a worker's resident
//! count exceeds its threshold, the least-recently-sliced resident is
//! checkpointed to disk and its ticket returned to the global queue for
//! any worker to resume.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use iobt_ckpt::CheckpointStore;
use iobt_core::{
    EndStateDigest, MissionReport, MissionRunner, PortableRunConfig, RunConfig, Scenario,
    StepOutcome,
};
use iobt_obs::{Recorder, TraceEvent};

use crate::config::FleetConfig;
use crate::{FleetBuilder, MissionStatus, MissionTicket, SubmitError};

/// Locks a mutex, recovering the data on poisoning: a worker that
/// panicked mid-slice fails its own mission, but must not take the whole
/// fleet's bookkeeping down with it.
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A scheduler event observed by a worker, buffered per mission and
/// recorded into the fleet recorder after the pool joins (in canonical
/// ticket order — the same post-join pattern the portfolio solver uses
/// to keep multi-threaded traces deterministic in layout).
#[derive(Debug, Clone, Copy)]
enum SliceEvent {
    Slice { from_window: u64, windows: u64 },
    Evict { window: u64, bytes: u64 },
    Resume { window: u64 },
    Complete { windows: u64, repairs: u64 },
}

/// Everything the fleet knows about one submitted mission.
struct Slot {
    scenario: Scenario,
    portable: PortableRunConfig,
    seed: u64,
    window_us: u64,
    total_windows: u64,
    status: MissionStatus,
    /// Window boundary of the newest on-disk checkpoint while evicted.
    ckpt_window: Option<u64>,
    report: Option<MissionReport>,
    metrics_fp: Option<u64>,
    error: Option<String>,
    events: Vec<SliceEvent>,
}

// Missions must cross worker threads as plain data; this is the
// compile-time proof that a `Slot` (scenario, portable config, report,
// buffered events) contains nothing thread-bound.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Slot>();
};

/// Shared state for one `drain` run.
struct DrainCtx<'a> {
    cfg: &'a FleetConfig,
    cells: &'a [Mutex<&'a mut Slot>],
    /// Tickets runnable by any worker: fresh admissions and evicted
    /// missions.
    queue: Mutex<VecDeque<u64>>,
    /// Wakes parked workers when the queue grows or the drain finishes.
    cv: Condvar,
    /// Missions not yet `Done`/`Failed`.
    remaining: AtomicUsize,
    /// Wall-clock slice latencies, milliseconds. Reporting only — never
    /// feeds back into scheduling decisions or results.
    latencies: Mutex<Vec<f64>>,
}

/// Aggregate outcome of one [`Fleet::drain`] call.
///
/// `wall_s` and the slice-latency quantiles are wall-clock measurements:
/// reporting only, never part of any determinism contract (mirroring
/// `WallClockReport` in `iobt-core`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct FleetSummary {
    /// Missions this drain started with (non-terminal at entry).
    pub submitted: usize,
    /// Missions that finished every window.
    pub completed: usize,
    /// Missions that failed in checkpoint save or resume.
    pub failed: usize,
    /// Scheduler quanta executed.
    pub slices: u64,
    /// Utility windows executed across all missions.
    pub windows: u64,
    /// Checkpoint-evictions to disk.
    pub evictions: u64,
    /// Resumes from an on-disk checkpoint.
    pub resumes: u64,
    /// Wall-clock duration of the drain, seconds (reporting only).
    pub wall_s: f64,
    /// Median slice latency, milliseconds (reporting only).
    pub p50_slice_ms: f64,
    /// 99th-percentile slice latency, milliseconds (reporting only).
    pub p99_slice_ms: f64,
}

/// A multi-tenant mission scheduler: submit missions, drain the batch
/// across a worker pool, poll tickets for status and results.
///
/// Built by [`FleetBuilder`]; see the crate docs for an example and the
/// determinism contract.
pub struct Fleet {
    cfg: FleetConfig,
    recorder: Recorder,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("workers", &self.cfg.workers)
            .field("missions", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    pub(crate) fn from_parts(cfg: FleetConfig, recorder: Recorder) -> Self {
        Fleet {
            cfg,
            recorder,
            slots: Vec::new(),
        }
    }

    /// Admits a mission and returns its ticket. The config must not
    /// carry an enabled recorder (recorders are thread-bound); per-
    /// mission metrics come from
    /// [`FleetBuilder::mission_metrics`] instead.
    pub fn submit(
        &mut self,
        scenario: Scenario,
        config: RunConfig,
    ) -> Result<MissionTicket, SubmitError> {
        if config.recorder.is_enabled() {
            return Err(SubmitError::RecorderAttached);
        }
        if scenario.catalog.is_empty() {
            return Err(SubmitError::EmptyCatalog);
        }
        let total_windows =
            (config.duration.as_secs_f64() / config.window.as_secs_f64()).ceil() as u64;
        let window_us = config.window.as_micros();
        let seed = scenario.seed;
        let (portable, _disabled) = config.into_portable();
        let ticket = MissionTicket(self.slots.len() as u64);
        self.slots.push(Slot {
            scenario,
            portable,
            seed,
            window_us,
            total_windows,
            status: MissionStatus::Queued,
            ckpt_window: None,
            report: None,
            metrics_fp: None,
            error: None,
            events: Vec::new(),
        });
        self.recorder.record_at(
            0,
            TraceEvent::FleetAdmit {
                ticket: ticket.0,
                seed,
                windows: total_windows,
            },
        );
        Ok(ticket)
    }

    /// The mission's current lifecycle state, or `None` for a ticket
    /// this fleet never issued.
    pub fn poll(&self, ticket: MissionTicket) -> Option<MissionStatus> {
        self.slots.get(ticket.0 as usize).map(|s| s.status)
    }

    /// The completed mission's full report (`None` until `Done`).
    pub fn report(&self, ticket: MissionTicket) -> Option<&MissionReport> {
        self.slots
            .get(ticket.0 as usize)
            .and_then(|s| s.report.as_ref())
    }

    /// The completed mission's end-state digest (`None` until `Done`).
    pub fn digest(&self, ticket: MissionTicket) -> Option<&EndStateDigest> {
        self.report(ticket).map(|r| &r.digest)
    }

    /// The completed mission's metrics fingerprint (`None` until `Done`,
    /// or when [`FleetBuilder::mission_metrics`] is off).
    pub fn metrics_fingerprint(&self, ticket: MissionTicket) -> Option<u64> {
        self.slots.get(ticket.0 as usize).and_then(|s| s.metrics_fp)
    }

    /// Why a `Failed` mission failed (`None` otherwise).
    pub fn error(&self, ticket: MissionTicket) -> Option<&str> {
        self.slots
            .get(ticket.0 as usize)
            .and_then(|s| s.error.as_deref())
    }

    /// Every ticket this fleet has issued, in submission order.
    pub fn tickets(&self) -> Vec<MissionTicket> {
        (0..self.slots.len() as u64).map(MissionTicket).collect()
    }

    /// Total utility windows the mission will execute (`None` for a
    /// ticket this fleet never issued).
    pub fn total_windows(&self, ticket: MissionTicket) -> Option<u64> {
        self.slots.get(ticket.0 as usize).map(|s| s.total_windows)
    }

    /// Runs every non-terminal mission to completion across the worker
    /// pool and returns the batch summary. Safe to call repeatedly:
    /// missions submitted after a drain are picked up by the next one.
    pub fn drain(&mut self) -> FleetSummary {
        let pending: Vec<u64> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.status.is_terminal())
            .map(|(i, _)| i as u64)
            .collect();
        let submitted = pending.len();
        let start = Instant::now(); // lint: allow(wall-clock) — reporting only; lands in FleetSummary.wall_s, never in a decision or digest
        let mut latencies: Vec<f64> = Vec::new();
        if submitted > 0 {
            let cells: Vec<Mutex<&mut Slot>> = self.slots.iter_mut().map(Mutex::new).collect();
            let ctx = DrainCtx {
                cfg: &self.cfg,
                cells: &cells,
                queue: Mutex::new(pending.iter().copied().collect()),
                cv: Condvar::new(),
                remaining: AtomicUsize::new(submitted),
                latencies: Mutex::new(Vec::new()),
            };
            std::thread::scope(|s| {
                for _ in 0..self.cfg.workers {
                    s.spawn(|| worker_loop(&ctx));
                }
            });
            latencies = ctx.latencies.into_inner().unwrap_or_else(|e| e.into_inner());
        }
        let wall_s = start.elapsed().as_secs_f64();

        // Post-join: fold the workers' buffered scheduler events into
        // the fleet trace in canonical (ticket, mission-chronological)
        // order — the post-join pattern that keeps a multi-threaded
        // trace's layout deterministic — and total up the summary.
        let mut summary = FleetSummary {
            submitted,
            wall_s,
            ..FleetSummary::default()
        };
        let recorder = self.recorder.clone();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let ticket = i as u64;
            let window_us = slot.window_us;
            for ev in std::mem::take(&mut slot.events) {
                // Timestamps are the mission's own sim-time window
                // boundaries (the fleet has no clock of its own).
                let (t_us, event) = match ev {
                    SliceEvent::Slice { from_window, windows } => {
                        summary.slices += 1;
                        summary.windows += windows;
                        (
                            (from_window + windows) * window_us,
                            TraceEvent::FleetSlice { ticket, from_window, windows },
                        )
                    }
                    SliceEvent::Evict { window, bytes } => {
                        summary.evictions += 1;
                        (window * window_us, TraceEvent::FleetEvict { ticket, window, bytes })
                    }
                    SliceEvent::Resume { window } => {
                        summary.resumes += 1;
                        (window * window_us, TraceEvent::FleetResume { ticket, window })
                    }
                    SliceEvent::Complete { windows, repairs } => (
                        windows * window_us,
                        TraceEvent::FleetComplete { ticket, windows, repairs },
                    ),
                };
                recorder.record_at(t_us, event);
            }
        }
        for &i in &pending {
            match self.slots[i as usize].status {
                MissionStatus::Done => summary.completed += 1,
                MissionStatus::Failed => summary.failed += 1,
                _ => {}
            }
        }
        recorder.flush();
        latencies.sort_by(f64::total_cmp);
        summary.p50_slice_ms = quantile(&latencies, 0.50);
        summary.p99_slice_ms = quantile(&latencies, 0.99);
        summary
    }
}

/// Nearest-rank quantile of an ascending-sorted slice (0.0 when empty).
/// Reporting only — consumed solely by the wall-clock summary fields.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn worker_loop(ctx: &DrainCtx<'_>) {
    let mut resident: VecDeque<u64> = VecDeque::new();
    let mut runners: BTreeMap<u64, (MissionRunner, Recorder)> = BTreeMap::new();
    loop {
        if ctx.remaining.load(Ordering::SeqCst) == 0 {
            break;
        }
        // Admission-first: prefer the global queue so every submitted
        // mission keeps progressing; fall back to our own residents.
        let next = lock(&ctx.queue).pop_front().or_else(|| resident.pop_front());
        match next {
            Some(ticket) => run_slice(ctx, ticket, &mut resident, &mut runners),
            None => {
                // Nothing runnable on this worker. Park until the queue
                // changes; the timeout bounds any missed-notify window.
                let q = lock(&ctx.queue);
                if q.is_empty() && ctx.remaining.load(Ordering::SeqCst) != 0 {
                    let _ = ctx
                        .cv
                        .wait_timeout(q, Duration::from_millis(1))
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

/// Executes one scheduling quantum for `ticket` on this worker:
/// materialize (fresh or resumed) if needed, step up to
/// `quantum_windows` windows, then complete, keep resident, or evict.
fn run_slice(
    ctx: &DrainCtx<'_>,
    ticket: u64,
    resident: &mut VecDeque<u64>,
    runners: &mut BTreeMap<u64, (MissionRunner, Recorder)>,
) {
    let mut guard = lock(&ctx.cells[ticket as usize]);
    let slot: &mut Slot = &mut guard;

    let (mut runner, recorder) = match runners.remove(&ticket) {
        Some(pair) => pair,
        None => match materialize(ctx, slot, ticket) {
            Ok(pair) => pair,
            Err(msg) => {
                fail(ctx, slot, msg);
                return;
            }
        },
    };

    slot.status = MissionStatus::Running;
    let from_window = runner.window_index() as u64;
    let t0 = Instant::now(); // lint: allow(wall-clock) — reporting only; slice latency lands in FleetSummary, never in a decision or digest
    let mut ran = 0u64;
    while ran < u64::from(ctx.cfg.quantum_windows) {
        match runner.step_window() {
            StepOutcome::WindowClosed { .. } => ran += 1,
            // `Finished`, and conservatively any future non-progress
            // outcome (`StepOutcome` is `#[non_exhaustive]`): end the
            // slice rather than spin.
            _ => break,
        }
    }
    lock(&ctx.latencies).push(t0.elapsed().as_secs_f64() * 1_000.0);
    slot.events.push(SliceEvent::Slice { from_window, windows: ran });

    if runner.is_finished() {
        let windows = runner.total_windows() as u64;
        let report = runner.finish();
        slot.events.push(SliceEvent::Complete {
            windows,
            repairs: report.repairs as u64,
        });
        slot.metrics_fp = recorder
            .is_enabled()
            .then(|| recorder.metrics_digest().fingerprint());
        slot.report = Some(report);
        slot.ckpt_window = None;
        slot.status = MissionStatus::Done;
        // The mission's checkpoints are no longer needed; reclaim the
        // disk space (best-effort — a leftover directory is harmless).
        let _ = std::fs::remove_dir_all(mission_dir(ctx.cfg, ticket));
        finish_one(ctx);
        return;
    }

    if ctx.cfg.evict_every_slice {
        evict(ctx, slot, ticket, runner);
        return;
    }

    slot.status = MissionStatus::Idle;
    resident.push_back(ticket);
    runners.insert(ticket, (runner, recorder));
    // Residency cap: checkpoint the least-recently-sliced mission out.
    while resident.len() > ctx.cfg.max_resident {
        let Some(victim) = resident.pop_front() else {
            break;
        };
        let Some((victim_runner, _victim_rec)) = runners.remove(&victim) else {
            continue;
        };
        // Only this worker owns `victim`, so locking its cell while
        // holding `ticket`'s cannot contend with another worker.
        let mut vguard = lock(&ctx.cells[victim as usize]);
        evict(ctx, &mut vguard, victim, victim_runner);
    }
}

/// Builds the mission's runner on this worker: fresh for `Queued`,
/// or resumed from its newest good on-disk checkpoint for `Evicted`.
fn materialize(
    ctx: &DrainCtx<'_>,
    slot: &mut Slot,
    ticket: u64,
) -> Result<(MissionRunner, Recorder), String> {
    let recorder = if ctx.cfg.mission_metrics {
        Recorder::null()
    } else {
        Recorder::disabled()
    };
    let config = slot.portable.clone().into_config(recorder.clone());
    match slot.ckpt_window {
        None => Ok((MissionRunner::new(&slot.scenario, &config), recorder)),
        Some(_) => {
            let store = CheckpointStore::open(mission_dir(ctx.cfg, ticket))
                .map_err(|e| format!("open checkpoint store: {e}"))?;
            let latest = store
                .load_latest_good(slot.seed)
                .map_err(|e| format!("scan checkpoints: {e}"))?;
            let (window, payload) = latest
                .loaded
                .ok_or_else(|| "evicted mission has no good checkpoint on disk".to_string())?;
            let runner = MissionRunner::resume(&slot.scenario, &config, &payload)
                .map_err(|e| format!("resume from window {window}: {e}"))?;
            slot.events.push(SliceEvent::Resume { window });
            Ok((runner, recorder))
        }
    }
}

/// Checkpoints `runner` to the mission's store, drops it, and returns
/// the ticket to the global queue for any worker to resume.
fn evict(ctx: &DrainCtx<'_>, slot: &mut Slot, ticket: u64, runner: MissionRunner) {
    let window = runner.window_index() as u64;
    let payload = match runner.save() {
        Ok(p) => p,
        Err(e) => {
            fail(ctx, slot, format!("checkpoint mission state: {e}"));
            return;
        }
    };
    let saved = CheckpointStore::open(mission_dir(ctx.cfg, ticket))
        .and_then(|store| store.save(slot.seed, window, &payload));
    if let Err(e) = saved {
        fail(ctx, slot, format!("write checkpoint to disk: {e}"));
        return;
    }
    slot.events.push(SliceEvent::Evict {
        window,
        bytes: payload.len() as u64,
    });
    slot.ckpt_window = Some(window);
    slot.status = MissionStatus::Evicted;
    lock(&ctx.queue).push_back(ticket);
    ctx.cv.notify_one();
}

/// Marks a mission `Failed` and accounts for its termination.
fn fail(ctx: &DrainCtx<'_>, slot: &mut Slot, msg: String) {
    slot.error = Some(msg);
    slot.status = MissionStatus::Failed;
    finish_one(ctx);
}

/// One mission reached a terminal state; wake everyone when it was the
/// last.
fn finish_one(ctx: &DrainCtx<'_>) {
    if ctx.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        ctx.cv.notify_all();
    }
}

/// The per-mission checkpoint directory under the fleet's root.
fn mission_dir(cfg: &FleetConfig, ticket: u64) -> std::path::PathBuf {
    cfg.checkpoint_root.join(format!("m-{ticket:06}"))
}

impl Default for Fleet {
    fn default() -> Self {
        // Defaults are always valid; the builder only rejects explicit
        // zeros.
        match FleetBuilder::new().build() {
            Ok(fleet) => fleet,
            Err(_) => unreachable!("default fleet configuration is valid"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_core::persistent_surveillance;
    use iobt_netsim::SimDuration;

    fn quick_config() -> RunConfig {
        RunConfig::builder()
            .duration(SimDuration::from_secs_f64(30.0))
            .window(SimDuration::from_secs_f64(10.0))
            .build()
            .expect("valid run config")
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("iobt-fleet-test-{}-{tag}", std::process::id()))
    }

    #[test]
    fn batch_drains_to_done_with_reports() {
        let root = temp_root("drain");
        let mut fleet = FleetBuilder::new()
            .workers(2)
            .checkpoint_root(&root)
            .build()
            .expect("valid");
        let tickets: Vec<MissionTicket> = (0..4)
            .map(|i| {
                fleet
                    .submit(persistent_surveillance(60, 7 + i), quick_config())
                    .expect("admissible")
            })
            .collect();
        for &t in &tickets {
            assert_eq!(fleet.poll(t), Some(MissionStatus::Queued));
            assert!(fleet.report(t).is_none(), "no report before drain");
        }
        let summary = fleet.drain();
        assert_eq!(summary.submitted, 4);
        assert_eq!(summary.completed, 4);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.windows, 4 * 3, "3 windows each");
        for &t in &tickets {
            assert_eq!(fleet.poll(t), Some(MissionStatus::Done));
            let report = fleet.report(t).expect("report after drain");
            assert_eq!(report.windows.len(), 3);
            assert!(fleet.digest(t).is_some());
            assert!(fleet.metrics_fingerprint(t).is_some());
            assert!(fleet.error(t).is_none());
        }
        // A second drain has nothing to do; a late submission is picked
        // up by the next one.
        assert_eq!(fleet.drain().submitted, 0);
        let late = fleet
            .submit(persistent_surveillance(60, 99), quick_config())
            .expect("admissible");
        let second = fleet.drain();
        assert_eq!(second.submitted, 1);
        assert_eq!(second.completed, 1);
        assert_eq!(fleet.poll(late), Some(MissionStatus::Done));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn forced_eviction_round_trips_every_slice_through_disk() {
        let root = temp_root("evict");
        let mut fleet = FleetBuilder::new()
            .workers(2)
            .evict_every_slice(true)
            .checkpoint_root(&root)
            .build()
            .expect("valid");
        for i in 0..3 {
            fleet
                .submit(persistent_surveillance(60, 11 + i), quick_config())
                .expect("admissible");
        }
        let summary = fleet.drain();
        assert_eq!(summary.completed, 3);
        // 3 windows per mission at quantum 1: evicted after windows 1
        // and 2, resumed twice, finished on the third slice.
        assert_eq!(summary.evictions, 6);
        assert_eq!(summary.resumes, 6);
        assert_eq!(summary.slices, 9);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn submit_rejects_recorders_and_empty_catalogs() {
        let mut fleet = FleetBuilder::new().build().expect("valid");
        let (rec, _ring) = Recorder::memory(16);
        let armed = RunConfig::builder()
            .recorder(rec)
            .build()
            .expect("valid run config");
        assert_eq!(
            fleet.submit(persistent_surveillance(60, 1), armed).err(),
            Some(crate::SubmitError::RecorderAttached)
        );
        let mut empty = persistent_surveillance(60, 1);
        empty.catalog = iobt_core::types::NodeCatalog::new();
        assert_eq!(
            fleet.submit(empty, quick_config()).err(),
            Some(crate::SubmitError::EmptyCatalog)
        );
        // Unknown tickets answer `None` everywhere.
        let stranger = MissionTicket(123);
        assert_eq!(fleet.poll(stranger), None);
        assert!(fleet.report(stranger).is_none());
        assert_eq!(fleet.total_windows(stranger), None);
    }

    #[test]
    fn scheduler_trace_counts_match_the_summary() {
        let root = temp_root("trace");
        let (rec, ring) = Recorder::memory(4096);
        let mut fleet = FleetBuilder::new()
            .workers(2)
            .evict_every_slice(true)
            .recorder(rec.clone())
            .checkpoint_root(&root)
            .build()
            .expect("valid");
        for i in 0..2 {
            fleet
                .submit(persistent_surveillance(60, 21 + i), quick_config())
                .expect("admissible");
        }
        let summary = fleet.drain();
        let records = ring.records();
        let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count() as u64;
        assert_eq!(count("fleet_admit"), 2);
        assert_eq!(count("fleet_slice"), summary.slices);
        assert_eq!(count("fleet_evict"), summary.evictions);
        assert_eq!(count("fleet_resume"), summary.resumes);
        assert_eq!(count("fleet_complete"), 2);
        let d = rec.metrics_digest();
        assert_eq!(d.counter("fleet.admitted"), Some(2));
        assert_eq!(d.counter("fleet.completed"), Some(2));
        assert_eq!(d.counter("fleet.slices"), Some(summary.slices));
        assert_eq!(d.counter("fleet.windows"), Some(summary.windows));
        // Canonical layout: all of ticket 0's post-join events precede
        // ticket 1's.
        let tickets: Vec<u64> = records
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::FleetSlice { ticket, .. }
                | TraceEvent::FleetEvict { ticket, .. }
                | TraceEvent::FleetResume { ticket, .. }
                | TraceEvent::FleetComplete { ticket, .. } => Some(ticket),
                _ => None,
            })
            .collect();
        let mut sorted = tickets.clone();
        sorted.sort_unstable();
        assert_eq!(tickets, sorted, "post-join events are grouped by ticket");
        let _ = std::fs::remove_dir_all(&root);
    }
}
