//! The fleet scheduler: admission queue, `std::thread::scope` worker
//! pool, per-mission state machine, checkpoint-eviction, and the
//! supervision layer (panic isolation, retry/backoff on checkpoint-IO
//! faults, quarantine, deadlines, and whole-fleet crash recovery).
//!
//! # Scheduling model
//!
//! Missions are `Send`-able *data* (scenario + portable config +
//! checkpoint bytes); live [`MissionRunner`]s are deliberately
//! thread-bound and never cross a thread. A mission moves between
//! workers only through its serialized checkpoint — which is exactly the
//! eviction path, so migration and crash recovery are one mechanism.
//!
//! Each worker is admission-first: it prefers the global queue (fresh
//! and evicted tickets) over its own residents, so every submitted
//! mission keeps making progress instead of the first `max_resident`
//! running to completion while the rest wait. When a worker's resident
//! count exceeds its threshold, the least-recently-sliced resident is
//! checkpointed to disk and its ticket returned to the global queue for
//! any worker to resume.
//!
//! # Supervision model
//!
//! Every slice runs under `catch_unwind`: a panicking mission is
//! [`Quarantined`](MissionStatus::Quarantined) with its payload
//! captured, the worker survives, and — because missions share no
//! mutable state — every other mission's digest is bit-identical to a
//! panic-free run. Checkpoint-IO faults are classified by
//! [`MissionError::retryable`]: transient faults retry up to
//! [`FleetBuilder::retry_limit`] times with capped exponential backoff
//! measured in *scheduler slices* (the fleet's only clock — wall time
//! never reaches a scheduling decision, so a faulty run is exactly
//! reproducible); exhausted or non-retryable faults quarantine. With
//! [`FleetBuilder::durable_manifest`] on, every durable state
//! transition is recorded in a checksummed manifest *after* its
//! checkpoint write, and [`Fleet::recover`] rebuilds the whole fleet
//! from the newest good manifest generation.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use iobt_core::{
    EndStateDigest, MissionReport, MissionRunner, PortableRunConfig, RunConfig, Scenario,
    StepOutcome,
};
use iobt_obs::{Recorder, TraceEvent};

use crate::config::FleetConfig;
use crate::error::{ckpt_fault_is_retryable, MissionError, MissionErrorKind, RecoverError};
use crate::manifest::{scenario_fingerprint, ManifestFile, ManifestState, TicketRecord};
use crate::{FleetBuilder, MissionStatus, MissionTicket, SubmitError};

/// Locks a mutex, recovering the data on poisoning: a worker that
/// panicked mid-slice fails its own mission, but must not take the whole
/// fleet's bookkeeping down with it.
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A scheduler event observed by a worker, buffered per mission and
/// recorded into the fleet recorder after the pool joins (in canonical
/// ticket order — the same post-join pattern the portfolio solver uses
/// to keep multi-threaded traces deterministic in layout).
#[derive(Debug, Clone, Copy)]
enum SliceEvent {
    Slice { from_window: u64, windows: u64 },
    Evict { window: u64, bytes: u64 },
    Resume { window: u64 },
    Retry { window: u64, attempt: u64, backoff_slices: u64 },
    Quarantine { window: u64, kind: &'static str, attempts: u64 },
    Complete { windows: u64, repairs: u64 },
}

/// Everything the fleet knows about one submitted mission.
struct Slot {
    scenario: Scenario,
    /// FNV fingerprint of the scenario's `Debug` rendering (scenarios
    /// are not serialisable; the manifest stores this so recovery can
    /// validate re-supplied scenarios).
    scenario_hash: u64,
    portable: PortableRunConfig,
    seed: u64,
    window_us: u64,
    total_windows: u64,
    status: MissionStatus,
    /// Window boundary of the newest on-disk checkpoint while evicted.
    ckpt_window: Option<u64>,
    report: Option<MissionReport>,
    /// End-state digest once `Done`. Held separately from the report so
    /// it survives crash recovery (the full report does not).
    digest: Option<EndStateDigest>,
    metrics_fp: Option<u64>,
    error: Option<MissionError>,
    /// Checkpoint-IO attempts consumed so far.
    retries: u32,
    /// Scheduler slices consumed so far (deadline accounting).
    slices_used: u64,
    events: Vec<SliceEvent>,
}

// Missions must cross worker threads as plain data; this is the
// compile-time proof that a `Slot` (scenario, portable config, report,
// buffered events) contains nothing thread-bound.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Slot>();
};

/// The shared runnable-work pool: `ready` tickets any worker may take
/// now, and `deferred` tickets waiting out a retry backoff (promoted to
/// `ready` when the slice clock reaches their time).
struct QueueState {
    ready: VecDeque<u64>,
    deferred: Vec<(u64, u64)>,
}

/// Moves every deferred ticket whose backoff has elapsed into `ready`.
fn promote_due(q: &mut QueueState, now: u64) {
    let mut i = 0;
    while i < q.deferred.len() {
        if q.deferred[i].0 <= now {
            let (_, ticket) = q.deferred.remove(i);
            q.ready.push_back(ticket);
        } else {
            i += 1;
        }
    }
}

/// Shared state for one `drain` run.
struct DrainCtx<'a> {
    cfg: &'a FleetConfig,
    cells: &'a [Mutex<&'a mut Slot>],
    /// Tickets runnable by any worker: fresh admissions, evicted
    /// missions, and backoff-deferred retries.
    queue: Mutex<QueueState>,
    /// Wakes parked workers when the queue grows or the drain finishes.
    cv: Condvar,
    /// Missions not yet `Done`/`Quarantined`.
    remaining: AtomicUsize,
    /// The fleet's logical clock: total slices executed this drain.
    /// Retry backoff is measured against this — never wall time — so
    /// faulty runs stay deterministic. Fast-forwarded when only
    /// deferred work remains.
    slice_clock: AtomicU64,
    /// Set when `halt_after_slices` trips: workers stop taking work and
    /// unfinished missions stay wherever they are.
    halted: AtomicBool,
    /// Wall-clock slice latencies, milliseconds. Reporting only — never
    /// feeds back into scheduling decisions or results.
    latencies: Mutex<Vec<f64>>,
    /// The durable manifest, when enabled.
    manifest: Option<&'a Mutex<ManifestState>>,
}

/// Aggregate outcome of one [`Fleet::drain`] call.
///
/// `wall_s` and the slice-latency quantiles are wall-clock measurements:
/// reporting only, never part of any determinism contract (mirroring
/// `WallClockReport` in `iobt-core`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct FleetSummary {
    /// Missions this drain started with (non-terminal at entry).
    pub submitted: usize,
    /// Missions that finished every window.
    pub completed: usize,
    /// Missions isolated after a panic, exhausted checkpoint-IO
    /// retries, a blown slice budget, or an unrecoverable checkpoint.
    pub quarantined: usize,
    /// Checkpoint-IO retry attempts across all missions.
    pub retries: u64,
    /// Scheduler quanta executed.
    pub slices: u64,
    /// Utility windows executed across all missions.
    pub windows: u64,
    /// Checkpoint-evictions to disk.
    pub evictions: u64,
    /// Resumes from an on-disk checkpoint.
    pub resumes: u64,
    /// Wall-clock duration of the drain, seconds (reporting only).
    pub wall_s: f64,
    /// Median slice latency, milliseconds (reporting only).
    pub p50_slice_ms: f64,
    /// 99th-percentile slice latency, milliseconds (reporting only).
    pub p99_slice_ms: f64,
}

/// A multi-tenant mission scheduler: submit missions, drain the batch
/// across a worker pool, poll tickets for status and results.
///
/// Built by [`FleetBuilder`]; see the crate docs for an example and the
/// determinism contract.
pub struct Fleet {
    cfg: FleetConfig,
    recorder: Recorder,
    slots: Vec<Slot>,
    /// In-memory mirror of the on-disk ticket table, when durability is
    /// on.
    manifest: Option<Mutex<ManifestState>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("workers", &self.cfg.workers)
            .field("missions", &self.slots.len())
            .finish_non_exhaustive()
    }
}

/// The slot's durable image: what recovery needs to rebuild it.
fn record_of(slot: &Slot) -> TicketRecord {
    TicketRecord {
        scenario_hash: slot.scenario_hash,
        seed: slot.seed,
        window_us: slot.window_us,
        total_windows: slot.total_windows,
        status: slot.status,
        ckpt_window: slot.ckpt_window,
        retries: slot.retries,
        slices_used: slot.slices_used,
        digest: slot.digest.clone(),
        metrics_fp: slot.metrics_fp,
        error: slot.error.clone(),
        portable: slot.portable.clone(),
    }
}

impl Fleet {
    pub(crate) fn from_parts(cfg: FleetConfig, recorder: Recorder) -> Self {
        let manifest = cfg
            .durable_manifest
            .then(|| Mutex::new(ManifestState::open(&cfg.checkpoint_root)));
        Fleet {
            cfg,
            recorder,
            slots: Vec::new(),
            manifest,
        }
    }

    /// Rebuilds this (empty) fleet's ticket table from the newest good
    /// manifest generation under the checkpoint root. Called by
    /// [`FleetBuilder::recover`].
    pub(crate) fn restore_from_manifest(
        &mut self,
        scenarios: Vec<Scenario>,
    ) -> Result<(), RecoverError> {
        let loaded = match ManifestFile::load_latest(&self.cfg.checkpoint_root) {
            Ok(Some(loaded)) => loaded,
            Ok(None) => return Err(RecoverError::NoManifest),
            Err(e) => return Err(RecoverError::Load(e)),
        };
        if loaded.records.len() != scenarios.len() {
            return Err(RecoverError::ScenarioCount {
                expected: loaded.records.len(),
                got: scenarios.len(),
            });
        }
        let mut slots = Vec::with_capacity(scenarios.len());
        for (i, (record, scenario)) in loaded.records.into_iter().zip(scenarios).enumerate() {
            let ticket = i as u64;
            let hash = scenario_fingerprint(&format!("{scenario:?}"));
            if hash != record.scenario_hash {
                return Err(RecoverError::ScenarioMismatch { ticket });
            }
            // Terminal states are final; anything in flight re-enters
            // as `Evicted` (resume from its newest good checkpoint) or
            // `Queued` (deterministic replay from scratch) — either way
            // the completed batch's digests are bit-identical to an
            // uninterrupted run.
            let (status, ckpt_window) = match record.status {
                MissionStatus::Done => (MissionStatus::Done, None),
                MissionStatus::Quarantined => (MissionStatus::Quarantined, None),
                MissionStatus::Queued => (MissionStatus::Queued, None),
                MissionStatus::Running | MissionStatus::Idle | MissionStatus::Evicted => {
                    match record.ckpt_window {
                        Some(window) => (MissionStatus::Evicted, Some(window)),
                        None => (MissionStatus::Queued, None),
                    }
                }
            };
            if !status.is_terminal() {
                self.recorder.record_at(
                    ckpt_window.unwrap_or(0) * record.window_us,
                    TraceEvent::FleetRecover {
                        ticket,
                        window: ckpt_window.unwrap_or(0),
                    },
                );
            }
            slots.push(Slot {
                scenario_hash: record.scenario_hash,
                scenario,
                portable: record.portable,
                seed: record.seed,
                window_us: record.window_us,
                total_windows: record.total_windows,
                status,
                ckpt_window,
                report: None,
                digest: record.digest,
                metrics_fp: record.metrics_fp,
                error: record.error,
                retries: record.retries,
                slices_used: record.slices_used,
                events: Vec::new(),
            });
        }
        self.recorder.flush();
        self.slots = slots;
        if let Some(manifest) = &self.manifest {
            lock(manifest).replace(self.slots.iter().map(record_of).collect());
        }
        Ok(())
    }

    /// Rebuilds a fleet from the durable manifest under `dir` with the
    /// default configuration: the one-call crash-recovery entry point.
    /// Scenarios are re-supplied in ticket order (they are not
    /// serialisable) and validated against the recorded fingerprints;
    /// see [`FleetBuilder::recover`] to recover with custom settings.
    pub fn recover(
        dir: impl Into<std::path::PathBuf>,
        scenarios: Vec<Scenario>,
    ) -> Result<Fleet, RecoverError> {
        FleetBuilder::new().checkpoint_root(dir).recover(scenarios)
    }

    /// Admits a mission and returns its ticket. The config must not
    /// carry an enabled recorder (recorders are thread-bound); per-
    /// mission metrics come from
    /// [`FleetBuilder::mission_metrics`] instead. Sheds with
    /// [`SubmitError::QueueFull`] when the fleet already holds
    /// [`FleetBuilder::max_queued`] non-terminal missions.
    pub fn submit(
        &mut self,
        scenario: Scenario,
        config: RunConfig,
    ) -> Result<MissionTicket, SubmitError> {
        if config.recorder.is_enabled() {
            return Err(SubmitError::RecorderAttached);
        }
        if scenario.catalog.is_empty() {
            return Err(SubmitError::EmptyCatalog);
        }
        if self.cfg.max_queued > 0 {
            let queued = self.slots.iter().filter(|s| !s.status.is_terminal()).count();
            if queued >= self.cfg.max_queued {
                self.recorder.record_at(
                    0,
                    TraceEvent::FleetShed {
                        ticket: self.slots.len() as u64,
                        queued: queued as u64,
                    },
                );
                return Err(SubmitError::QueueFull { queued });
            }
        }
        let total_windows =
            (config.duration.as_secs_f64() / config.window.as_secs_f64()).ceil() as u64;
        let window_us = config.window.as_micros();
        let seed = scenario.seed;
        let (portable, _disabled) = config.into_portable();
        let ticket = MissionTicket(self.slots.len() as u64);
        let scenario_hash = scenario_fingerprint(&format!("{scenario:?}"));
        self.slots.push(Slot {
            scenario,
            scenario_hash,
            portable,
            seed,
            window_us,
            total_windows,
            status: MissionStatus::Queued,
            ckpt_window: None,
            report: None,
            digest: None,
            metrics_fp: None,
            error: None,
            retries: 0,
            slices_used: 0,
            events: Vec::new(),
        });
        if let Some(manifest) = &self.manifest {
            let record = record_of(&self.slots[ticket.0 as usize]);
            lock(manifest).update(ticket.0, record);
        }
        self.recorder.record_at(
            0,
            TraceEvent::FleetAdmit {
                ticket: ticket.0,
                seed,
                windows: total_windows,
            },
        );
        Ok(ticket)
    }

    /// The mission's current lifecycle state, or `None` for a ticket
    /// this fleet never issued.
    pub fn poll(&self, ticket: MissionTicket) -> Option<MissionStatus> {
        self.slots.get(ticket.0 as usize).map(|s| s.status)
    }

    /// The completed mission's full report (`None` until `Done`, and
    /// `None` after crash recovery — only the digest and metrics
    /// fingerprint survive the manifest).
    pub fn report(&self, ticket: MissionTicket) -> Option<&MissionReport> {
        self.slots
            .get(ticket.0 as usize)
            .and_then(|s| s.report.as_ref())
    }

    /// The completed mission's end-state digest (`None` until `Done`).
    pub fn digest(&self, ticket: MissionTicket) -> Option<&EndStateDigest> {
        self.slots
            .get(ticket.0 as usize)
            .and_then(|s| s.digest.as_ref())
    }

    /// The completed mission's metrics fingerprint (`None` until `Done`,
    /// or when [`FleetBuilder::mission_metrics`] is off).
    pub fn metrics_fingerprint(&self, ticket: MissionTicket) -> Option<u64> {
        self.slots.get(ticket.0 as usize).and_then(|s| s.metrics_fp)
    }

    /// Why a [`Quarantined`](MissionStatus::Quarantined) mission was
    /// isolated (`None` otherwise).
    pub fn error(&self, ticket: MissionTicket) -> Option<&MissionError> {
        self.slots
            .get(ticket.0 as usize)
            .and_then(|s| s.error.as_ref())
    }

    /// Every ticket this fleet has issued, in submission order.
    pub fn tickets(&self) -> Vec<MissionTicket> {
        (0..self.slots.len() as u64).map(MissionTicket).collect()
    }

    /// Total utility windows the mission will execute (`None` for a
    /// ticket this fleet never issued).
    pub fn total_windows(&self, ticket: MissionTicket) -> Option<u64> {
        self.slots.get(ticket.0 as usize).map(|s| s.total_windows)
    }

    /// Runs every non-terminal mission to completion across the worker
    /// pool and returns the batch summary. Safe to call repeatedly:
    /// missions submitted after a drain are picked up by the next one,
    /// and a drain stopped early by [`FleetBuilder::halt_after_slices`]
    /// leaves unfinished missions resumable by the next drain (or by
    /// [`Fleet::recover`] in a new process).
    pub fn drain(&mut self) -> FleetSummary {
        let pending: Vec<u64> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.status.is_terminal())
            .map(|(i, _)| i as u64)
            .collect();
        let submitted = pending.len();
        let start = Instant::now(); // lint: allow(wall-clock) — reporting only; lands in FleetSummary.wall_s, never in a decision or digest
        let mut latencies: Vec<f64> = Vec::new();
        if submitted > 0 {
            let manifest = self.manifest.as_ref();
            let cells: Vec<Mutex<&mut Slot>> = self.slots.iter_mut().map(Mutex::new).collect();
            let ctx = DrainCtx {
                cfg: &self.cfg,
                cells: &cells,
                queue: Mutex::new(QueueState {
                    ready: pending.iter().copied().collect(),
                    deferred: Vec::new(),
                }),
                cv: Condvar::new(),
                remaining: AtomicUsize::new(submitted),
                slice_clock: AtomicU64::new(0),
                halted: AtomicBool::new(false),
                latencies: Mutex::new(Vec::new()),
                manifest,
            };
            std::thread::scope(|s| {
                for _ in 0..self.cfg.workers {
                    s.spawn(|| worker_loop(&ctx));
                }
            });
            latencies = ctx.latencies.into_inner().unwrap_or_else(|e| e.into_inner());
        }
        let wall_s = start.elapsed().as_secs_f64();

        // Post-join: fold the workers' buffered scheduler events into
        // the fleet trace in canonical (ticket, mission-chronological)
        // order — the post-join pattern that keeps a multi-threaded
        // trace's layout deterministic — and total up the summary.
        let mut summary = FleetSummary {
            submitted,
            wall_s,
            ..FleetSummary::default()
        };
        let recorder = self.recorder.clone();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let ticket = i as u64;
            let window_us = slot.window_us;
            for ev in std::mem::take(&mut slot.events) {
                // Timestamps are the mission's own sim-time window
                // boundaries (the fleet has no clock of its own).
                let (t_us, event) = match ev {
                    SliceEvent::Slice { from_window, windows } => {
                        summary.slices += 1;
                        summary.windows += windows;
                        (
                            (from_window + windows) * window_us,
                            TraceEvent::FleetSlice { ticket, from_window, windows },
                        )
                    }
                    SliceEvent::Evict { window, bytes } => {
                        summary.evictions += 1;
                        (window * window_us, TraceEvent::FleetEvict { ticket, window, bytes })
                    }
                    SliceEvent::Resume { window } => {
                        summary.resumes += 1;
                        (window * window_us, TraceEvent::FleetResume { ticket, window })
                    }
                    SliceEvent::Retry { window, attempt, backoff_slices } => {
                        summary.retries += 1;
                        (
                            window * window_us,
                            TraceEvent::FleetRetry { ticket, window, attempt, backoff_slices },
                        )
                    }
                    SliceEvent::Quarantine { window, kind, attempts } => (
                        window * window_us,
                        TraceEvent::FleetQuarantine { ticket, kind, attempts },
                    ),
                    SliceEvent::Complete { windows, repairs } => (
                        windows * window_us,
                        TraceEvent::FleetComplete { ticket, windows, repairs },
                    ),
                };
                recorder.record_at(t_us, event);
            }
        }
        for &i in &pending {
            match self.slots[i as usize].status {
                MissionStatus::Done => summary.completed += 1,
                MissionStatus::Quarantined => summary.quarantined += 1,
                _ => {}
            }
        }
        recorder.flush();
        latencies.sort_by(f64::total_cmp);
        summary.p50_slice_ms = quantile(&latencies, 0.50);
        summary.p99_slice_ms = quantile(&latencies, 0.99);
        summary
    }
}

/// Nearest-rank quantile of an ascending-sorted slice (0.0 when empty).
/// Reporting only — consumed solely by the wall-clock summary fields.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn worker_loop(ctx: &DrainCtx<'_>) {
    let mut resident: VecDeque<u64> = VecDeque::new();
    let mut runners: BTreeMap<u64, (MissionRunner, Recorder)> = BTreeMap::new();
    loop {
        if ctx.remaining.load(Ordering::SeqCst) == 0 || ctx.halted.load(Ordering::SeqCst) {
            break;
        }
        // Admission-first: prefer the global queue so every submitted
        // mission keeps progressing; fall back to our own residents.
        let next = {
            let mut q = lock(&ctx.queue);
            promote_due(&mut q, ctx.slice_clock.load(Ordering::SeqCst));
            q.ready.pop_front()
        }
        .or_else(|| resident.pop_front());
        match next {
            Some(ticket) => run_slice(ctx, ticket, &mut resident, &mut runners),
            None => {
                let mut q = lock(&ctx.queue);
                if !q.ready.is_empty() {
                    continue;
                }
                if !q.deferred.is_empty() {
                    // Only backoff-deferred work is left anywhere this
                    // worker can see: fast-forward the slice clock to
                    // the earliest due time instead of spinning.
                    // Backoff paces retries relative to fleet progress;
                    // when there is no other progress to wait behind,
                    // waiting has no meaning — and the clock is never
                    // digest-visible.
                    let due = q.deferred.iter().map(|&(at, _)| at).min().unwrap_or(0);
                    ctx.slice_clock.fetch_max(due, Ordering::SeqCst);
                    promote_due(&mut q, ctx.slice_clock.load(Ordering::SeqCst));
                    ctx.cv.notify_all();
                } else if ctx.remaining.load(Ordering::SeqCst) != 0
                    && !ctx.halted.load(Ordering::SeqCst)
                {
                    // Nothing runnable on this worker. Park until
                    // notified (evictions, retries, and completion all
                    // notify); the long timeout is only a liveness
                    // backstop against a lost wakeup, not a poll
                    // interval.
                    let _ = ctx
                        .cv
                        .wait_timeout(q, Duration::from_millis(100))
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

/// How a slice left its mission, as seen by `run_slice`'s unwind guard.
/// The runner is boxed so the settled arm doesn't pay for the largest
/// variant.
enum SliceOutcome {
    /// The mission stays materialized on this worker.
    Resident(Box<(MissionRunner, Recorder)>),
    /// The mission completed, evicted, deferred, or quarantined; no
    /// runner survives on this worker.
    Settled,
}

/// A classified fault on the slice path, before retry accounting.
struct Fault {
    kind: MissionErrorKind,
    retryable: bool,
    detail: String,
}

/// Executes one scheduling quantum for `ticket` on this worker under an
/// unwind guard: a panic anywhere in materialization, stepping, or
/// completion quarantines *this* mission and leaves the worker — and
/// every other mission — untouched.
fn run_slice(
    ctx: &DrainCtx<'_>,
    ticket: u64,
    resident: &mut VecDeque<u64>,
    runners: &mut BTreeMap<u64, (MissionRunner, Recorder)>,
) {
    let mut guard = lock(&ctx.cells[ticket as usize]);
    let slot: &mut Slot = &mut guard;
    let existing = runners.remove(&ticket);
    // The cell guard is held *outside* the unwind boundary, so a panic
    // can never poison the slot's mutex.
    let outcome = catch_unwind(AssertUnwindSafe(|| slice_body(ctx, slot, ticket, existing)));
    match outcome {
        Ok(SliceOutcome::Resident(pair)) => {
            slot.status = MissionStatus::Idle;
            resident.push_back(ticket);
            runners.insert(ticket, *pair);
            drop(guard);
            enforce_residency(ctx, resident, runners);
        }
        Ok(SliceOutcome::Settled) => {}
        Err(payload) => {
            let error = MissionError::new(MissionErrorKind::Panic, false, panic_detail(payload));
            quarantine(ctx, slot, ticket, error);
        }
    }
}

/// The fallible/panicky part of a slice: materialize (fresh or
/// resumed), step up to `quantum_windows` windows, then complete, keep
/// resident, or evict.
fn slice_body(
    ctx: &DrainCtx<'_>,
    slot: &mut Slot,
    ticket: u64,
    existing: Option<(MissionRunner, Recorder)>,
) -> SliceOutcome {
    let (mut runner, recorder) = match existing {
        Some(pair) => pair,
        None => match materialize(ctx, slot, ticket) {
            Ok(pair) => pair,
            Err(fault) => {
                mission_fault(ctx, slot, ticket, fault);
                return SliceOutcome::Settled;
            }
        },
    };

    slot.status = MissionStatus::Running;
    let from_window = runner.window_index() as u64;
    let t0 = Instant::now(); // lint: allow(wall-clock) — reporting only; slice latency lands in FleetSummary, never in a decision or digest
    let mut ran = 0u64;
    while ran < u64::from(ctx.cfg.quantum_windows) {
        if let Some((target, window)) = ctx.cfg.inject_panic {
            if target == ticket && runner.window_index() as u64 == window {
                // Deliberate chaos injection behind the test-only
                // inject_panic knob; the supervision layer under test
                // catches this unwind.
                panic!("injected panic in mission m-{ticket:06} at window {window}");
            }
        }
        match runner.step_window() {
            StepOutcome::WindowClosed { .. } => ran += 1,
            // `Finished`, and conservatively any future non-progress
            // outcome (`StepOutcome` is `#[non_exhaustive]`): end the
            // slice rather than spin.
            _ => break,
        }
    }
    lock(&ctx.latencies).push(t0.elapsed().as_secs_f64() * 1_000.0);
    slot.events.push(SliceEvent::Slice { from_window, windows: ran });
    slot.slices_used += 1;
    tick_clock(ctx);

    if runner.is_finished() {
        let windows = runner.total_windows() as u64;
        let report = runner.finish();
        slot.events.push(SliceEvent::Complete {
            windows,
            repairs: report.repairs as u64,
        });
        slot.metrics_fp = recorder
            .is_enabled()
            .then(|| recorder.metrics_digest().fingerprint());
        slot.digest = Some(report.digest.clone());
        slot.report = Some(report);
        slot.ckpt_window = None;
        slot.status = MissionStatus::Done;
        // The mission's checkpoints are no longer needed; reclaim the
        // disk space (best-effort — a leftover directory is harmless).
        ctx.cfg.store.clear(ticket);
        persist_slot(ctx, ticket, slot);
        finish_one(ctx);
        return SliceOutcome::Settled;
    }

    if let Some(budget) = ctx.cfg.slice_budget {
        if slot.slices_used >= budget {
            let attempts = slot.retries + 1;
            drop(runner);
            quarantine(
                ctx,
                slot,
                ticket,
                MissionError {
                    kind: MissionErrorKind::DeadlineExceeded,
                    retryable: false,
                    attempts,
                    detail: format!(
                        "mission still at window {} of {} after {budget} slices",
                        from_window + ran,
                        slot.total_windows
                    ),
                },
            );
            return SliceOutcome::Settled;
        }
    }

    if ctx.cfg.evict_every_slice {
        match evict(ctx, slot, ticket, runner, recorder) {
            Some(pair) => SliceOutcome::Resident(Box::new(pair)),
            None => SliceOutcome::Settled,
        }
    } else {
        SliceOutcome::Resident(Box::new((runner, recorder)))
    }
}

/// Advances the global slice clock and trips the halt latch when the
/// configured kill point is reached.
fn tick_clock(ctx: &DrainCtx<'_>) {
    let now = ctx.slice_clock.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(halt) = ctx.cfg.halt_after_slices {
        if now >= halt && !ctx.halted.swap(true, Ordering::SeqCst) {
            ctx.cv.notify_all();
        }
    }
}

/// Residency cap: checkpoint the least-recently-sliced missions out
/// until this worker is back under its threshold.
fn enforce_residency(
    ctx: &DrainCtx<'_>,
    resident: &mut VecDeque<u64>,
    runners: &mut BTreeMap<u64, (MissionRunner, Recorder)>,
) {
    while resident.len() > ctx.cfg.max_resident {
        let Some(victim) = resident.pop_front() else {
            break;
        };
        let Some((victim_runner, victim_rec)) = runners.remove(&victim) else {
            continue;
        };
        // Only this worker owns `victim`, so locking its cell here
        // cannot contend with another worker.
        let mut vguard = lock(&ctx.cells[victim as usize]);
        if let Some(pair) = evict(ctx, &mut vguard, victim, victim_runner, victim_rec) {
            // The checkpoint write failed retryably: keep the runner
            // resident (dropping it would strand live state) and stop
            // evicting this round; the next slice retries the save.
            vguard.status = MissionStatus::Idle;
            resident.push_back(victim);
            runners.insert(victim, pair);
            break;
        }
    }
}

/// Builds the mission's runner on this worker: fresh for `Queued`,
/// or resumed from its newest good on-disk checkpoint for `Evicted`.
fn materialize(
    ctx: &DrainCtx<'_>,
    slot: &mut Slot,
    ticket: u64,
) -> Result<(MissionRunner, Recorder), Fault> {
    let recorder = if ctx.cfg.mission_metrics {
        Recorder::null()
    } else {
        Recorder::disabled()
    };
    let config = slot.portable.clone().into_config(recorder.clone());
    match slot.ckpt_window {
        None => Ok((MissionRunner::new(&slot.scenario, &config), recorder)),
        Some(_) => {
            let latest = ctx
                .cfg
                .store
                .load_latest(ticket, slot.seed)
                .map_err(|e| Fault {
                    kind: MissionErrorKind::CheckpointLoad,
                    retryable: ckpt_fault_is_retryable(&e),
                    detail: format!("scan checkpoints: {e}"),
                })?;
            let (window, payload) = latest.ok_or_else(|| Fault {
                kind: MissionErrorKind::NoCheckpoint,
                retryable: false,
                detail: "evicted mission has no good checkpoint on disk".to_string(),
            })?;
            let runner =
                MissionRunner::resume(&slot.scenario, &config, &payload).map_err(|e| Fault {
                    kind: MissionErrorKind::Resume,
                    retryable: ckpt_fault_is_retryable(&e),
                    detail: format!("resume from window {window}: {e}"),
                })?;
            slot.events.push(SliceEvent::Resume { window });
            Ok((runner, recorder))
        }
    }
}

/// Backoff before attempt `attempts + 1`, in scheduler slices: capped
/// exponential on the attempt count — pure arithmetic, no clock, no
/// jitter, so faulty runs replay exactly.
fn backoff_for(cfg: &FleetConfig, attempts: u32) -> u64 {
    let exp = attempts.saturating_sub(1).min(32);
    cfg.retry_backoff_base
        .checked_shl(exp)
        .unwrap_or(u64::MAX)
        .min(cfg.retry_backoff_cap)
}

/// Supervises a classified fault on a mission with no live runner
/// (materialization failed): retryable faults within budget are
/// backoff-deferred; everything else quarantines.
fn mission_fault(ctx: &DrainCtx<'_>, slot: &mut Slot, ticket: u64, fault: Fault) {
    let attempts = slot.retries + 1;
    if fault.retryable && attempts < ctx.cfg.retry_limit {
        slot.retries = attempts;
        let backoff = backoff_for(ctx.cfg, attempts);
        slot.events.push(SliceEvent::Retry {
            window: slot.ckpt_window.unwrap_or(0),
            attempt: u64::from(attempts),
            backoff_slices: backoff,
        });
        persist_slot(ctx, ticket, slot);
        let ready_at = ctx.slice_clock.load(Ordering::SeqCst) + backoff;
        lock(&ctx.queue).deferred.push((ready_at, ticket));
        ctx.cv.notify_all();
    } else {
        quarantine(
            ctx,
            slot,
            ticket,
            MissionError {
                kind: fault.kind,
                retryable: fault.retryable,
                attempts,
                detail: fault.detail,
            },
        );
    }
}

/// Checkpoints `runner` to the mission's store, drops it, and returns
/// the ticket to the global queue for any worker to resume. On a
/// retryable store fault within budget, hands the runner back to the
/// caller (`Some`) so the mission stays resident and retries the save
/// on its next slice; otherwise quarantines and returns `None`.
fn evict(
    ctx: &DrainCtx<'_>,
    slot: &mut Slot,
    ticket: u64,
    runner: MissionRunner,
    recorder: Recorder,
) -> Option<(MissionRunner, Recorder)> {
    let window = runner.window_index() as u64;
    let payload = match runner.save() {
        Ok(p) => p,
        Err(e) => {
            // Serialization failure is a bug in mission state, not a
            // storage fault; retrying cannot fix it.
            let attempts = slot.retries + 1;
            quarantine(
                ctx,
                slot,
                ticket,
                MissionError {
                    kind: MissionErrorKind::CheckpointSave,
                    retryable: false,
                    attempts,
                    detail: format!("serialize mission state: {e}"),
                },
            );
            return None;
        }
    };
    match ctx.cfg.store.save(ticket, slot.seed, window, &payload) {
        Ok(()) => {
            slot.events.push(SliceEvent::Evict {
                window,
                bytes: payload.len() as u64,
            });
            slot.ckpt_window = Some(window);
            slot.status = MissionStatus::Evicted;
            persist_slot(ctx, ticket, slot);
            lock(&ctx.queue).ready.push_back(ticket);
            ctx.cv.notify_one();
            None
        }
        Err(e) => {
            let attempts = slot.retries + 1;
            let retryable = ckpt_fault_is_retryable(&e);
            if retryable && attempts < ctx.cfg.retry_limit {
                slot.retries = attempts;
                // The mission stays resident with its live runner, so
                // the retry happens at its next natural slice — no
                // deferral needed (backoff_slices: 0 in the event).
                slot.events.push(SliceEvent::Retry {
                    window,
                    attempt: u64::from(attempts),
                    backoff_slices: 0,
                });
                persist_slot(ctx, ticket, slot);
                Some((runner, recorder))
            } else {
                quarantine(
                    ctx,
                    slot,
                    ticket,
                    MissionError {
                        kind: MissionErrorKind::CheckpointSave,
                        retryable,
                        attempts,
                        detail: format!("write checkpoint: {e}"),
                    },
                );
                None
            }
        }
    }
}

/// Isolates a mission terminally: records the typed error, marks the
/// slot `Quarantined`, persists the transition, and accounts for the
/// termination. Every other mission is unaffected.
fn quarantine(ctx: &DrainCtx<'_>, slot: &mut Slot, ticket: u64, error: MissionError) {
    slot.events.push(SliceEvent::Quarantine {
        window: slot.ckpt_window.unwrap_or(0),
        kind: error.kind.as_str(),
        attempts: u64::from(error.attempts),
    });
    slot.error = Some(error);
    slot.status = MissionStatus::Quarantined;
    persist_slot(ctx, ticket, slot);
    finish_one(ctx);
}

/// Renders a caught panic payload for the quarantine record.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Mirrors the slot's durable image into the manifest (no-op unless
/// durability is on). Best-effort: a manifest write failure degrades
/// recoverability, never the running batch.
fn persist_slot(ctx: &DrainCtx<'_>, ticket: u64, slot: &Slot) {
    if let Some(manifest) = ctx.manifest {
        lock(manifest).update(ticket, record_of(slot));
    }
}

/// One mission reached a terminal state; wake everyone when it was the
/// last.
fn finish_one(ctx: &DrainCtx<'_>) {
    if ctx.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        ctx.cv.notify_all();
    }
}

impl Default for Fleet {
    fn default() -> Self {
        // Defaults are always valid; the builder only rejects explicit
        // zeros.
        match FleetBuilder::new().build() {
            Ok(fleet) => fleet,
            Err(_) => unreachable!("default fleet configuration is valid"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_core::persistent_surveillance;
    use iobt_netsim::SimDuration;

    fn quick_config() -> RunConfig {
        RunConfig::builder()
            .duration(SimDuration::from_secs_f64(30.0))
            .window(SimDuration::from_secs_f64(10.0))
            .build()
            .expect("valid run config")
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("iobt-fleet-test-{}-{tag}", std::process::id()))
    }

    #[test]
    fn batch_drains_to_done_with_reports() {
        let root = temp_root("drain");
        let mut fleet = FleetBuilder::new()
            .workers(2)
            .checkpoint_root(&root)
            .build()
            .expect("valid");
        let tickets: Vec<MissionTicket> = (0..4)
            .map(|i| {
                fleet
                    .submit(persistent_surveillance(60, 7 + i), quick_config())
                    .expect("admissible")
            })
            .collect();
        for &t in &tickets {
            assert_eq!(fleet.poll(t), Some(MissionStatus::Queued));
            assert!(fleet.report(t).is_none(), "no report before drain");
        }
        let summary = fleet.drain();
        assert_eq!(summary.submitted, 4);
        assert_eq!(summary.completed, 4);
        assert_eq!(summary.quarantined, 0);
        assert_eq!(summary.retries, 0);
        assert_eq!(summary.windows, 4 * 3, "3 windows each");
        for &t in &tickets {
            assert_eq!(fleet.poll(t), Some(MissionStatus::Done));
            let report = fleet.report(t).expect("report after drain");
            assert_eq!(report.windows.len(), 3);
            assert!(fleet.digest(t).is_some());
            assert!(fleet.metrics_fingerprint(t).is_some());
            assert!(fleet.error(t).is_none());
        }
        // A second drain has nothing to do; a late submission is picked
        // up by the next one.
        assert_eq!(fleet.drain().submitted, 0);
        let late = fleet
            .submit(persistent_surveillance(60, 99), quick_config())
            .expect("admissible");
        let second = fleet.drain();
        assert_eq!(second.submitted, 1);
        assert_eq!(second.completed, 1);
        assert_eq!(fleet.poll(late), Some(MissionStatus::Done));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn forced_eviction_round_trips_every_slice_through_disk() {
        let root = temp_root("evict");
        let mut fleet = FleetBuilder::new()
            .workers(2)
            .evict_every_slice(true)
            .checkpoint_root(&root)
            .build()
            .expect("valid");
        for i in 0..3 {
            fleet
                .submit(persistent_surveillance(60, 11 + i), quick_config())
                .expect("admissible");
        }
        let summary = fleet.drain();
        assert_eq!(summary.completed, 3);
        // 3 windows per mission at quantum 1: evicted after windows 1
        // and 2, resumed twice, finished on the third slice.
        assert_eq!(summary.evictions, 6);
        assert_eq!(summary.resumes, 6);
        assert_eq!(summary.slices, 9);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn submit_rejects_recorders_and_empty_catalogs() {
        let mut fleet = FleetBuilder::new().build().expect("valid");
        let (rec, _ring) = Recorder::memory(16);
        let armed = RunConfig::builder()
            .recorder(rec)
            .build()
            .expect("valid run config");
        assert_eq!(
            fleet.submit(persistent_surveillance(60, 1), armed).err(),
            Some(crate::SubmitError::RecorderAttached)
        );
        let mut empty = persistent_surveillance(60, 1);
        empty.catalog = iobt_core::types::NodeCatalog::new();
        assert_eq!(
            fleet.submit(empty, quick_config()).err(),
            Some(crate::SubmitError::EmptyCatalog)
        );
        // Unknown tickets answer `None` everywhere.
        let stranger = MissionTicket(123);
        assert_eq!(fleet.poll(stranger), None);
        assert!(fleet.report(stranger).is_none());
        assert_eq!(fleet.total_windows(stranger), None);
    }

    #[test]
    fn admission_bound_sheds_new_work() {
        let mut fleet = FleetBuilder::new()
            .max_queued(2)
            .build()
            .expect("valid");
        fleet
            .submit(persistent_surveillance(60, 1), quick_config())
            .expect("admissible");
        fleet
            .submit(persistent_surveillance(60, 2), quick_config())
            .expect("admissible");
        assert_eq!(
            fleet
                .submit(persistent_surveillance(60, 3), quick_config())
                .err(),
            Some(crate::SubmitError::QueueFull { queued: 2 })
        );
        // Draining the backlog reopens admission.
        let summary = fleet.drain();
        assert_eq!(summary.completed, 2);
        fleet
            .submit(persistent_surveillance(60, 3), quick_config())
            .expect("admissible after drain");
    }

    #[test]
    fn scheduler_trace_counts_match_the_summary() {
        let root = temp_root("trace");
        let (rec, ring) = Recorder::memory(4096);
        let mut fleet = FleetBuilder::new()
            .workers(2)
            .evict_every_slice(true)
            .recorder(rec.clone())
            .checkpoint_root(&root)
            .build()
            .expect("valid");
        for i in 0..2 {
            fleet
                .submit(persistent_surveillance(60, 21 + i), quick_config())
                .expect("admissible");
        }
        let summary = fleet.drain();
        let records = ring.records();
        let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count() as u64;
        assert_eq!(count("fleet_admit"), 2);
        assert_eq!(count("fleet_slice"), summary.slices);
        assert_eq!(count("fleet_evict"), summary.evictions);
        assert_eq!(count("fleet_resume"), summary.resumes);
        assert_eq!(count("fleet_complete"), 2);
        let d = rec.metrics_digest();
        assert_eq!(d.counter("fleet.admitted"), Some(2));
        assert_eq!(d.counter("fleet.completed"), Some(2));
        assert_eq!(d.counter("fleet.slices"), Some(summary.slices));
        assert_eq!(d.counter("fleet.windows"), Some(summary.windows));
        // Canonical layout: all of ticket 0's post-join events precede
        // ticket 1's.
        let tickets: Vec<u64> = records
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::FleetSlice { ticket, .. }
                | TraceEvent::FleetEvict { ticket, .. }
                | TraceEvent::FleetResume { ticket, .. }
                | TraceEvent::FleetComplete { ticket, .. } => Some(ticket),
                _ => None,
            })
            .collect();
        let mut sorted = tickets.clone();
        sorted.sort_unstable();
        assert_eq!(tickets, sorted, "post-join events are grouped by ticket");
        let _ = std::fs::remove_dir_all(&root);
    }
}
