//! Multi-tenant mission scheduling: many concurrent missions
//! time-sliced across a worker pool, with idle missions checkpointed to
//! disk.
//!
//! The paper's IoBT vision is not one big simulation but vast numbers of
//! concurrent, independently-tasked missions. `iobt-core`'s
//! [`MissionRunner`](iobt_core::MissionRunner) already makes a mission a
//! pausable, serializable unit of work — this crate adds the service
//! layer that exploits it: an admission queue, a
//! `std::thread::scope` worker pool that uses
//! [`step_window`](iobt_core::MissionRunner::step_window) as its
//! scheduling quantum, and checkpoint-eviction of idle missions through
//! [`CheckpointStore`](iobt_ckpt::CheckpointStore) so resident memory
//! stays bounded no matter how many missions are in flight.
//!
//! # Example
//!
//! ```no_run
//! use iobt_core::{persistent_surveillance, RunConfig};
//! use iobt_fleet::{FleetBuilder, MissionStatus};
//!
//! let mut fleet = FleetBuilder::new().workers(4).build().expect("valid fleet config");
//! let ticket = fleet
//!     .submit(persistent_surveillance(80, 42), RunConfig::default())
//!     .expect("admissible mission");
//! assert_eq!(fleet.poll(ticket), Some(MissionStatus::Queued));
//! let summary = fleet.drain();
//! assert_eq!(summary.completed, 1);
//! let report = fleet.report(ticket).expect("completed mission has a report");
//! println!("mean utility {:.2}", report.mean_utility());
//! ```
//!
//! # Determinism
//!
//! Each mission's end state is a pure function of its scenario and
//! config: missions never share RNG streams (every simulator is seeded
//! from its own scenario seed), and the checkpoint/resume cycle used for
//! eviction is bit-exact by `iobt-core`'s crash-resume contract. A
//! mission's [`EndStateDigest`](iobt_core::EndStateDigest) and metrics
//! fingerprint are therefore identical under any worker count, admission
//! order, or eviction schedule — the property the fleet test matrix
//! asserts. Scheduler *trace* events are recorded after the pool joins,
//! grouped by ticket in mission order, so the trace layout is also
//! stable; the number of evict/resume events, however, reflects the
//! actual schedule and is only reproducible under a deterministic
//! schedule (one worker, or `evict_every_slice`).
//!
//! # Supervision and recovery
//!
//! The scheduler supervises its missions rather than trusting them:
//!
//! - **Panic isolation** — every slice runs under `catch_unwind`; a
//!   panicking mission is [`MissionStatus::Quarantined`] with its
//!   payload captured in a typed [`MissionError`], the worker survives,
//!   and every other mission's digest is bit-identical to a panic-free
//!   run.
//! - **Checkpoint-IO fault tolerance** — storage is abstracted behind
//!   [`Store`] ([`DiskStore`] in production, [`FailingStore`] for
//!   deterministic fault injection); transient faults retry up to
//!   [`FleetBuilder::retry_limit`] with capped exponential backoff
//!   measured in scheduler slices, never wall time.
//! - **Deadlines and backpressure** — [`FleetBuilder::slice_budget`]
//!   quarantines runaway missions;
//!   [`FleetBuilder::max_queued`] sheds new admissions with
//!   [`SubmitError::QueueFull`] instead of growing without bound.
//! - **Whole-fleet crash recovery** — with
//!   [`FleetBuilder::durable_manifest`] on, a versioned, checksummed
//!   manifest records every durable state transition and
//!   [`Fleet::recover`] rebuilds the fleet after a process death; the
//!   completed batch's digests are bit-identical to an uninterrupted
//!   run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod manifest;
mod scheduler;
mod store;
mod ticket;

pub use config::{FleetBuilder, FleetConfigError};
pub use error::{MissionError, MissionErrorKind, RecoverError};
pub use scheduler::{Fleet, FleetSummary};
pub use store::{DiskStore, FailingStore, FaultProfile, Store};
pub use ticket::{MissionStatus, MissionTicket, SubmitError};
