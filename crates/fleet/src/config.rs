//! Fleet construction: the validating builder and its error type.

use std::fmt;
use std::path::PathBuf;

use iobt_obs::Recorder;

use crate::scheduler::Fleet;

/// Validated scheduler parameters (internal; built by [`FleetBuilder`]).
#[derive(Debug, Clone)]
pub(crate) struct FleetConfig {
    /// Worker threads in the pool.
    pub(crate) workers: usize,
    /// Windows executed per scheduling quantum.
    pub(crate) quantum_windows: u32,
    /// Missions a worker keeps materialized before evicting its
    /// least-recently-sliced resident to disk.
    pub(crate) max_resident: usize,
    /// Test/chaos policy: checkpoint-evict every mission after every
    /// slice, so each slice exercises the full resume path.
    pub(crate) evict_every_slice: bool,
    /// Attach a metrics-only recorder to every mission so per-mission
    /// metrics fingerprints are available after completion.
    pub(crate) mission_metrics: bool,
    /// Directory evicted-mission checkpoints live under (one
    /// subdirectory per ticket).
    pub(crate) checkpoint_root: PathBuf,
}

/// Why a [`FleetBuilder`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetConfigError {
    /// `workers` was 0: the pool could never run anything.
    ZeroWorkers,
    /// `quantum_windows` was 0: a slice would make no progress, so the
    /// scheduler could never advance any mission.
    ZeroQuantum,
    /// `max_resident` was 0: a worker could never hold a mission long
    /// enough to step it — every admission would immediately evict.
    ZeroResidency,
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::ZeroWorkers => write!(f, "fleet needs at least one worker"),
            FleetConfigError::ZeroQuantum => {
                write!(f, "scheduling quantum must be at least one window")
            }
            FleetConfigError::ZeroResidency => {
                write!(f, "eviction threshold must allow at least one resident mission")
            }
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// Fluent, validating builder for a [`Fleet`] (same shape as
/// `RunConfigBuilder`): chain setters, then [`build`](Self::build).
///
/// ```
/// use iobt_fleet::FleetBuilder;
///
/// let fleet = FleetBuilder::new()
///     .workers(4)
///     .quantum_windows(2)
///     .max_resident(64)
///     .build()
///     .expect("valid fleet config");
/// # drop(fleet);
/// ```
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    workers: usize,
    quantum_windows: u32,
    max_resident: usize,
    evict_every_slice: bool,
    mission_metrics: bool,
    checkpoint_root: Option<PathBuf>,
    recorder: Recorder,
}

impl Default for FleetBuilder {
    fn default() -> Self {
        FleetBuilder {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            quantum_windows: 1,
            max_resident: 64,
            evict_every_slice: false,
            mission_metrics: true,
            checkpoint_root: None,
            recorder: Recorder::disabled(),
        }
    }
}

impl FleetBuilder {
    /// Starts from the defaults: one worker per hardware thread, a
    /// one-window quantum, 64 resident missions per worker, per-mission
    /// metrics on, and a process-scoped temp directory for evictions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker threads in the pool. Must be ≥ 1. Worker count changes
    /// scheduling only — never any mission's result.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Utility windows a mission executes per scheduling quantum. Must
    /// be ≥ 1. Larger quanta amortize slice bookkeeping; smaller quanta
    /// interleave missions more finely.
    pub fn quantum_windows(mut self, windows: u32) -> Self {
        self.quantum_windows = windows;
        self
    }

    /// Missions a worker keeps materialized in memory (the eviction
    /// threshold). Must be ≥ 1. When a worker exceeds this, its
    /// least-recently-sliced mission is checkpointed to disk and its
    /// runner dropped; any worker may later resume it.
    pub fn max_resident(mut self, missions: usize) -> Self {
        self.max_resident = missions;
        self
    }

    /// Chaos/test policy: evict every mission after every slice, forcing
    /// each slice through the full checkpoint → disk → resume path. Off
    /// by default.
    pub fn evict_every_slice(mut self, on: bool) -> Self {
        self.evict_every_slice = on;
        self
    }

    /// Attach a metrics-only recorder to every mission, making
    /// [`Fleet::metrics_fingerprint`] available after completion. On by
    /// default; turn off to run missions at baseline speed.
    pub fn mission_metrics(mut self, on: bool) -> Self {
        self.mission_metrics = on;
        self
    }

    /// Directory under which evicted-mission checkpoints are written
    /// (one subdirectory per ticket). Defaults to a process-scoped
    /// directory under the system temp dir.
    pub fn checkpoint_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.checkpoint_root = Some(root.into());
        self
    }

    /// Recorder for the fleet's own scheduler trace (admit / slice /
    /// evict / resume / complete events under the `fleet` subsystem).
    /// Distinct from per-mission metrics. Disabled by default.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Validates the configuration and constructs the fleet.
    pub fn build(self) -> Result<Fleet, FleetConfigError> {
        if self.workers == 0 {
            return Err(FleetConfigError::ZeroWorkers);
        }
        if self.quantum_windows == 0 {
            return Err(FleetConfigError::ZeroQuantum);
        }
        if self.max_resident == 0 {
            return Err(FleetConfigError::ZeroResidency);
        }
        let checkpoint_root = self.checkpoint_root.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("iobt-fleet-{}", std::process::id()))
        });
        Ok(Fleet::from_parts(
            FleetConfig {
                workers: self.workers,
                quantum_windows: self.quantum_windows,
                max_resident: self.max_resident,
                evict_every_slice: self.evict_every_slice,
                mission_metrics: self.mission_metrics,
                checkpoint_root,
            },
            self.recorder,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            FleetBuilder::new().workers(0).build().err(),
            Some(FleetConfigError::ZeroWorkers)
        );
        assert_eq!(
            FleetBuilder::new().quantum_windows(0).build().err(),
            Some(FleetConfigError::ZeroQuantum)
        );
        assert_eq!(
            FleetBuilder::new().max_resident(0).build().err(),
            Some(FleetConfigError::ZeroResidency)
        );
        assert!(FleetBuilder::new().workers(1).build().is_ok());
    }

    #[test]
    fn errors_display_their_cause() {
        for e in [
            FleetConfigError::ZeroWorkers,
            FleetConfigError::ZeroQuantum,
            FleetConfigError::ZeroResidency,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
