//! Fleet construction: the validating builder and its error type.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use iobt_obs::Recorder;

use crate::scheduler::Fleet;
use crate::store::{DiskStore, Store};

/// Validated scheduler parameters (internal; built by [`FleetBuilder`]).
#[derive(Debug, Clone)]
pub(crate) struct FleetConfig {
    /// Worker threads in the pool.
    pub(crate) workers: usize,
    /// Windows executed per scheduling quantum.
    pub(crate) quantum_windows: u32,
    /// Missions a worker keeps materialized before evicting its
    /// least-recently-sliced resident to disk.
    pub(crate) max_resident: usize,
    /// Test/chaos policy: checkpoint-evict every mission after every
    /// slice, so each slice exercises the full resume path.
    pub(crate) evict_every_slice: bool,
    /// Attach a metrics-only recorder to every mission so per-mission
    /// metrics fingerprints are available after completion.
    pub(crate) mission_metrics: bool,
    /// Directory evicted-mission checkpoints and the fleet manifest
    /// live under (one checkpoint subdirectory per ticket).
    pub(crate) checkpoint_root: PathBuf,
    /// Checkpoint storage the scheduler reads and writes through —
    /// [`DiskStore`] in production, a fault-injecting wrapper in chaos
    /// tests.
    pub(crate) store: Arc<dyn Store>,
    /// Admission bound: non-terminal missions the fleet will hold
    /// before shedding new submissions (0 = unbounded).
    pub(crate) max_queued: usize,
    /// Per-mission slice budget; a mission still unfinished after this
    /// many slices is quarantined (`None` = no deadline).
    pub(crate) slice_budget: Option<u64>,
    /// Attempts allowed per mission for retryable checkpoint-IO faults
    /// before quarantine.
    pub(crate) retry_limit: u32,
    /// First retry backoff, in scheduler slices.
    pub(crate) retry_backoff_base: u64,
    /// Backoff ceiling, in scheduler slices.
    pub(crate) retry_backoff_cap: u64,
    /// Persist the fleet manifest at every durable state transition,
    /// enabling [`Fleet::recover`] after a crash.
    pub(crate) durable_manifest: bool,
    /// Test/chaos policy: panic inside the given mission's slice when
    /// its runner reaches the given window index.
    pub(crate) inject_panic: Option<(u64, u64)>,
    /// Test/chaos policy: stop the worker pool once the global slice
    /// clock reaches this count, leaving unfinished missions in place
    /// (a controlled stand-in for a process kill).
    pub(crate) halt_after_slices: Option<u64>,
}

/// Why a [`FleetBuilder`] configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetConfigError {
    /// `workers` was 0: the pool could never run anything.
    ZeroWorkers,
    /// `quantum_windows` was 0: a slice would make no progress, so the
    /// scheduler could never advance any mission.
    ZeroQuantum,
    /// `max_resident` was 0: a worker could never hold a mission long
    /// enough to step it — every admission would immediately evict.
    ZeroResidency,
    /// `retry_limit` was 0: the first checkpoint-IO fault would have no
    /// attempt to charge, not even the one that failed.
    ZeroRetryLimit,
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::ZeroWorkers => write!(f, "fleet needs at least one worker"),
            FleetConfigError::ZeroQuantum => {
                write!(f, "scheduling quantum must be at least one window")
            }
            FleetConfigError::ZeroResidency => {
                write!(f, "eviction threshold must allow at least one resident mission")
            }
            FleetConfigError::ZeroRetryLimit => {
                write!(f, "retry limit must allow at least one attempt")
            }
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// Fluent, validating builder for a [`Fleet`] (same shape as
/// `RunConfigBuilder`): chain setters, then [`build`](Self::build).
///
/// ```
/// use iobt_fleet::FleetBuilder;
///
/// let fleet = FleetBuilder::new()
///     .workers(4)
///     .quantum_windows(2)
///     .max_resident(64)
///     .build()
///     .expect("valid fleet config");
/// # drop(fleet);
/// ```
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    workers: usize,
    quantum_windows: u32,
    max_resident: usize,
    evict_every_slice: bool,
    mission_metrics: bool,
    checkpoint_root: Option<PathBuf>,
    recorder: Recorder,
    store: Option<Arc<dyn Store>>,
    max_queued: usize,
    slice_budget: Option<u64>,
    retry_limit: u32,
    retry_backoff_base: u64,
    retry_backoff_cap: u64,
    durable_manifest: bool,
    inject_panic: Option<(u64, u64)>,
    halt_after_slices: Option<u64>,
}

impl Default for FleetBuilder {
    fn default() -> Self {
        FleetBuilder {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            quantum_windows: 1,
            max_resident: 64,
            evict_every_slice: false,
            mission_metrics: true,
            checkpoint_root: None,
            recorder: Recorder::disabled(),
            store: None,
            max_queued: 0,
            slice_budget: None,
            retry_limit: 5,
            retry_backoff_base: 1,
            retry_backoff_cap: 8,
            durable_manifest: false,
            inject_panic: None,
            halt_after_slices: None,
        }
    }
}

impl FleetBuilder {
    /// Starts from the defaults: one worker per hardware thread, a
    /// one-window quantum, 64 resident missions per worker, per-mission
    /// metrics on, disk-backed checkpoints under a process-scoped temp
    /// directory, 5 retry attempts with 1→8-slice capped backoff, no
    /// deadline, no admission bound, and no durable manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker threads in the pool. Must be ≥ 1. Worker count changes
    /// scheduling only — never any mission's result.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Utility windows a mission executes per scheduling quantum. Must
    /// be ≥ 1. Larger quanta amortize slice bookkeeping; smaller quanta
    /// interleave missions more finely.
    pub fn quantum_windows(mut self, windows: u32) -> Self {
        self.quantum_windows = windows;
        self
    }

    /// Missions a worker keeps materialized in memory (the eviction
    /// threshold). Must be ≥ 1. When a worker exceeds this, its
    /// least-recently-sliced mission is checkpointed to disk and its
    /// runner dropped; any worker may later resume it.
    pub fn max_resident(mut self, missions: usize) -> Self {
        self.max_resident = missions;
        self
    }

    /// Chaos/test policy: evict every mission after every slice, forcing
    /// each slice through the full checkpoint → disk → resume path. Off
    /// by default.
    pub fn evict_every_slice(mut self, on: bool) -> Self {
        self.evict_every_slice = on;
        self
    }

    /// Attach a metrics-only recorder to every mission, making
    /// [`Fleet::metrics_fingerprint`] available after completion. On by
    /// default; turn off to run missions at baseline speed.
    pub fn mission_metrics(mut self, on: bool) -> Self {
        self.mission_metrics = on;
        self
    }

    /// Directory under which evicted-mission checkpoints and the fleet
    /// manifest are written (one checkpoint subdirectory per ticket).
    /// Defaults to a process-scoped directory under the system temp
    /// dir.
    pub fn checkpoint_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.checkpoint_root = Some(root.into());
        self
    }

    /// Recorder for the fleet's own scheduler trace (admit / slice /
    /// evict / resume / retry / quarantine / complete events under the
    /// `fleet` subsystem). Distinct from per-mission metrics. Disabled
    /// by default.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Checkpoint storage the scheduler reads and writes through.
    /// Defaults to a [`DiskStore`] rooted at the checkpoint root; tests
    /// substitute a [`FailingStore`](crate::FailingStore) to exercise
    /// the retry and quarantine paths under injected IO faults.
    pub fn store(mut self, store: impl Store + 'static) -> Self {
        self.store = Some(Arc::new(store));
        self
    }

    /// Admission bound: once the fleet holds this many non-terminal
    /// missions, [`Fleet::submit`](crate::Fleet::submit) sheds new work
    /// with [`SubmitError::QueueFull`](crate::SubmitError::QueueFull)
    /// instead of growing without limit. `0` (the default) disables the
    /// bound.
    pub fn max_queued(mut self, missions: usize) -> Self {
        self.max_queued = missions;
        self
    }

    /// Per-mission deadline, measured in scheduler slices (the only
    /// clock the determinism contract allows): a mission still
    /// unfinished after consuming this many slices is quarantined with
    /// [`MissionErrorKind::DeadlineExceeded`](crate::MissionErrorKind::DeadlineExceeded).
    /// `None` (the default) disables deadlines.
    pub fn slice_budget(mut self, slices: Option<u64>) -> Self {
        self.slice_budget = slices;
        self
    }

    /// Attempts allowed per mission for retryable checkpoint-IO faults
    /// (write errors, ENOSPC, torn files, read errors) before the
    /// mission is quarantined. Must be ≥ 1. Default 5.
    pub fn retry_limit(mut self, attempts: u32) -> Self {
        self.retry_limit = attempts;
        self
    }

    /// Retry backoff, measured in scheduler slices: attempt *n* waits
    /// `min(cap, base << (n - 1))` slices before the mission is
    /// rescheduled. Slice-denominated backoff keeps faulty runs
    /// deterministic — no wall clock ever reaches a scheduling
    /// decision. Defaults: base 1, cap 8.
    pub fn retry_backoff(mut self, base_slices: u64, cap_slices: u64) -> Self {
        self.retry_backoff_base = base_slices;
        self.retry_backoff_cap = cap_slices;
        self
    }

    /// Persist the versioned, checksummed fleet manifest at every
    /// durable state transition, making the whole fleet recoverable
    /// with [`Fleet::recover`] after a process death. Off by default
    /// (manifest writes cost one fsync per transition).
    pub fn durable_manifest(mut self, on: bool) -> Self {
        self.durable_manifest = on;
        self
    }

    /// Test/chaos policy: panic inside mission `ticket`'s slice when
    /// its runner reaches window index `window` — exercises panic
    /// isolation end to end. Off by default.
    pub fn inject_panic(mut self, ticket: u64, window: u64) -> Self {
        self.inject_panic = Some((ticket, window));
        self
    }

    /// Test/chaos policy: stop the worker pool once the global slice
    /// clock reaches `slices`, leaving unfinished missions wherever
    /// they are — a controlled, in-process stand-in for `kill -9` used
    /// by the recovery test matrix. Off by default.
    pub fn halt_after_slices(mut self, slices: u64) -> Self {
        self.halt_after_slices = Some(slices);
        self
    }

    /// Validates the configuration and constructs the fleet.
    pub fn build(self) -> Result<Fleet, FleetConfigError> {
        if self.workers == 0 {
            return Err(FleetConfigError::ZeroWorkers);
        }
        if self.quantum_windows == 0 {
            return Err(FleetConfigError::ZeroQuantum);
        }
        if self.max_resident == 0 {
            return Err(FleetConfigError::ZeroResidency);
        }
        if self.retry_limit == 0 {
            return Err(FleetConfigError::ZeroRetryLimit);
        }
        let checkpoint_root = self.checkpoint_root.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("iobt-fleet-{}", std::process::id()))
        });
        let store = self
            .store
            .unwrap_or_else(|| Arc::new(DiskStore::new(checkpoint_root.clone())));
        Ok(Fleet::from_parts(
            FleetConfig {
                workers: self.workers,
                quantum_windows: self.quantum_windows,
                max_resident: self.max_resident,
                evict_every_slice: self.evict_every_slice,
                mission_metrics: self.mission_metrics,
                checkpoint_root,
                store,
                max_queued: self.max_queued,
                slice_budget: self.slice_budget,
                retry_limit: self.retry_limit,
                retry_backoff_base: self.retry_backoff_base,
                retry_backoff_cap: self.retry_backoff_cap,
                durable_manifest: self.durable_manifest,
                inject_panic: self.inject_panic,
                halt_after_slices: self.halt_after_slices,
            },
            self.recorder,
        ))
    }

    /// Builds the fleet *from its durable manifest*: rebuilds the
    /// ticket table from the newest good manifest generation under the
    /// checkpoint root, validates each re-supplied scenario against its
    /// recorded fingerprint (scenarios are not serialisable, so the
    /// caller provides them again, in ticket order), re-admits every
    /// unfinished mission from its latest good checkpoint, and turns
    /// the durable manifest on for the recovered fleet.
    ///
    /// A subsequent [`Fleet::drain`](crate::Fleet::drain) completes the
    /// batch with digests bit-identical to an uninterrupted run.
    pub fn recover(
        self,
        scenarios: Vec<iobt_core::Scenario>,
    ) -> Result<Fleet, crate::RecoverError> {
        let mut fleet = self
            .durable_manifest(true)
            .build()
            .map_err(crate::RecoverError::Config)?;
        fleet.restore_from_manifest(scenarios)?;
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            FleetBuilder::new().workers(0).build().err(),
            Some(FleetConfigError::ZeroWorkers)
        );
        assert_eq!(
            FleetBuilder::new().quantum_windows(0).build().err(),
            Some(FleetConfigError::ZeroQuantum)
        );
        assert_eq!(
            FleetBuilder::new().max_resident(0).build().err(),
            Some(FleetConfigError::ZeroResidency)
        );
        assert_eq!(
            FleetBuilder::new().retry_limit(0).build().err(),
            Some(FleetConfigError::ZeroRetryLimit)
        );
        assert!(FleetBuilder::new().workers(1).build().is_ok());
    }

    #[test]
    fn errors_display_their_cause() {
        for e in [
            FleetConfigError::ZeroWorkers,
            FleetConfigError::ZeroQuantum,
            FleetConfigError::ZeroResidency,
            FleetConfigError::ZeroRetryLimit,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
