//! Checkpoint-store abstraction and the deterministic failpoint
//! wrapper.
//!
//! The scheduler talks to its checkpoint storage through the [`Store`]
//! trait instead of `CheckpointStore` directly so that IO faults can be
//! injected *under* the real retry/quarantine machinery: production
//! uses [`DiskStore`] (one `iobt-ckpt` directory per ticket), tests and
//! chaos drills wrap it in [`FailingStore`], which fails operations on
//! a deterministic, seeded schedule — write errors, torn files under
//! the final name, ENOSPC, read errors — without any wall-clock or
//! entropy input, so a faulty run is exactly reproducible.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use iobt_ckpt::{encode_checkpoint, CheckpointStore, CkptError};
use iobt_faults::failpoint::fires;

/// Per-ticket checkpoint storage as the scheduler sees it. All methods
/// take the ticket explicitly so one store serves the whole fleet and
/// implementations stay trivially `Sync`.
pub trait Store: Send + Sync + fmt::Debug {
    /// Durably writes the checkpoint taken at `window` for `ticket`.
    /// On `Ok`, the checkpoint must survive a process death.
    fn save(&self, ticket: u64, seed: u64, window: u64, payload: &[u8]) -> Result<(), CkptError>;

    /// Loads the newest checkpoint for `ticket` that verifies against
    /// `seed`, skipping (not failing on) corrupt or torn files.
    /// `Ok(None)` when no good checkpoint exists.
    fn load_latest(&self, ticket: u64, seed: u64) -> Result<Option<(u64, Vec<u8>)>, CkptError>;

    /// Discards every checkpoint held for `ticket` (the mission
    /// completed). Best-effort: a leftover file is wasted disk, not an
    /// error.
    fn clear(&self, ticket: u64);
}

/// The production store: one [`CheckpointStore`] directory per ticket
/// (`m-000042/`) under a fleet-owned root.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// A disk store rooted at `root` (created lazily on first save).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DiskStore { root: root.into() }
    }

    /// The per-ticket checkpoint directory.
    pub fn ticket_dir(&self, ticket: u64) -> PathBuf {
        self.root.join(format!("m-{ticket:06}"))
    }
}

impl Store for DiskStore {
    fn save(&self, ticket: u64, seed: u64, window: u64, payload: &[u8]) -> Result<(), CkptError> {
        let store = CheckpointStore::open(self.ticket_dir(ticket))?;
        store.save(seed, window, payload)?;
        Ok(())
    }

    fn load_latest(&self, ticket: u64, seed: u64) -> Result<Option<(u64, Vec<u8>)>, CkptError> {
        let store = CheckpointStore::open(self.ticket_dir(ticket))?;
        Ok(store.load_latest_good(seed)?.loaded)
    }

    fn clear(&self, ticket: u64) {
        let _ = std::fs::remove_dir_all(self.ticket_dir(ticket));
    }
}

/// Failure schedule for a [`FailingStore`]: each fault domain fires
/// when the shared [`iobt_faults::failpoint`] trigger lands on a
/// `1-in-N` slot (`0` disables the domain).
///
/// Decisions are a pure function of `(seed, domain, ticket, per-ticket
/// operation counter)` — never of wall clock, thread id, or global
/// order — so the same fleet run sees the same faults at the same
/// mission operations regardless of worker count or schedule (each
/// mission's store operations are sequential).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultProfile {
    /// Seed domain-separating this profile's fault schedule.
    pub seed: u64,
    /// Fail roughly one in N saves with a plain write error.
    pub write_error_one_in: u64,
    /// Turn roughly one in N saves into a *torn* file under the final
    /// name (a truncated envelope, as if rename landed mid-write) and
    /// report failure. Exercises the latest-good fallback on read.
    pub torn_write_one_in: u64,
    /// Fail roughly one in N saves with `ENOSPC`.
    pub enospc_one_in: u64,
    /// Fail roughly one in N latest-good loads with a read error.
    pub read_error_one_in: u64,
}

impl FaultProfile {
    /// A profile that injects every fault domain at rate `1-in-N`.
    pub fn uniform(seed: u64, one_in: u64) -> Self {
        FaultProfile {
            seed,
            write_error_one_in: one_in,
            torn_write_one_in: one_in,
            enospc_one_in: one_in,
            read_error_one_in: one_in,
        }
    }
}

/// Deterministic failpoint wrapper around another [`Store`].
///
/// Every save/load consumes one slot of the wrapped ticket's operation
/// counter; the [`FaultProfile`] decides from `(seed, domain, ticket,
/// op)` whether that operation fails and how. A failed save leaves the
/// underlying store untouched (write error, ENOSPC) or holding a torn
/// file (torn write) — exactly the states crash-safe storage must
/// tolerate.
#[derive(Debug)]
pub struct FailingStore<S> {
    inner: S,
    profile: FaultProfile,
    /// Per-ticket operation counters, keyed `(ticket, domain-group)`.
    /// A mission's store operations are sequential (one worker owns it
    /// at a time), so counting per ticket keeps the fault schedule
    /// independent of cross-mission interleaving.
    ops: Mutex<BTreeMap<(u64, u8), u64>>,
}

const OPS_SAVE: u8 = 0;
const OPS_LOAD: u8 = 1;

const DOMAIN_WRITE: u64 = 1;
const DOMAIN_TORN: u64 = 2;
const DOMAIN_ENOSPC: u64 = 3;
const DOMAIN_READ: u64 = 4;

impl<S: Store> FailingStore<S> {
    /// Wraps `inner`, failing operations on `profile`'s schedule.
    pub fn new(inner: S, profile: FaultProfile) -> Self {
        FailingStore {
            inner,
            profile,
            ops: Mutex::new(BTreeMap::new()),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn next_op(&self, ticket: u64, group: u8) -> u64 {
        let mut ops = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        let slot = ops.entry((ticket, group)).or_insert(0);
        let op = *slot;
        *slot += 1;
        op
    }
}

impl<S: Store + 'static> Store for FailingStore<S> {
    fn save(&self, ticket: u64, seed: u64, window: u64, payload: &[u8]) -> Result<(), CkptError> {
        let p = &self.profile;
        let op = self.next_op(ticket, OPS_SAVE);
        let io_err = |kind: io::ErrorKind, msg: &str, raw: Option<i32>| CkptError::Io {
            op: "inject",
            path: PathBuf::from(format!("m-{ticket:06}/ckpt-{window:08}.ickpt")),
            source: match raw {
                Some(code) => io::Error::from_raw_os_error(code),
                None => io::Error::new(kind, msg.to_string()),
            },
        };
        if fires(p.seed, DOMAIN_WRITE, p.write_error_one_in, ticket, op) {
            return Err(io_err(io::ErrorKind::Other, "injected write error", None));
        }
        if fires(p.seed, DOMAIN_ENOSPC, p.enospc_one_in, ticket, op) {
            // 28 == ENOSPC on every platform this repo targets.
            return Err(io_err(io::ErrorKind::Other, "", Some(28)));
        }
        if fires(p.seed, DOMAIN_TORN, p.torn_write_one_in, ticket, op) {
            // A torn file under the *final* name: the envelope cut off
            // mid-payload, as if the process died after a non-atomic
            // write. The real save below it never ran.
            let bytes = encode_checkpoint(seed, window, payload);
            let torn = &bytes[..bytes.len() / 2];
            self.tear(ticket, window, torn);
            return Err(io_err(io::ErrorKind::Other, "injected torn write", None));
        }
        self.inner.save(ticket, seed, window, payload)
    }

    fn load_latest(&self, ticket: u64, seed: u64) -> Result<Option<(u64, Vec<u8>)>, CkptError> {
        let p = &self.profile;
        let op = self.next_op(ticket, OPS_LOAD);
        if fires(p.seed, DOMAIN_READ, p.read_error_one_in, ticket, op) {
            return Err(CkptError::Io {
                op: "inject",
                path: PathBuf::from(format!("m-{ticket:06}")),
                source: io::Error::other("injected read error"),
            });
        }
        self.inner.load_latest(ticket, seed)
    }

    fn clear(&self, ticket: u64) {
        self.inner.clear(ticket);
    }
}

impl<S: Store + 'static> FailingStore<S> {
    /// Plants torn bytes where the checkpoint would have landed. Only
    /// meaningful for stores with an on-disk layout; other stores just
    /// see the failed save.
    fn tear(&self, ticket: u64, window: u64, torn: &[u8]) {
        // Writing through the inner store would re-wrap the envelope;
        // reach the path directly when the inner store is disk-backed.
        if let Some(disk) = self.as_disk() {
            let dir = disk.ticket_dir(ticket);
            if std::fs::create_dir_all(&dir).is_ok() {
                let _ = std::fs::write(dir.join(format!("ckpt-{window:08}.ickpt")), torn);
            }
        }
    }

    fn as_disk(&self) -> Option<&DiskStore> {
        // Poor man's downcast: FailingStore is generic, but the only
        // disk-layout store in the crate is DiskStore. Implemented via
        // Any to stay safe without unsafe code.
        (&self.inner as &dyn std::any::Any).downcast_ref::<DiskStore>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iobt-fleet-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_store_roundtrips_and_clears() {
        let root = scratch("disk");
        let store = DiskStore::new(&root);
        store.save(3, 42, 1, b"one").unwrap();
        store.save(3, 42, 2, b"two").unwrap();
        assert_eq!(store.load_latest(3, 42).unwrap(), Some((2, b"two".to_vec())));
        // Other tickets are isolated.
        assert_eq!(store.load_latest(4, 42).unwrap(), None);
        store.clear(3);
        assert_eq!(store.load_latest(3, 42).unwrap(), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fault_schedule_is_deterministic_and_domain_separated() {
        let profile = FaultProfile::uniform(7, 3);
        let a: Vec<bool> = (0..64)
            .map(|op| fires(profile.seed, DOMAIN_WRITE, 3, 5, op))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|op| fires(profile.seed, DOMAIN_WRITE, 3, 5, op))
            .collect();
        assert_eq!(a, b, "same inputs, same schedule");
        let other_domain: Vec<bool> = (0..64)
            .map(|op| fires(profile.seed, DOMAIN_READ, 3, 5, op))
            .collect();
        assert_ne!(a, other_domain, "domains draw independent schedules");
        assert!(a.iter().any(|&f| f), "1-in-3 fires somewhere in 64 ops");
        assert!(!a.iter().all(|&f| f), "1-in-3 does not fire everywhere");
        // Rate 0 disables a domain entirely.
        assert!((0..64).all(|op| !fires(profile.seed, DOMAIN_TORN, 0, 5, op)));
    }

    #[test]
    fn torn_write_leaves_rejected_file_and_retry_heals_it() {
        let root = scratch("torn");
        // torn_write fires on every save; everything else disabled.
        let profile = FaultProfile {
            seed: 1,
            torn_write_one_in: 1,
            ..FaultProfile::default()
        };
        let store = FailingStore::new(DiskStore::new(&root), profile);
        let err = store.save(0, 9, 4, b"payload-bytes").unwrap_err();
        assert!(matches!(err, CkptError::Io { .. }));
        // The torn file exists under the final name but never loads.
        let path = root.join("m-000000").join("ckpt-00000004.ickpt");
        assert!(path.exists(), "torn bytes landed under the final name");
        assert_eq!(store.load_latest(0, 9).unwrap(), None);
        // A later save of the same window overwrites the torn file.
        store.inner().save(0, 9, 4, b"payload-bytes").unwrap();
        assert_eq!(
            store.load_latest(0, 9).unwrap(),
            Some((4, b"payload-bytes".to_vec()))
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn enospc_surfaces_the_real_errno() {
        let root = scratch("enospc");
        let profile = FaultProfile {
            seed: 2,
            enospc_one_in: 1,
            ..FaultProfile::default()
        };
        let store = FailingStore::new(DiskStore::new(&root), profile);
        let err = store.save(1, 9, 0, b"x").unwrap_err();
        match err {
            CkptError::Io { source, .. } => assert_eq!(source.raw_os_error(), Some(28)),
            other => panic!("expected Io, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
