//! Tickets, mission lifecycle states, and admission errors.

use std::fmt;

/// Opaque handle to a submitted mission, returned by
/// [`Fleet::submit`](crate::Fleet::submit) and accepted by every
/// per-mission query. Tickets are only meaningful to the fleet that
/// issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MissionTicket(pub(crate) u64);

impl MissionTicket {
    /// The ticket's raw index (stable, assigned in submission order) —
    /// for logs and trace correlation with `fleet_*` event payloads.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MissionTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m-{:06}", self.0)
    }
}

/// Where a mission is in the scheduler's lifecycle:
/// `Queued → Running → Idle ⇄ Evicted → Done`/`Quarantined`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MissionStatus {
    /// Admitted, never yet materialized on a worker.
    Queued,
    /// A worker is executing one of its slices right now.
    Running,
    /// Materialized on a worker, waiting for its next slice.
    Idle,
    /// Checkpointed to disk with no in-memory runner; any worker may
    /// resume it.
    Evicted,
    /// Every window executed; the report is available.
    Done,
    /// Isolated after a panic, exhausted checkpoint-IO retries, a blown
    /// slice budget, or an unrecoverable checkpoint; the rest of the
    /// fleet keeps running. See [`Fleet::error`](crate::Fleet::error)
    /// for the typed [`MissionError`](crate::MissionError).
    Quarantined,
}

impl MissionStatus {
    /// `true` once the mission will never run again (`Done` or
    /// `Quarantined`).
    pub fn is_terminal(self) -> bool {
        matches!(self, MissionStatus::Done | MissionStatus::Quarantined)
    }
}

/// Why [`Fleet::submit`](crate::Fleet::submit) rejected a mission.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The `RunConfig` carried an enabled recorder. Recorders are
    /// thread-bound (`!Send`), so a mission that must migrate between
    /// workers cannot bring one; use
    /// [`FleetBuilder::mission_metrics`](crate::FleetBuilder::mission_metrics)
    /// for per-mission metrics and
    /// [`FleetBuilder::recorder`](crate::FleetBuilder::recorder) for the
    /// scheduler trace instead.
    RecorderAttached,
    /// The scenario's node catalog was empty; the mission could never
    /// recruit, and a seed over zero nodes identifies nothing.
    EmptyCatalog,
    /// The fleet already holds
    /// [`FleetBuilder::max_queued`](crate::FleetBuilder::max_queued)
    /// non-terminal missions: overload sheds *new* work instead of
    /// stalling the missions already admitted. Resubmit after a drain.
    QueueFull {
        /// Non-terminal missions the fleet held at rejection time.
        queued: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::RecorderAttached => write!(
                f,
                "mission configs must not carry an enabled recorder (recorders are \
                 thread-bound); use FleetBuilder::mission_metrics / FleetBuilder::recorder"
            ),
            SubmitError::EmptyCatalog => {
                write!(f, "scenario catalog is empty; nothing to recruit")
            }
            SubmitError::QueueFull { queued } => write!(
                f,
                "admission queue is full ({queued} missions pending); drain before resubmitting"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}
