//! The fleet manifest: a versioned, checksummed ticket table that
//! makes a whole fleet recoverable after a process death.
//!
//! When durability is on
//! ([`FleetBuilder::durable_manifest`](crate::FleetBuilder::durable_manifest)),
//! the scheduler persists the manifest at every mission state
//! transition, *after* the transition's checkpoint write — so a
//! manifest never references a checkpoint that might not exist, and a
//! crash between the two leaves at worst a checkpoint the manifest
//! does not know about (harmless: recovery re-derives from the latest
//! good checkpoint anyway).
//!
//! Layout mirrors the checkpoint envelope so the same failure taxonomy
//! applies (all integers little-endian):
//!
//! | offset | size | field                                  |
//! |--------|------|----------------------------------------|
//! | 0      | 8    | magic `b"IOBTFMAN"`                    |
//! | 8      | 4    | manifest format version (`u32`)        |
//! | 12     | 8    | payload length (`u64`)                 |
//! | 20     | n    | payload (`Enc`-coded ticket table)     |
//! | 20 + n | 4    | CRC-32 (IEEE) over bytes `[0, 20 + n)` |
//!
//! Generations are numbered files (`manifest-00000007.fman`) written
//! to a temp sibling and atomically renamed; the two newest
//! generations are kept, so a write torn mid-rename (or a bit-flipped
//! newest file) falls back to the previous generation instead of
//! losing the fleet.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use iobt_ckpt::{crc32, CkptError, Dec, DecodeError, Enc};
use iobt_core::{
    decode_end_state_digest, decode_portable_config, encode_end_state_digest,
    encode_portable_config, EndStateDigest, PortableRunConfig,
};

use crate::error::{MissionError, MissionErrorKind};
use crate::ticket::MissionStatus;

/// File magic: the first eight bytes of every fleet manifest.
pub(crate) const MANIFEST_MAGIC: [u8; 8] = *b"IOBTFMAN";

/// Current manifest format version; the loader rejects others.
pub(crate) const MANIFEST_VERSION: u32 = 1;

const MANIFEST_HEADER_LEN: usize = 8 + 4 + 8;
const MANIFEST_TRAILER_LEN: usize = 4;

/// Everything the scheduler must remember about one mission to rebuild
/// it after a crash. One record per ticket, indexed by ticket order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TicketRecord {
    /// FNV-1a over the scenario's `Debug` rendering — scenarios are not
    /// serialisable, so recovery re-accepts them from the caller and
    /// validates each against this hash.
    pub scenario_hash: u64,
    /// Mission seed.
    pub seed: u64,
    /// Utility-window length in sim microseconds.
    pub window_us: u64,
    /// Total windows the mission runs.
    pub total_windows: u64,
    /// Lifecycle state at the last persisted transition.
    pub status: MissionStatus,
    /// Window index of the newest checkpoint known good, if any.
    pub ckpt_window: Option<u64>,
    /// Checkpoint-IO retry attempts consumed so far.
    pub retries: u32,
    /// Scheduler slices consumed so far (deadline accounting).
    pub slices_used: u64,
    /// Final digest, once `Done`.
    pub digest: Option<EndStateDigest>,
    /// Per-mission metrics fingerprint, once `Done`.
    pub metrics_fp: Option<u64>,
    /// Quarantine cause, once `Quarantined`.
    pub error: Option<MissionError>,
    /// The mission's portable run configuration.
    pub portable: PortableRunConfig,
}

fn status_tag(status: MissionStatus) -> u8 {
    match status {
        MissionStatus::Queued => 0,
        MissionStatus::Running => 1,
        MissionStatus::Idle => 2,
        MissionStatus::Evicted => 3,
        MissionStatus::Done => 4,
        MissionStatus::Quarantined => 5,
    }
}

fn status_from_tag(tag: u8) -> Result<MissionStatus, DecodeError> {
    match tag {
        0 => Ok(MissionStatus::Queued),
        1 => Ok(MissionStatus::Running),
        2 => Ok(MissionStatus::Idle),
        3 => Ok(MissionStatus::Evicted),
        4 => Ok(MissionStatus::Done),
        5 => Ok(MissionStatus::Quarantined),
        tag => Err(DecodeError::UnknownTag {
            what: "mission status",
            tag,
        }),
    }
}

fn enc_error(e: &mut Enc, error: &MissionError) {
    let MissionError {
        kind,
        retryable,
        attempts,
        detail,
    } = error;
    e.u8(kind.tag());
    e.bool(*retryable);
    e.u32(*attempts);
    e.str(detail);
}

fn dec_error(d: &mut Dec<'_>) -> Result<MissionError, DecodeError> {
    let tag = d.u8()?;
    let kind = MissionErrorKind::from_tag(tag).ok_or(DecodeError::UnknownTag {
        what: "mission error kind",
        tag,
    })?;
    let retryable = d.bool()?;
    let attempts = d.u32()?;
    let detail = d.str()?;
    Ok(MissionError {
        kind,
        retryable,
        attempts,
        detail,
    })
}

fn enc_record(e: &mut Enc, record: &TicketRecord) {
    let TicketRecord {
        scenario_hash,
        seed,
        window_us,
        total_windows,
        status,
        ckpt_window,
        retries,
        slices_used,
        digest,
        metrics_fp,
        error,
        portable,
    } = record;
    e.u64(*scenario_hash);
    e.u64(*seed);
    e.u64(*window_us);
    e.u64(*total_windows);
    e.u8(status_tag(*status));
    match ckpt_window {
        Some(window) => {
            e.bool(true);
            e.u64(*window);
        }
        None => e.bool(false),
    }
    e.u32(*retries);
    e.u64(*slices_used);
    match digest {
        Some(digest) => {
            e.bool(true);
            encode_end_state_digest(e, digest);
        }
        None => e.bool(false),
    }
    match metrics_fp {
        Some(fp) => {
            e.bool(true);
            e.u64(*fp);
        }
        None => e.bool(false),
    }
    match error {
        Some(error) => {
            e.bool(true);
            enc_error(e, error);
        }
        None => e.bool(false),
    }
    encode_portable_config(e, portable);
}

fn dec_record(d: &mut Dec<'_>) -> Result<TicketRecord, DecodeError> {
    let scenario_hash = d.u64()?;
    let seed = d.u64()?;
    let window_us = d.u64()?;
    let total_windows = d.u64()?;
    let status = status_from_tag(d.u8()?)?;
    let ckpt_window = if d.bool()? { Some(d.u64()?) } else { None };
    let retries = d.u32()?;
    let slices_used = d.u64()?;
    let digest = if d.bool()? {
        Some(decode_end_state_digest(d)?)
    } else {
        None
    };
    let metrics_fp = if d.bool()? { Some(d.u64()?) } else { None };
    let error = if d.bool()? { Some(dec_error(d)?) } else { None };
    let portable = decode_portable_config(d)?;
    Ok(TicketRecord {
        scenario_hash,
        seed,
        window_us,
        total_windows,
        status,
        ckpt_window,
        retries,
        slices_used,
        digest,
        metrics_fp,
        error,
        portable,
    })
}

/// Serialises the ticket table into a checksummed manifest envelope.
fn encode_manifest(records: &[TicketRecord]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.usize(records.len());
    for record in records {
        enc_record(&mut enc, record);
    }
    let payload = enc.into_bytes();
    let mut out = Vec::with_capacity(MANIFEST_HEADER_LEN + payload.len() + MANIFEST_TRAILER_LEN);
    out.extend_from_slice(&MANIFEST_MAGIC);
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn read_exact_le<const N: usize>(bytes: &[u8], offset: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&bytes[offset..offset + N]);
    out
}

/// Parses and verifies a manifest envelope; every corruption mode maps
/// to a typed [`CkptError`], never a panic.
fn decode_manifest(bytes: &[u8]) -> Result<Vec<TicketRecord>, CkptError> {
    let min = MANIFEST_HEADER_LEN + MANIFEST_TRAILER_LEN;
    if bytes.len() < min {
        return Err(CkptError::Truncated {
            len: bytes.len(),
            min,
        });
    }
    if bytes[..8] != MANIFEST_MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = u32::from_le_bytes(read_exact_le::<4>(bytes, 8));
    if version != MANIFEST_VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let declared = u64::from_le_bytes(read_exact_le::<8>(bytes, 12));
    let actual = (bytes.len() - min) as u64;
    if declared != actual {
        return Err(CkptError::LengthMismatch { declared, actual });
    }
    let body_end = bytes.len() - MANIFEST_TRAILER_LEN;
    let stored = u32::from_le_bytes(read_exact_le::<4>(bytes, body_end));
    let computed = crc32(&bytes[..body_end]);
    if stored != computed {
        return Err(CkptError::CrcMismatch { stored, computed });
    }
    let mut dec = Dec::new(&bytes[MANIFEST_HEADER_LEN..body_end]);
    let count = dec.usize()?;
    let mut records = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        records.push(dec_record(&mut dec)?);
    }
    dec.finish()?;
    Ok(records)
}

fn manifest_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("manifest-{generation:08}.fman"))
}

fn parse_generation(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("manifest-")?.strip_suffix(".fman")?;
    if digits.len() == 8 && digits.bytes().all(|b| b.is_ascii_digit()) {
        digits.parse().ok()
    } else {
        None
    }
}

/// All manifest generations present in `dir`, newest first.
fn generations(dir: &Path) -> Result<Vec<u64>, CkptError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(CkptError::Io {
                op: "read_dir",
                path: dir.to_path_buf(),
                source: e,
            })
        }
    };
    let mut gens: Vec<u64> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CkptError::Io {
            op: "read_dir",
            path: dir.to_path_buf(),
            source: e,
        })?;
        if let Some(generation) = entry.file_name().to_str().and_then(parse_generation) {
            gens.push(generation);
        }
    }
    gens.sort_unstable_by(|a, b| b.cmp(a));
    Ok(gens)
}

/// The on-disk ticket table. The scheduler owns one per fleet (behind
/// its own lock) and calls [`ManifestFile::persist`] after each state
/// transition when durability is enabled.
#[derive(Debug)]
pub(crate) struct ManifestFile {
    dir: PathBuf,
    generation: u64,
}

/// A successfully loaded manifest: the records plus which generation
/// they came from (newer, corrupt generations may have been skipped).
#[derive(Debug)]
pub(crate) struct LoadedManifest {
    pub records: Vec<TicketRecord>,
    /// Generation the records came from; exercised by the durability
    /// tests (the non-test build only consumes `records`).
    #[cfg_attr(not(test), allow(dead_code))]
    pub generation: u64,
}

impl ManifestFile {
    /// A manifest writer for `dir`, continuing after any generations
    /// already present (so recovery never reuses a generation number).
    /// An unreadable directory starts from generation 0 — the next
    /// persist surfaces any real IO problem.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let generation = generations(&dir)
            .ok()
            .and_then(|gens| gens.first().copied())
            .unwrap_or(0);
        ManifestFile { dir, generation }
    }

    /// Loads the newest generation that verifies end-to-end, skipping
    /// (not failing on) corrupt or torn newer generations. `Ok(None)`
    /// when the directory holds no manifest at all; the last parse
    /// error when every generation present is bad.
    pub fn load_latest(dir: &Path) -> Result<Option<LoadedManifest>, CkptError> {
        let gens = generations(dir)?;
        let mut last_err: Option<CkptError> = None;
        for generation in gens {
            let path = manifest_path(dir, generation);
            let bytes = match fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    last_err = Some(CkptError::Io {
                        op: "read",
                        path,
                        source: e,
                    });
                    continue;
                }
            };
            match decode_manifest(&bytes) {
                Ok(records) => {
                    return Ok(Some(LoadedManifest {
                        records,
                        generation,
                    }))
                }
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    /// Writes the ticket table as a new generation: temp sibling,
    /// `sync_all`, atomic rename; then prunes all but the two newest
    /// generations so a torn newest write always leaves a good
    /// predecessor.
    pub fn persist(&mut self, records: &[TicketRecord]) -> Result<(), CkptError> {
        fs::create_dir_all(&self.dir).map_err(|e| CkptError::Io {
            op: "create_dir",
            path: self.dir.clone(),
            source: e,
        })?;
        let generation = self.generation + 1;
        let bytes = encode_manifest(records);
        let path = manifest_path(&self.dir, generation);
        let tmp = path.with_extension("fman.tmp");
        let io = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source: std::io::Error| CkptError::Io { op, path, source }
        };
        {
            let mut file = fs::File::create(&tmp).map_err(io("create", &tmp))?;
            file.write_all(&bytes).map_err(io("write", &tmp))?;
            file.sync_all().map_err(io("sync", &tmp))?;
        }
        fs::rename(&tmp, &path).map_err(io("rename", &tmp))?;
        self.generation = generation;
        // Keep this generation and its predecessor; drop the rest.
        if let Ok(gens) = generations(&self.dir) {
            for old in gens.into_iter().filter(|&g| g + 1 < generation) {
                let _ = fs::remove_file(manifest_path(&self.dir, old));
            }
        }
        Ok(())
    }
}

/// The scheduler's in-memory mirror of the on-disk ticket table: one
/// record per ticket, rewritten as a whole new generation on every
/// update. Holding the full table here means a worker persisting one
/// mission's transition never needs to lock any other mission's slot.
#[derive(Debug)]
pub(crate) struct ManifestState {
    file: ManifestFile,
    records: Vec<TicketRecord>,
}

impl ManifestState {
    /// An empty table writing to `dir`, continuing that directory's
    /// generation numbering.
    pub fn open(dir: &Path) -> Self {
        ManifestState {
            file: ManifestFile::open(dir),
            records: Vec::new(),
        }
    }

    /// Sets (or appends, for the next sequential ticket) one record and
    /// persists the table as a new generation. Best-effort: a failed
    /// manifest write degrades recoverability, never the running batch.
    pub fn update(&mut self, ticket: u64, record: TicketRecord) {
        let idx = ticket as usize;
        if idx < self.records.len() {
            self.records[idx] = record;
        } else if idx == self.records.len() {
            self.records.push(record);
        }
        let _ = self.file.persist(&self.records);
    }

    /// Replaces the whole table (recovery remaps every status) and
    /// persists it.
    pub fn replace(&mut self, records: Vec<TicketRecord>) {
        self.records = records;
        let _ = self.file.persist(&self.records);
    }
}

/// FNV-1a over a scenario's `Debug` rendering — the identity recovery
/// uses to check that re-supplied scenarios match the originals.
pub(crate) fn scenario_fingerprint(debug_rendering: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in debug_rendering.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iobt-fleet-manifest-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_record(seed: u64, status: MissionStatus) -> TicketRecord {
        TicketRecord {
            scenario_hash: scenario_fingerprint("scenario-debug"),
            seed,
            window_us: 250_000,
            total_windows: 16,
            status,
            ckpt_window: if status == MissionStatus::Evicted {
                Some(8)
            } else {
                None
            },
            retries: 2,
            slices_used: 5,
            digest: None,
            metrics_fp: Some(0xDEAD_BEEF),
            error: if status == MissionStatus::Quarantined {
                Some(MissionError {
                    kind: MissionErrorKind::CheckpointSave,
                    retryable: true,
                    attempts: 4,
                    detail: "disk full".to_string(),
                })
            } else {
                None
            },
            portable: iobt_core::RunConfig::default().into_portable().0,
        }
    }

    #[test]
    fn manifest_roundtrips_every_status() {
        let records: Vec<TicketRecord> = [
            MissionStatus::Queued,
            MissionStatus::Running,
            MissionStatus::Idle,
            MissionStatus::Evicted,
            MissionStatus::Done,
            MissionStatus::Quarantined,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, status)| sample_record(i as u64, status))
        .collect();
        let bytes = encode_manifest(&records);
        let decoded = decode_manifest(&bytes).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn persist_rotates_generations_and_keeps_two() {
        let dir = scratch("rotate");
        let mut manifest = ManifestFile::open(&dir);
        let records = vec![sample_record(1, MissionStatus::Queued)];
        for _ in 0..5 {
            manifest.persist(&records).unwrap();
        }
        let gens = generations(&dir).unwrap();
        assert_eq!(gens, vec![5, 4], "only the two newest generations remain");
        let loaded = ManifestFile::load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.generation, 5);
        assert_eq!(loaded.records, records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_previous() {
        let dir = scratch("fallback");
        let mut manifest = ManifestFile::open(&dir);
        let old = vec![sample_record(1, MissionStatus::Queued)];
        let new = vec![sample_record(1, MissionStatus::Done)];
        manifest.persist(&old).unwrap();
        manifest.persist(&new).unwrap();
        // Tear the newest generation mid-file.
        let newest = manifest_path(&dir, 2);
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let loaded = ManifestFile::load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.generation, 1, "fell back past the torn newest");
        assert_eq!(loaded.records, old);
        // Reopening continues numbering past the torn generation.
        let reopened = ManifestFile::open(&dir);
        assert_eq!(reopened.generation, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_corruption_is_a_typed_error() {
        let records = vec![
            sample_record(1, MissionStatus::Evicted),
            sample_record(2, MissionStatus::Quarantined),
        ];
        let good = encode_manifest(&records);
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            assert!(
                decode_manifest(&bad).is_err(),
                "byte {i} flip must be detected"
            );
        }
        for len in 0..good.len() {
            let truncated = &good[..len];
            assert!(
                decode_manifest(truncated).is_err(),
                "truncation to {len} bytes must be detected"
            );
        }
    }

    #[test]
    fn empty_directory_loads_none() {
        let dir = scratch("empty");
        assert!(ManifestFile::load_latest(&dir).unwrap().is_none());
        fs::create_dir_all(&dir).unwrap();
        assert!(ManifestFile::load_latest(&dir).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
