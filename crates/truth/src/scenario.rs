//! Synthetic social-sensing scenarios.
//!
//! The paper's social-sensing line of work (refs \[1\]–\[4\]) models humans as
//! unreliable sensors making binary claims about world state. With no real
//! crowdsensing corpus available, we generate scenarios from the same
//! estimation-theoretic model those papers analyze: each source `i` has a
//! latent reliability `t_i` (probability of reporting the true value of a
//! claim it observes), adversarial sources *invert* the truth, and each
//! source observes a random subset of claims.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Index of a source (a human reporter or sensing node).
pub type SourceId = usize;
/// Index of a claim (a binary statement about the world).
pub type ClaimId = usize;

/// One assertion: `source` says `claim` has truth-value `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Reporting source.
    pub source: SourceId,
    /// Claim being asserted.
    pub claim: ClaimId,
    /// Asserted polarity.
    pub value: bool,
}

/// A generated scenario with ground truth attached.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of sources.
    pub num_sources: usize,
    /// Number of claims.
    pub num_claims: usize,
    /// All reports, in generation order.
    pub reports: Vec<Report>,
    /// Ground-truth claim values.
    pub truth: Vec<bool>,
    /// Ground-truth per-source reliability (probability of honest and
    /// correct reporting; adversarial sources have low values).
    pub reliability: Vec<f64>,
    /// Which sources are adversarial (systematically inverting truth).
    pub adversarial: Vec<bool>,
}

/// Configures scenario generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioBuilder {
    num_sources: usize,
    num_claims: usize,
    observe_prob: f64,
    honest_reliability: (f64, f64),
    adversarial_fraction: f64,
    true_claim_fraction: f64,
}

impl ScenarioBuilder {
    /// Starts a scenario with `num_sources` sources and `num_claims` claims.
    pub fn new(num_sources: usize, num_claims: usize) -> Self {
        ScenarioBuilder {
            num_sources,
            num_claims,
            observe_prob: 0.3,
            honest_reliability: (0.6, 0.95),
            adversarial_fraction: 0.0,
            true_claim_fraction: 0.5,
        }
    }

    /// Probability each source observes each claim (matrix density).
    pub fn observe_prob(mut self, p: f64) -> Self {
        self.observe_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Range of honest-source reliabilities (uniformly sampled).
    pub fn honest_reliability(mut self, lo: f64, hi: f64) -> Self {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(lo, 1.0);
        self.honest_reliability = (lo, hi);
        self
    }

    /// Fraction of sources that are adversarial truth-inverters.
    pub fn adversarial_fraction(mut self, f: f64) -> Self {
        self.adversarial_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Fraction of claims whose ground truth is `true`.
    pub fn true_claim_fraction(mut self, f: f64) -> Self {
        self.true_claim_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Generates the scenario deterministically from `seed`.
    // `s` and `c` are source/claim identifiers stored in the reports, not
    // just indices, so the range loops are the clearest form here.
    #[allow(clippy::needless_range_loop)]
    pub fn build(&self, seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<bool> = (0..self.num_claims)
            .map(|_| rng.gen::<f64>() < self.true_claim_fraction)
            .collect();
        // Draw exactly round(fraction·n) adversaries rather than Bernoulli
        // per source: a chance draw near 50% adversarial mass pushes the
        // truth-discovery problem past its identifiability boundary (the
        // inverted labeling becomes likelihood-favored), which no caller
        // asking for a 30% adversary scenario expects.
        let num_adv = (self.adversarial_fraction * self.num_sources as f64).round() as usize;
        let mut adversarial = vec![false; self.num_sources];
        let mut indices: Vec<usize> = (0..self.num_sources).collect();
        indices.shuffle(&mut rng);
        for &i in indices.iter().take(num_adv.min(self.num_sources)) {
            adversarial[i] = true;
        }
        let mut reliability = Vec::with_capacity(self.num_sources);
        for s in 0..self.num_sources {
            if adversarial[s] {
                // Adversaries lie most of the time; their effective
                // probability of reporting the truth is low.
                reliability.push(rng.gen_range(0.05..0.25));
            } else {
                let (lo, hi) = self.honest_reliability;
                reliability.push(if hi > lo { rng.gen_range(lo..hi) } else { lo });
            }
        }
        let mut reports = Vec::new();
        for s in 0..self.num_sources {
            for c in 0..self.num_claims {
                if rng.gen::<f64>() >= self.observe_prob {
                    continue;
                }
                let correct = rng.gen::<f64>() < reliability[s];
                let value = if correct { truth[c] } else { !truth[c] };
                reports.push(Report {
                    source: s,
                    claim: c,
                    value,
                });
            }
        }
        Scenario {
            num_sources: self.num_sources,
            num_claims: self.num_claims,
            reports,
            truth,
            reliability,
            adversarial,
        }
    }
}

impl Scenario {
    /// Scores estimated claim values against ground truth, returning the
    /// fraction correct. Estimates shorter than the claim count score the
    /// missing tail as wrong.
    pub fn score_claims(&self, estimates: &[bool]) -> f64 {
        if self.num_claims == 0 {
            return 0.0;
        }
        let correct = self
            .truth
            .iter()
            .enumerate()
            .filter(|&(c, &t)| estimates.get(c) == Some(&t))
            .count();
        correct as f64 / self.num_claims as f64
    }

    /// Root-mean-square error between estimated and true source
    /// reliabilities (over sources present in both).
    pub fn reliability_rmse(&self, estimates: &[f64]) -> f64 {
        let n = self.reliability.len().min(estimates.len());
        if n == 0 {
            return 0.0;
        }
        let sq: f64 = self
            .reliability
            .iter()
            .zip(estimates)
            .take(n)
            .map(|(t, e)| (t - e) * (t - e))
            .sum();
        (sq / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let b = ScenarioBuilder::new(20, 50);
        assert_eq!(b.build(1), b.build(1));
        assert_ne!(b.build(1), b.build(2));
    }

    #[test]
    fn density_controls_report_count() {
        let sparse = ScenarioBuilder::new(50, 100).observe_prob(0.1).build(3);
        let dense = ScenarioBuilder::new(50, 100).observe_prob(0.9).build(3);
        assert!(dense.reports.len() > sparse.reports.len() * 4);
    }

    #[test]
    fn adversarial_sources_have_low_reliability() {
        let s = ScenarioBuilder::new(200, 10)
            .adversarial_fraction(0.5)
            .build(4);
        for (i, &adv) in s.adversarial.iter().enumerate() {
            if adv {
                assert!(s.reliability[i] < 0.3);
            } else {
                assert!(s.reliability[i] >= 0.6);
            }
        }
        let adv_count = s.adversarial.iter().filter(|&&a| a).count();
        assert!((adv_count as f64 / 200.0 - 0.5).abs() < 0.12);
    }

    #[test]
    fn highly_reliable_sources_mostly_report_truth() {
        let s = ScenarioBuilder::new(5, 400)
            .honest_reliability(0.95, 0.99)
            .observe_prob(1.0)
            .build(5);
        for src in 0..5 {
            let reports: Vec<&Report> = s.reports.iter().filter(|r| r.source == src).collect();
            let correct = reports
                .iter()
                .filter(|r| r.value == s.truth[r.claim])
                .count();
            let frac = correct as f64 / reports.len() as f64;
            assert!(frac > 0.9, "source {src} correct fraction {frac}");
        }
    }

    #[test]
    fn score_claims_handles_short_estimates() {
        let s = ScenarioBuilder::new(2, 4).build(6);
        assert_eq!(s.score_claims(&s.truth), 1.0);
        let empty: Vec<bool> = Vec::new();
        assert_eq!(s.score_claims(&empty), 0.0);
    }

    #[test]
    fn reliability_rmse_zero_for_exact() {
        let s = ScenarioBuilder::new(10, 10).build(7);
        assert_eq!(s.reliability_rmse(&s.reliability), 0.0);
        assert!(s.reliability_rmse(&[0.0; 10]) > 0.0);
    }
}
