//! Expectation-maximization truth discovery.
//!
//! Implements the estimation-theoretic fact-finder of the social-sensing
//! literature the paper builds on (refs \[1\], \[2\]): claims have latent binary
//! truth values, sources have latent accuracies, and EM alternates between
//! (E) computing claim posteriors given source accuracies and (M) re-
//! estimating source accuracies given claim posteriors — the binary
//! Dawid–Skene model. Adversarial sources converge to accuracy < 0.5 and
//! their reports are automatically *inverted* by the posterior, which is
//! exactly the resilience property §V-A asks for.

use crate::scenario::Report;

/// Result of a truth-discovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthEstimate {
    /// Posterior probability each claim is true.
    pub claim_posterior: Vec<f64>,
    /// Estimated accuracy of each source (probability its reports match
    /// the truth).
    pub source_accuracy: Vec<f64>,
    /// EM iterations performed.
    pub iterations: usize,
    /// Whether the run converged before the iteration cap.
    pub converged: bool,
}

impl TruthEstimate {
    /// Hard claim decisions at threshold 0.5.
    pub fn claim_values(&self) -> Vec<bool> {
        self.claim_posterior.iter().map(|&p| p >= 0.5).collect()
    }

    /// Confidence of each decision: `max(p, 1-p)` per claim.
    pub fn confidences(&self) -> Vec<f64> {
        self.claim_posterior
            .iter()
            .map(|&p| p.max(1.0 - p))
            .collect()
    }

    /// Sources whose estimated accuracy is below `threshold` — suspected
    /// bad/adversarial sources (information diagnostics, §V-A).
    pub fn suspected_sources(&self, threshold: f64) -> Vec<usize> {
        self.source_accuracy
            .iter()
            .enumerate()
            .filter(|(_, &a)| a < threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

/// EM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the max posterior change.
    pub tolerance: f64,
    /// Prior probability a claim is true.
    pub claim_prior: f64,
    /// Beta-prior pseudo-counts regularizing accuracy estimates
    /// (`alpha` correct, `beta` incorrect).
    pub accuracy_prior: (f64, f64),
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            max_iterations: 100,
            tolerance: 1e-6,
            claim_prior: 0.5,
            accuracy_prior: (4.0, 2.0),
        }
    }
}

/// Runs EM truth discovery over `reports` covering `num_sources` sources
/// and `num_claims` claims.
///
/// Sources or claims without any report fall back to their priors.
///
/// # Panics
///
/// Panics if any report references a source or claim out of range.
///
/// ```
/// # use iobt_truth::scenario::ScenarioBuilder;
/// # use iobt_truth::em::{discover, EmConfig};
/// let s = ScenarioBuilder::new(30, 100).observe_prob(0.4).build(1);
/// let est = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
/// assert!(s.score_claims(&est.claim_values()) > 0.85);
/// ```
pub fn discover(
    reports: &[Report],
    num_sources: usize,
    num_claims: usize,
    config: EmConfig,
) -> TruthEstimate {
    for r in reports {
        assert!(r.source < num_sources, "report source out of range");
        assert!(r.claim < num_claims, "report claim out of range");
    }
    let claim_prior = config.claim_prior.clamp(1e-6, 1.0 - 1e-6);
    let mut posterior = vec![claim_prior; num_claims];
    let mut accuracy: Vec<f64> = vec![0.7; num_sources];
    // Pre-index reports by claim for the E-step.
    let mut by_claim: Vec<Vec<(usize, bool)>> = vec![Vec::new(); num_claims];
    for r in reports {
        by_claim[r.claim].push((r.source, r.value));
    }
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        // E-step: claim posteriors from source accuracies.
        let mut max_delta: f64 = 0.0;
        for (c, rs) in by_claim.iter().enumerate() {
            let mut log_true = claim_prior.ln();
            let mut log_false = (1.0 - claim_prior).ln();
            for &(s, value) in rs {
                let a = accuracy[s].clamp(1e-6, 1.0 - 1e-6);
                if value {
                    log_true += a.ln();
                    log_false += (1.0 - a).ln();
                } else {
                    log_true += (1.0 - a).ln();
                    log_false += a.ln();
                }
            }
            let m = log_true.max(log_false);
            let pt = (log_true - m).exp();
            let pf = (log_false - m).exp();
            let p = pt / (pt + pf);
            max_delta = max_delta.max((p - posterior[c]).abs());
            posterior[c] = p;
        }
        // M-step: source accuracies from claim posteriors (expected
        // correct-report counts with a Beta prior).
        let (pa, pb) = config.accuracy_prior;
        let mut correct = vec![pa; num_sources];
        let mut total = vec![pa + pb; num_sources];
        for r in reports {
            let p_true = posterior[r.claim];
            let p_match = if r.value { p_true } else { 1.0 - p_true };
            correct[r.source] += p_match;
            total[r.source] += 1.0;
        }
        for s in 0..num_sources {
            accuracy[s] = correct[s] / total[s];
        }
        if max_delta < config.tolerance {
            converged = true;
            break;
        }
    }
    TruthEstimate {
        claim_posterior: posterior,
        source_accuracy: accuracy,
        iterations,
        converged,
    }
}

/// Streaming EM: processes report batches incrementally, warm-starting each
/// batch's EM from the previous state. Suited to the continuous,
/// never-ending learning setting of §V-B.
#[derive(Debug, Clone)]
pub struct StreamingDiscoverer {
    num_sources: usize,
    num_claims: usize,
    config: EmConfig,
    reports: Vec<Report>,
    latest: Option<TruthEstimate>,
}

impl StreamingDiscoverer {
    /// Creates a streaming discoverer for a fixed source/claim universe.
    pub fn new(num_sources: usize, num_claims: usize, config: EmConfig) -> Self {
        StreamingDiscoverer {
            num_sources,
            num_claims,
            config,
            reports: Vec::new(),
            latest: None,
        }
    }

    /// Ingests a batch of reports and re-runs EM over everything seen so
    /// far (few iterations are needed thanks to warm data indexing).
    pub fn ingest(&mut self, batch: &[Report]) -> &TruthEstimate {
        self.reports.extend_from_slice(batch);
        let est = discover(
            &self.reports,
            self.num_sources,
            self.num_claims,
            self.config,
        );
        self.latest = Some(est);
        // lint: allow(panic) — assigned Some on the previous line
        self.latest.as_ref().expect("just set")
    }

    /// The latest estimate, if any batch has been ingested.
    pub fn latest(&self) -> Option<&TruthEstimate> {
        self.latest.as_ref()
    }

    /// Total reports ingested.
    pub fn report_count(&self) -> usize {
        self.reports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn em_beats_chance_and_estimates_reliability() {
        let s = ScenarioBuilder::new(40, 200).observe_prob(0.3).build(1);
        let est = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
        let acc = s.score_claims(&est.claim_values());
        assert!(acc > 0.85, "claim accuracy {acc}");
        assert!(s.reliability_rmse(&est.source_accuracy) < 0.2);
    }

    #[test]
    fn adversarial_sources_get_low_estimated_accuracy() {
        let s = ScenarioBuilder::new(60, 150)
            .adversarial_fraction(0.3)
            .observe_prob(0.4)
            .build(2);
        let est = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
        let suspected = est.suspected_sources(0.5);
        // Most adversaries should be flagged.
        let adversaries: Vec<usize> = s
            .adversarial
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i)
            .collect();
        let caught = adversaries.iter().filter(|a| suspected.contains(a)).count();
        assert!(
            caught as f64 / adversaries.len() as f64 > 0.8,
            "caught {caught}/{}",
            adversaries.len()
        );
    }

    #[test]
    fn unreported_claims_stay_at_prior() {
        let est = discover(&[], 3, 5, EmConfig::default());
        assert!(est.claim_posterior.iter().all(|&p| (p - 0.5).abs() < 1e-9));
        assert!(est.converged);
    }

    #[test]
    fn posteriors_are_probabilities() {
        let s = ScenarioBuilder::new(20, 50).build(3);
        let est = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
        assert!(est
            .claim_posterior
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
        assert!(est
            .source_accuracy
            .iter()
            .all(|&a| (0.0..=1.0).contains(&a)));
        assert!(est.confidences().iter().all(|&c| (0.5..=1.0).contains(&c)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_reports() {
        let r = [Report {
            source: 5,
            claim: 0,
            value: true,
        }];
        discover(&r, 3, 3, EmConfig::default());
    }

    #[test]
    fn em_recovers_from_inverted_majority_when_reliable_minority_exists() {
        // 3 highly reliable honest sources vs 5 noisy ones: EM should weight
        // the reliable minority above uniform voting.
        let s = ScenarioBuilder::new(8, 300)
            .honest_reliability(0.55, 0.6)
            .observe_prob(1.0)
            .build(4);
        // Manually boost three sources to near-perfect by regenerating their
        // reports from truth.
        let mut reports = s.reports.clone();
        for r in &mut reports {
            if r.source < 3 {
                r.value = s.truth[r.claim];
            }
        }
        let est = discover(&reports, s.num_sources, s.num_claims, EmConfig::default());
        let acc = s.score_claims(&est.claim_values());
        assert!(acc > 0.9, "EM exploits reliable minority: {acc}");
        assert!(est.source_accuracy[0] > 0.9);
    }

    #[test]
    fn streaming_ingestion_improves_with_data() {
        let s = ScenarioBuilder::new(30, 100).observe_prob(0.5).build(5);
        let mut stream = StreamingDiscoverer::new(s.num_sources, s.num_claims, EmConfig::default());
        let third = s.reports.len() / 3;
        let first = stream.ingest(&s.reports[..third]).clone();
        let all = stream.ingest(&s.reports[third..]).clone();
        let acc_first = s.score_claims(&first.claim_values());
        let acc_all = s.score_claims(&all.claim_values());
        assert!(acc_all >= acc_first - 0.05, "{acc_first} -> {acc_all}");
        assert_eq!(stream.report_count(), s.reports.len());
        assert!(stream.latest().is_some());
    }

    #[test]
    fn convergence_flag_and_iteration_cap() {
        let s = ScenarioBuilder::new(10, 20).build(6);
        let est = discover(
            &s.reports,
            s.num_sources,
            s.num_claims,
            EmConfig {
                max_iterations: 1,
                ..EmConfig::default()
            },
        );
        assert_eq!(est.iterations, 1);
        assert!(!est.converged);
    }
}
