//! Information diagnostics: attention direction and anomaly scoring.
//!
//! §V-A: "attention is a bottleneck. It should be directed to situations
//! that deserve it the most … even in the presence of noise, failures, bad
//! data, malicious adversarial inputs, and other possibly intentionally-
//! designed distractions." We score each claim by combining how *surprising*
//! it is (posterior far from the prior) with how *settled* it is (posterior
//! entropy), so attention flows to confident anomalies rather than to noise.

use crate::em::TruthEstimate;
use crate::scenario::Report;

/// Attention-worthiness of one claim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionScore {
    /// Claim index.
    pub claim: usize,
    /// Posterior probability the claim is true.
    pub posterior: f64,
    /// Surprise: |posterior − prior|, in `[0, 1]`.
    pub surprise: f64,
    /// Disagreement entropy of the raw reports, in `[0, 1]` (1 = evenly
    /// split sources).
    pub disagreement: f64,
    /// Final score: surprise × confidence. High for claims that are both
    /// unexpected and well-supported — low for noisy, contested claims.
    pub score: f64,
}

/// Ranks claims by attention-worthiness, most deserving first.
///
/// `prior` is the background probability a claim is true (e.g. the base
/// rate of "hostile activity in this cell"). Claims whose posterior moved
/// far from the prior *and* are confidently decided rank first; claims that
/// merely attract conflicting chatter rank low — they are likely noise or
/// deliberate distraction.
pub fn rank_attention(
    estimate: &TruthEstimate,
    reports: &[Report],
    prior: f64,
) -> Vec<AttentionScore> {
    let prior = prior.clamp(0.0, 1.0);
    let num_claims = estimate.claim_posterior.len();
    let mut pos = vec![0u64; num_claims];
    let mut neg = vec![0u64; num_claims];
    for r in reports {
        if r.claim < num_claims {
            if r.value {
                pos[r.claim] += 1;
            } else {
                neg[r.claim] += 1;
            }
        }
    }
    let mut scores: Vec<AttentionScore> = estimate
        .claim_posterior
        .iter()
        .enumerate()
        .map(|(c, &p)| {
            let surprise = (p - prior).abs();
            let confidence = p.max(1.0 - p); // in [0.5, 1]
            let disagreement = binary_entropy(pos[c], neg[c]);
            AttentionScore {
                claim: c,
                posterior: p,
                surprise,
                disagreement,
                score: surprise * (2.0 * confidence - 1.0),
            }
        })
        .collect();
    scores.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.claim.cmp(&b.claim)));
    scores
}

/// Entropy of the positive/negative report split, normalized to `[0, 1]`.
/// Zero reports yield zero entropy.
fn binary_entropy(pos: u64, neg: u64) -> f64 {
    let total = pos + neg;
    if total == 0 || pos == 0 || neg == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::{discover, EmConfig};
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn confident_anomalies_outrank_contested_noise() {
        // Hand-built estimate: claim 0 is a confident anomaly (posterior
        // 0.95 vs prior 0.1); claim 1 is contested (posterior 0.5).
        let est = TruthEstimate {
            claim_posterior: vec![0.95, 0.5],
            source_accuracy: vec![],
            iterations: 1,
            converged: true,
        };
        let reports = vec![
            Report { source: 0, claim: 0, value: true },
            Report { source: 1, claim: 0, value: true },
            Report { source: 0, claim: 1, value: true },
            Report { source: 1, claim: 1, value: false },
        ];
        let ranked = rank_attention(&est, &reports, 0.1);
        assert_eq!(ranked[0].claim, 0);
        assert!(ranked[0].score > ranked[1].score);
        assert!(ranked[1].disagreement > 0.99, "claim 1 is evenly split");
    }

    #[test]
    fn scores_are_bounded() {
        let s = ScenarioBuilder::new(20, 50).build(1);
        let est = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
        for a in rank_attention(&est, &s.reports, 0.5) {
            assert!((0.0..=1.0).contains(&a.surprise));
            assert!((0.0..=1.0).contains(&a.disagreement));
            assert!((0.0..=1.0).contains(&a.score));
        }
    }

    #[test]
    fn entropy_edge_cases() {
        assert_eq!(binary_entropy(0, 0), 0.0);
        assert_eq!(binary_entropy(5, 0), 0.0);
        assert!((binary_entropy(5, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_deterministic_with_ties() {
        let est = TruthEstimate {
            claim_posterior: vec![0.5, 0.5, 0.5],
            source_accuracy: vec![],
            iterations: 1,
            converged: true,
        };
        let ranked = rank_attention(&est, &[], 0.5);
        let claims: Vec<usize> = ranked.iter().map(|a| a.claim).collect();
        assert_eq!(claims, vec![0, 1, 2], "ties break by claim index");
    }
}
