//! Two-parameter (Dawid–Skene) truth discovery: per-source sensitivity
//! *and* specificity.
//!
//! The single-accuracy model in [`crate::em`] assumes a source is equally
//! likely to corrupt a true claim as a false one. Real human sensors are
//! asymmetric (ref \[1\]'s estimation-theoretic model): a witness rarely
//! *fabricates* an event (high specificity) but often *misses* one (low
//! sensitivity). This module estimates both per source:
//!
//! * sensitivity `a_i = P(i reports true | claim is true)`
//! * specificity `b_i = P(i reports false | claim is false)`
//!
//! and outperforms the symmetric model whenever the two differ.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scenario::Report;

/// Result of two-parameter truth discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoParamEstimate {
    /// Posterior probability each claim is true.
    pub claim_posterior: Vec<f64>,
    /// Estimated per-source sensitivity.
    pub sensitivity: Vec<f64>,
    /// Estimated per-source specificity.
    pub specificity: Vec<f64>,
    /// EM iterations performed.
    pub iterations: usize,
    /// Whether EM converged before the iteration cap.
    pub converged: bool,
}

impl TwoParamEstimate {
    /// Hard claim decisions at threshold 0.5.
    pub fn claim_values(&self) -> Vec<bool> {
        self.claim_posterior.iter().map(|&p| p >= 0.5).collect()
    }
}

/// Configuration for the two-parameter EM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoParamConfig {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the max posterior change.
    pub tolerance: f64,
    /// Prior probability a claim is true.
    pub claim_prior: f64,
    /// Beta pseudo-counts `(correct, incorrect)` regularizing both rates.
    pub rate_prior: (f64, f64),
}

impl Default for TwoParamConfig {
    fn default() -> Self {
        TwoParamConfig {
            max_iterations: 200,
            tolerance: 1e-6,
            claim_prior: 0.5,
            rate_prior: (4.0, 2.0),
        }
    }
}

/// Runs Dawid–Skene EM over binary reports.
///
/// ```
/// # use iobt_truth::em2::{asymmetric_scenario, discover_two_param, TwoParamConfig};
/// let (reports, truth, _, _) =
///     asymmetric_scenario(30, 100, 0.5, (0.35, 0.5), (0.92, 0.99), 1);
/// let est = discover_two_param(&reports, 30, 100, TwoParamConfig::default());
/// let correct = truth.iter().zip(est.claim_values())
///     .filter(|(t, e)| **t == *e).count();
/// assert!(correct as f64 / 100.0 > 0.75);
/// ```
///
/// # Panics
///
/// Panics if any report references a source or claim out of range.
pub fn discover_two_param(
    reports: &[Report],
    num_sources: usize,
    num_claims: usize,
    config: TwoParamConfig,
) -> TwoParamEstimate {
    for r in reports {
        assert!(r.source < num_sources, "report source out of range");
        assert!(r.claim < num_claims, "report claim out of range");
    }
    let prior = config.claim_prior.clamp(1e-6, 1.0 - 1e-6);
    let mut posterior = vec![prior; num_claims];
    let mut sensitivity: Vec<f64> = vec![0.7; num_sources];
    let mut specificity: Vec<f64> = vec![0.7; num_sources];
    let mut by_claim: Vec<Vec<(usize, bool)>> = vec![Vec::new(); num_claims];
    for r in reports {
        by_claim[r.claim].push((r.source, r.value));
    }
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        // E-step.
        let mut max_delta: f64 = 0.0;
        for (c, rs) in by_claim.iter().enumerate() {
            let mut log_true = prior.ln();
            let mut log_false = (1.0 - prior).ln();
            for &(s, value) in rs {
                let a = sensitivity[s].clamp(1e-6, 1.0 - 1e-6);
                let b = specificity[s].clamp(1e-6, 1.0 - 1e-6);
                if value {
                    log_true += a.ln();
                    log_false += (1.0 - b).ln();
                } else {
                    log_true += (1.0 - a).ln();
                    log_false += b.ln();
                }
            }
            let m = log_true.max(log_false);
            let pt = (log_true - m).exp();
            let pf = (log_false - m).exp();
            let p = pt / (pt + pf);
            max_delta = max_delta.max((p - posterior[c]).abs());
            posterior[c] = p;
        }
        // M-step: expected counts per source, split by latent truth.
        let (pa, pb) = config.rate_prior;
        let mut true_hits = vec![pa; num_sources]; // reported true & claim true
        let mut true_total = vec![pa + pb; num_sources]; // claim true
        let mut false_hits = vec![pa; num_sources]; // reported false & claim false
        let mut false_total = vec![pa + pb; num_sources]; // claim false
        for r in reports {
            let p_true = posterior[r.claim];
            true_total[r.source] += p_true;
            false_total[r.source] += 1.0 - p_true;
            if r.value {
                true_hits[r.source] += p_true;
            } else {
                false_hits[r.source] += 1.0 - p_true;
            }
        }
        for s in 0..num_sources {
            sensitivity[s] = true_hits[s] / true_total[s];
            specificity[s] = false_hits[s] / false_total[s];
        }
        if max_delta < config.tolerance {
            converged = true;
            break;
        }
    }
    TwoParamEstimate {
        claim_posterior: posterior,
        sensitivity,
        specificity,
        iterations,
        converged,
    }
}

/// Generates an *asymmetric* social-sensing scenario: honest witnesses
/// rarely fabricate (specificity ~ `spec`) but often miss events
/// (sensitivity ~ `sens`). Returns `(reports, truth, sens_truth,
/// spec_truth)`.
pub fn asymmetric_scenario(
    num_sources: usize,
    num_claims: usize,
    observe_prob: f64,
    sens: (f64, f64),
    spec: (f64, f64),
    seed: u64,
) -> (Vec<Report>, Vec<bool>, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<bool> = (0..num_claims).map(|_| rng.gen::<f64>() < 0.5).collect();
    let sample = |rng: &mut StdRng, (lo, hi): (f64, f64)| {
        if hi > lo {
            rng.gen_range(lo..hi)
        } else {
            lo
        }
    };
    let sens_truth: Vec<f64> = (0..num_sources).map(|_| sample(&mut rng, sens)).collect();
    let spec_truth: Vec<f64> = (0..num_sources).map(|_| sample(&mut rng, spec)).collect();
    let mut reports = Vec::new();
    for s in 0..num_sources {
        for (c, &t) in truth.iter().enumerate() {
            if rng.gen::<f64>() >= observe_prob {
                continue;
            }
            let value = if t {
                rng.gen::<f64>() < sens_truth[s]
            } else {
                rng.gen::<f64>() >= spec_truth[s]
            };
            reports.push(Report {
                source: s,
                claim: c,
                value,
            });
        }
    }
    (reports, truth, sens_truth, spec_truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::{discover, EmConfig};
    use crate::scenario::ScenarioBuilder;

    fn score(truth: &[bool], estimates: &[bool]) -> f64 {
        let correct = truth
            .iter()
            .zip(estimates)
            .filter(|(t, e)| t == e)
            .count();
        correct as f64 / truth.len().max(1) as f64
    }

    #[test]
    fn recovers_truth_on_symmetric_data() {
        let s = ScenarioBuilder::new(40, 150).observe_prob(0.4).build(1);
        let est = discover_two_param(
            &s.reports,
            s.num_sources,
            s.num_claims,
            TwoParamConfig::default(),
        );
        assert!(s.score_claims(&est.claim_values()) > 0.85);
    }

    #[test]
    fn beats_symmetric_em_on_asymmetric_sources() {
        // Witnesses: high specificity (0.93-0.99), low sensitivity
        // (0.3-0.5). A "true" report is strong evidence; silence is weak.
        let mut two_wins = 0;
        for seed in 0..5 {
            let (reports, truth, _, _) =
                asymmetric_scenario(40, 200, 0.5, (0.3, 0.5), (0.93, 0.99), seed);
            let two = discover_two_param(&reports, 40, 200, TwoParamConfig::default());
            let one = discover(&reports, 40, 200, EmConfig::default());
            let two_acc = score(&truth, &two.claim_values());
            let one_acc = score(&truth, &one.claim_values());
            if two_acc >= one_acc {
                two_wins += 1;
            }
        }
        assert!(
            two_wins >= 4,
            "two-parameter model should win on asymmetric data: {two_wins}/5"
        );
    }

    #[test]
    fn estimates_sensitivity_and_specificity_separately() {
        let (reports, _, sens_truth, spec_truth) =
            asymmetric_scenario(30, 400, 0.8, (0.35, 0.45), (0.9, 0.98), 7);
        let est = discover_two_param(&reports, 30, 400, TwoParamConfig::default());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Estimated rates should track the generating regimes.
        assert!(
            (mean(&est.sensitivity) - mean(&sens_truth)).abs() < 0.12,
            "sensitivity: est {} vs truth {}",
            mean(&est.sensitivity),
            mean(&sens_truth)
        );
        assert!(
            (mean(&est.specificity) - mean(&spec_truth)).abs() < 0.12,
            "specificity: est {} vs truth {}",
            mean(&est.specificity),
            mean(&spec_truth)
        );
        // And the asymmetry must be visible.
        assert!(mean(&est.specificity) > mean(&est.sensitivity) + 0.2);
    }

    #[test]
    fn empty_reports_stay_at_prior() {
        let est = discover_two_param(&[], 3, 4, TwoParamConfig::default());
        assert!(est.claim_posterior.iter().all(|&p| (p - 0.5).abs() < 1e-9));
        assert!(est.converged);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_reports() {
        let r = [Report {
            source: 0,
            claim: 9,
            value: true,
        }];
        discover_two_param(&r, 1, 2, TwoParamConfig::default());
    }

    #[test]
    fn deterministic_scenario_generation() {
        let a = asymmetric_scenario(10, 20, 0.5, (0.4, 0.6), (0.8, 0.9), 3);
        let b = asymmetric_scenario(10, 20, 0.5, (0.4, 0.6), (0.8, 0.9), 3);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
