//! Social-sensing truth discovery for the IoBT (paper §V-A, refs \[1\]–\[4\]).
//!
//! Humans and gray sensors are unreliable, biased, and sometimes
//! adversarial sources; this crate recovers ground truth from their
//! conflicting binary claims. It provides the [EM fact-finder](em)
//! (Dawid–Skene-style joint estimation of claim truth and source
//! accuracy), [voting baselines](vote), a [streaming variant](em::StreamingDiscoverer),
//! and [attention diagnostics](diagnostics) that rank claims by anomaly
//! worthiness. [Synthetic scenarios](scenario) with ground truth drive the
//! experiments.
//!
//! # Examples
//!
//! ```
//! use iobt_truth::prelude::*;
//!
//! let scenario = ScenarioBuilder::new(40, 100)
//!     .observe_prob(0.4)
//!     .adversarial_fraction(0.2)
//!     .build(7);
//! let estimate = discover(
//!     &scenario.reports,
//!     scenario.num_sources,
//!     scenario.num_claims,
//!     EmConfig::default(),
//! );
//! let em_acc = scenario.score_claims(&estimate.claim_values());
//! let vote_acc = scenario.score_claims(&majority_vote(&scenario.reports, scenario.num_claims));
//! assert!(em_acc >= vote_acc - 0.05, "EM should not lose to voting");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod em;
pub mod em2;
pub mod scenario;
pub mod vote;

pub use diagnostics::{rank_attention, AttentionScore};
pub use em::{discover, EmConfig, StreamingDiscoverer, TruthEstimate};
pub use em2::{asymmetric_scenario, discover_two_param, TwoParamConfig, TwoParamEstimate};
pub use scenario::{ClaimId, Report, Scenario, ScenarioBuilder, SourceId};
pub use vote::{majority_vote, weighted_vote};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::{
        discover, discover_two_param, majority_vote, rank_attention, weighted_vote,
        AttentionScore, EmConfig, Report, Scenario, ScenarioBuilder, StreamingDiscoverer,
        TruthEstimate, TwoParamConfig, TwoParamEstimate,
    };
}
