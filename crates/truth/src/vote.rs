//! Voting baselines for truth discovery.
//!
//! [`majority_vote`] is the naive baseline the EM fact-finder is compared
//! against in experiment `f4_learning_services`; [`weighted_vote`] is the
//! classic TruthFinder-style iteration that re-weights sources by agreement
//! without a full probabilistic model.

use crate::scenario::Report;

/// Majority vote per claim. Ties and unreported claims default to `false`.
/// Returns one value per claim in `0..num_claims`.
pub fn majority_vote(reports: &[Report], num_claims: usize) -> Vec<bool> {
    let mut balance = vec![0i64; num_claims];
    for r in reports {
        if r.claim < num_claims {
            balance[r.claim] += if r.value { 1 } else { -1 };
        }
    }
    balance.into_iter().map(|b| b > 0).collect()
}

/// Iterative agreement-weighted voting (TruthFinder-flavoured):
/// source weights and claim values are alternately refined — a claim's
/// score is the weighted sum of its votes, a source's weight is its mean
/// agreement with the current claim decisions.
///
/// Returns `(claim_values, source_weights)`.
pub fn weighted_vote(
    reports: &[Report],
    num_sources: usize,
    num_claims: usize,
    iterations: usize,
) -> (Vec<bool>, Vec<f64>) {
    let mut weights = vec![1.0; num_sources];
    let mut values = majority_vote(reports, num_claims);
    for _ in 0..iterations {
        // Claims from weights.
        let mut score = vec![0.0f64; num_claims];
        for r in reports {
            if r.claim < num_claims && r.source < num_sources {
                let w = weights[r.source];
                score[r.claim] += if r.value { w } else { -w };
            }
        }
        values = score.iter().map(|&s| s > 0.0).collect();
        // Weights from claims: agreement fraction, floored to stay positive.
        let mut agree = vec![0.0f64; num_sources];
        let mut total = vec![0.0f64; num_sources];
        for r in reports {
            if r.claim < num_claims && r.source < num_sources {
                total[r.source] += 1.0;
                if r.value == values[r.claim] {
                    agree[r.source] += 1.0;
                }
            }
        }
        for s in 0..num_sources {
            weights[s] = if total[s] > 0.0 {
                (agree[s] / total[s]).max(0.01)
            } else {
                0.5
            };
        }
    }
    (values, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn majority_vote_works_with_honest_majority() {
        let s = ScenarioBuilder::new(30, 100)
            .honest_reliability(0.8, 0.95)
            .observe_prob(0.5)
            .build(1);
        let acc = s.score_claims(&majority_vote(&s.reports, s.num_claims));
        assert!(acc > 0.9, "majority with honest sources: {acc}");
    }

    #[test]
    fn majority_vote_degrades_under_adversarial_flood() {
        let clean = ScenarioBuilder::new(40, 100).observe_prob(0.5).build(2);
        let attacked = ScenarioBuilder::new(40, 100)
            .observe_prob(0.5)
            .adversarial_fraction(0.45)
            .build(2);
        let acc_clean = clean.score_claims(&majority_vote(&clean.reports, clean.num_claims));
        let acc_attacked =
            attacked.score_claims(&majority_vote(&attacked.reports, attacked.num_claims));
        assert!(acc_clean > acc_attacked, "{acc_clean} vs {acc_attacked}");
    }

    #[test]
    fn weighted_vote_improves_on_majority_with_mixed_reliability() {
        let s = ScenarioBuilder::new(40, 200)
            .honest_reliability(0.5, 0.95)
            .observe_prob(0.5)
            .build(3);
        let maj = s.score_claims(&majority_vote(&s.reports, s.num_claims));
        let (wv, weights) = weighted_vote(&s.reports, s.num_sources, s.num_claims, 10);
        let wacc = s.score_claims(&wv);
        assert!(wacc >= maj - 0.02, "weighted {wacc} vs majority {maj}");
        assert_eq!(weights.len(), s.num_sources);
        assert!(weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn empty_reports_default_false() {
        assert_eq!(majority_vote(&[], 3), vec![false; 3]);
        let (v, w) = weighted_vote(&[], 2, 3, 5);
        assert_eq!(v, vec![false; 3]);
        assert_eq!(w, vec![0.5; 2]);
    }

    #[test]
    fn out_of_range_reports_are_ignored() {
        let r = [Report {
            source: 10,
            claim: 10,
            value: true,
        }];
        assert_eq!(majority_vote(&r, 2), vec![false, false]);
        let (v, _) = weighted_vote(&r, 2, 2, 3);
        assert_eq!(v, vec![false, false]);
    }
}
