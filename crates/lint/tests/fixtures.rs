//! End-to-end test: lint the seeded fixture tree and assert every planted
//! violation is reported with the right rule ID and line, and nothing else.

use iobt_lint::{lint_root, Config, Rule};

fn fixture_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_tree_trips_every_rule_once() {
    let report = lint_root(&fixture_root(), &Config::default()).expect("fixture tree scans");
    assert_eq!(report.files_scanned, 6, "fixture tree has six .rs files");

    let got: Vec<(String, &'static str, u32)> = report
        .violations
        .iter()
        .map(|(path, v)| (path.replace('\\', "/"), v.rule.id(), v.line))
        .collect();
    let want: Vec<(String, &'static str, u32)> = vec![
        // R8: stale allow(hash-iter); R6: save_state without destructure,
        // restore_state missing `pending`, dec_runner order mismatch.
        ("crates/core/src/checkpoint.rs".to_string(), "R8", 12),
        ("crates/core/src/checkpoint.rs".to_string(), "R6", 16),
        ("crates/core/src/checkpoint.rs".to_string(), "R6", 22),
        ("crates/core/src/checkpoint.rs".to_string(), "R6", 37),
        // R7: missing derive(PartialEq), manual Hash impl, unhashed field.
        ("crates/core/src/digest.rs".to_string(), "R7", 5),
        ("crates/core/src/digest.rs".to_string(), "R7", 16),
        ("crates/core/src/digest.rs".to_string(), "R7", 31),
        ("crates/core/src/lib.rs".to_string(), "R3", 6),
        ("crates/core/src/lib.rs".to_string(), "R5", 15),
        ("crates/learning/src/lib.rs".to_string(), "R4", 15),
        ("crates/netsim/src/lib.rs".to_string(), "R1", 16),
        ("crates/netsim/src/lib.rs".to_string(), "R2", 22),
        // R6: rest-pattern destructure in a snapshot save_state.
        ("crates/netsim/src/sim/snapshot.rs".to_string(), "R6", 12),
    ];
    assert_eq!(got, want, "exactly the planted violations, nothing else");
}

#[test]
fn fixture_violations_can_be_silenced_by_path_allowlist() {
    // Silencing a rule for a path makes its in-file allow directives
    // stale, so R8 must be silenced alongside — the config below is the
    // "turn everything off" shape, and the tree must then be clean.
    let config = Config::parse(
        r#"
        [rules.hash-iter]
        allow = ["crates/netsim", "crates/core"]
        [rules.wall-clock]
        allow = ["crates/netsim"]
        [rules.panic]
        allow = ["crates/core"]
        [rules.docs]
        allow = ["crates/core"]
        [rules.entropy]
        allow = ["crates/learning"]
        [rules.state-coverage]
        allow = ["crates/netsim", "crates/core"]
        [rules.digest-coverage]
        allow = ["crates/core"]
        [rules.stale-allow]
        allow = ["crates/netsim", "crates/core"]
        "#,
    )
    .expect("config parses");
    let report = lint_root(&fixture_root(), &config).expect("fixture tree scans");
    assert!(report.is_clean(), "allowlisted: {:?}", report.violations);
}

#[test]
fn fixture_tree_is_invisible_when_skipped() {
    let mut config = Config::default();
    config.skip.push("crates".to_string());
    let report = lint_root(&fixture_root(), &config).expect("fixture tree scans");
    assert_eq!(report.files_scanned, 0);
    assert!(report.is_clean());
}

#[test]
fn rule_ids_round_trip_through_names() {
    for rule in Rule::ALL {
        assert_eq!(Rule::from_name(rule.name()), Some(rule));
    }
}
