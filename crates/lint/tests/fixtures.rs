//! End-to-end test: lint the seeded fixture tree and assert every planted
//! violation is reported with the right rule ID and line, and nothing else.

use iobt_lint::{lint_root, Config, Rule};

fn fixture_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_tree_trips_every_rule_once() {
    let report = lint_root(&fixture_root(), &Config::default()).expect("fixture tree scans");
    assert_eq!(report.files_scanned, 3, "fixture tree has three .rs files");

    let got: Vec<(String, &'static str, u32)> = report
        .violations
        .iter()
        .map(|(path, v)| (path.replace('\\', "/"), v.rule.id(), v.line))
        .collect();
    let want: Vec<(String, &'static str, u32)> = vec![
        ("crates/core/src/lib.rs".to_string(), "R3", 6),
        ("crates/core/src/lib.rs".to_string(), "R5", 15),
        ("crates/learning/src/lib.rs".to_string(), "R4", 15),
        ("crates/netsim/src/lib.rs".to_string(), "R1", 16),
        ("crates/netsim/src/lib.rs".to_string(), "R2", 22),
    ];
    assert_eq!(got, want, "exactly one violation per rule, nothing else");
}

#[test]
fn fixture_violations_can_be_silenced_by_path_allowlist() {
    let config = Config::parse(
        r#"
        [rules.hash-iter]
        allow = ["crates/netsim"]
        [rules.wall-clock]
        allow = ["crates/netsim"]
        [rules.panic]
        allow = ["crates/core"]
        [rules.docs]
        allow = ["crates/core"]
        [rules.entropy]
        allow = ["crates/learning"]
        "#,
    )
    .expect("config parses");
    let report = lint_root(&fixture_root(), &config).expect("fixture tree scans");
    assert!(report.is_clean(), "allowlisted: {:?}", report.violations);
}

#[test]
fn fixture_tree_is_invisible_when_skipped() {
    let mut config = Config::default();
    config.skip.push("crates".to_string());
    let report = lint_root(&fixture_root(), &config).expect("fixture tree scans");
    assert_eq!(report.files_scanned, 0);
    assert!(report.is_clean());
}

#[test]
fn rule_ids_round_trip_through_names() {
    for rule in Rule::ALL {
        assert_eq!(Rule::from_name(rule.name()), Some(rule));
    }
}
