//! Fixture: a "learning" crate with one seeded R4 violation — even though
//! the call sits inside test code, OS entropy is flagged everywhere.

/// Clean: seeded randomness is the required pattern.
pub fn seeded_rng_is_fine(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    #[test]
    fn seeded_entropy_violation() {
        // Seeded R4 violation on the next line (`thread_rng` never lexes
        // from this comment — comments yield no tokens).
        let _ = rand::thread_rng();
    }
}
