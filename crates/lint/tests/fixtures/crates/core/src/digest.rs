//! Fixture: digest types with seeded R7 coverage violations.

/// Seeded R7: a digest type that does not derive `PartialEq`.
#[derive(Debug, Clone)]
struct EndStateDigest {
    delivered: u64,
    dropped: u64,
}

/// Derives equality, but hashes by hand — seeded R7 at the impl.
#[derive(Debug, Clone, PartialEq)]
struct ResilienceReport {
    repairs: u64,
}

impl std::hash::Hash for ResilienceReport {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.repairs);
    }
}

/// Every field must flow into `canonical_string`; `spare` does not.
#[derive(Debug, Clone, PartialEq)]
struct MetricsDigest {
    ticks: u64,
    spare: u64,
}

impl MetricsDigest {
    /// Seeded R7: `spare` is declared but never hashed.
    fn canonical_string(&self) -> String {
        format!("ticks={}", self.ticks)
    }
}
