//! Fixture: the R6 path-scoped checkpoint file with seeded
//! state-coverage violations mirroring the PR 5 bug class, plus a
//! stale allow directive (seeded R8).

struct RunnerState {
    tick: u64,
    seed: u64,
    pending: u32,
}

// Seeded R8 on the next line: nothing here uses hash containers.
// lint: allow(hash-iter) — justified once, but the map is long gone

impl RunnerState {
    /// Seeded R6: persists state without destructuring `Self`.
    fn save_state(&self) -> u64 {
        self.tick ^ self.seed ^ u64::from(self.pending)
    }

    /// Seeded R6: the destructure misses `pending`.
    fn restore_state(&mut self, tick: u64, seed: u64) {
        let Self { tick: t, seed: s } = self;
        *t = tick;
        *s = seed;
    }
}

/// Clean: exhaustive destructure of a sibling struct in a free fn.
fn enc_runner(w: &mut Writer, s: &RunnerState) {
    let RunnerState { tick, seed, pending } = s;
    w.u64(*tick);
    w.u64(*seed);
    w.u32(*pending);
}

/// Seeded R6: reads fields in a different order than `enc_runner` writes.
fn dec_runner(r: &mut Reader) -> RunnerState {
    RunnerState { tick: r.u64(), pending: r.u32(), seed: r.u64() }
}
