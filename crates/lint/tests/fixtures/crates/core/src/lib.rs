//! Fixture: a contract "core" crate with one seeded R3 and one seeded R5
//! violation, plus allowlisted and test-code decoys.

/// Seeded R3 violation inside this documented function.
pub fn seeded_panic(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Clean: invariant-backed expect with a justified allow directive.
pub fn allowed_panic(x: Option<u32>) -> u32 {
    // lint: allow(panic) — x is Some by construction in every caller
    x.expect("always present")
}

pub fn seeded_missing_docs() -> u32 {
    41
}

/// Clean: documented public item with attributes in between.
#[derive(Debug, Clone, Copy)]
pub struct Documented(pub u64);

impl std::fmt::Display for Documented {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1u32).map(|v| v + 1).unwrap(), 2);
        let _ = seeded_panic(Some(3));
    }
}
