//! Fixture: snapshot file with a rest-pattern destructure (seeded R6)
//! next to the clean exhaustive convention.

struct LinkState {
    up: bool,
    latency_us: u64,
}

impl LinkState {
    /// Seeded R6: `..` hides any field added tomorrow.
    fn save_state(&self) -> (bool, u64) {
        let Self { up, .. } = self;
        (*up, self.latency_us)
    }

    /// Clean: the exhaustive destructure convention.
    fn restore_state(&mut self, up: bool, latency_us: u64) {
        let Self { up: u, latency_us: l } = self;
        *u = up;
        *l = latency_us;
    }
}
