//! Fixture: a determinism-scoped "netsim" crate with one seeded R1 and
//! one seeded R2 violation, plus decoys that must NOT be flagged.

// Decoy: HashMap in a comment must not trip R1.
/* Nested /* block comment with HashSet */ still a comment. */

use std::collections::BTreeMap;

/// Clean: a raw string mentioning HashMap is not a violation.
pub fn decoy_strings() -> (&'static str, &'static str) {
    (r#"HashMap " inside raw"#, "Instant::now() in a plain string")
}

/// Seeded R1 violation on the next line.
pub fn seeded_hash_iter() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}

/// Seeded R2 violation on the next line.
pub fn seeded_wall_clock() -> f64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}

/// Clean: allowlisted wall-clock read with a justification.
pub fn allowed_wall_clock() -> f64 {
    let t = std::time::Instant::now(); // lint: allow(wall-clock) — reporting only, never affects results
    t.elapsed().as_secs_f64()
}

/// Clean: deterministic containers.
pub fn clean(m: &BTreeMap<u32, u32>) -> usize {
    m.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_hash_containers() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
