//! Region bookkeeping over the token stream: which lines are test code,
//! which lines belong to attributes or doc comments, and where
//! trait-impl blocks are (their members inherit docs from the trait).
//!
//! Test code is excluded from most rules. A region counts as test code
//! when it is the braced body following `#[cfg(test)]` (including
//! `#[cfg(all(test, …))]`), or a `mod tests { … }` / `mod test { … }`
//! block. `#![cfg(test)]` as an inner attribute marks the whole file.

use std::collections::BTreeSet;

use crate::lexer::{Lexed, Token};

/// Line-classification for one source file.
#[derive(Debug, Clone, Default)]
pub struct FileMap {
    /// Inclusive line spans of test regions.
    test_spans: Vec<(u32, u32)>,
    /// Inclusive line spans of trait-impl blocks (`impl Trait for Type`).
    trait_impl_spans: Vec<(u32, u32)>,
    /// Lines covered by attribute tokens (`#[…]`, possibly multi-line).
    attr_lines: BTreeSet<u32>,
    /// Lines covered by doc comments.
    doc_lines: BTreeSet<u32>,
    /// Lines covered by plain (non-doc) comments.
    comment_lines: BTreeSet<u32>,
    /// Lines that carry at least one code token.
    code_lines: BTreeSet<u32>,
    /// Whole file is test code (`#![cfg(test)]`).
    whole_file_test: bool,
}

impl FileMap {
    /// Whether `line` is inside test code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.whole_file_test || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether `line` is inside a trait-impl block.
    pub fn is_trait_impl_line(&self, line: u32) -> bool {
        self.trait_impl_spans
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether any doc comment covers `line`.
    pub fn is_doc_line(&self, line: u32) -> bool {
        self.doc_lines.contains(&line)
    }

    /// Marks the whole file as test code — used by the engine for files
    /// that live in `tests/`/`benches/`/`examples/` sections, where no
    /// line is library code.
    pub fn with_whole_file_test(mut self) -> FileMap {
        self.whole_file_test = true;
        self
    }

    /// Whether an item starting on `line` is documented: walking upward,
    /// skipping attribute lines, plain comments, and blank lines, the
    /// first significant thing must be a doc comment.
    pub fn has_doc_above(&self, line: u32) -> bool {
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.doc_lines.contains(&l) {
                return true;
            }
            if self.attr_lines.contains(&l) || self.comment_lines.contains(&l) {
                continue;
            }
            if self.code_lines.contains(&l) {
                return false; // some other code line: no adjacent docs
            }
            // Blank line: doc comments attach through whitespace.
        }
        false
    }
}

/// Builds the [`FileMap`] for a lexed file.
pub fn map_file(lexed: &Lexed) -> FileMap {
    let mut map = FileMap::default();
    for c in &lexed.comments {
        for l in c.line..=c.end_line {
            if c.doc {
                map.doc_lines.insert(l);
            } else {
                map.comment_lines.insert(l);
            }
        }
    }
    for t in &lexed.tokens {
        map.code_lines.insert(t.line);
    }

    let toks = &lexed.tokens;
    let mut i = 0usize;
    let mut brace_depth = 0i64;
    // (entry depth, start line) of currently-open test / trait-impl blocks.
    let mut open_tests: Vec<(i64, u32)> = Vec::new();
    let mut open_impls: Vec<(i64, u32)> = Vec::new();
    // A `#[cfg(test)]` or `mod tests` seen, waiting for its `{`.
    let mut pending_test = false;
    // An `impl … for …` header seen, waiting for its `{`.
    let mut pending_impl = false;
    // Paren/bracket depth when the pending flag was raised, so a `;` at
    // that depth cancels it (e.g. `#[cfg(test)] use foo;`).
    let mut pending_delim_depth = 0i64;
    let mut delim_depth = 0i64;
    // Inside an `impl` header, between `impl` and `{`.
    let mut impl_header = false;

    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') {
            // Attribute: `#[…]` or `#![…]`.
            let mut j = i + 1;
            let inner = j < toks.len() && toks[j].is_punct('!');
            if inner {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('[') {
                let mut depth = 0i64;
                let mut has_cfg = false;
                let mut has_test = false;
                while j < toks.len() {
                    let a = &toks[j];
                    map.attr_lines.insert(a.line);
                    if a.is_punct('[') {
                        depth += 1;
                    } else if a.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if a.is_ident("cfg") {
                        has_cfg = true;
                    } else if a.is_ident("test") {
                        has_test = true;
                    }
                    j += 1;
                }
                map.attr_lines.insert(t.line);
                if has_cfg && has_test {
                    if inner {
                        map.whole_file_test = true;
                    } else {
                        pending_test = true;
                        pending_delim_depth = delim_depth;
                    }
                }
                i = j + 1;
                continue;
            }
        }
        if t.is_ident("mod")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("tests") || n.is_ident("test"))
        {
            pending_test = true;
            pending_delim_depth = delim_depth;
        }
        if t.is_ident("impl") {
            impl_header = true;
            pending_impl = false;
        }
        if impl_header && t.is_ident("for") {
            pending_impl = true;
        }
        match () {
            _ if t.is_punct('(') || t.is_punct('[') => delim_depth += 1,
            _ if t.is_punct(')') || t.is_punct(']') => delim_depth -= 1,
            _ if t.is_punct('{') => {
                brace_depth += 1;
                if pending_test {
                    open_tests.push((brace_depth, t.line));
                    pending_test = false;
                }
                if impl_header {
                    if pending_impl {
                        open_impls.push((brace_depth, t.line));
                    }
                    impl_header = false;
                    pending_impl = false;
                }
            }
            _ if t.is_punct('}') => {
                if open_tests.last().is_some_and(|&(d, _)| d == brace_depth) {
                    let (_, start) = open_tests.pop().unwrap_or((0, t.line));
                    map.test_spans.push((start, t.line));
                }
                if open_impls.last().is_some_and(|&(d, _)| d == brace_depth) {
                    let (_, start) = open_impls.pop().unwrap_or((0, t.line));
                    map.trait_impl_spans.push((start, t.line));
                }
                brace_depth -= 1;
            }
            _ if t.is_punct(';') => {
                if pending_test && delim_depth <= pending_delim_depth {
                    pending_test = false;
                }
                if impl_header && delim_depth == 0 {
                    impl_header = false;
                    pending_impl = false;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Unterminated regions (malformed source): close at EOF.
    let last_line = toks.last().map(|t| t.line).unwrap_or(1);
    for (_, start) in open_tests {
        map.test_spans.push((start, last_line));
    }
    for (_, start) in open_impls {
        map.trait_impl_spans.push((start, last_line));
    }
    map
}

/// Convenience: lex + map in one call (used by tests).
pub fn map_source(src: &str) -> FileMap {
    map_file(&crate::lexer::lex(src))
}

/// Finds the matching token sequence `pat` (all idents/puncts must match
/// in order, by text) starting at `toks[i]`. Helper for the rules.
pub fn seq_matches(toks: &[Token], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, p)| {
        toks.get(i + k)
            .is_some_and(|t| t.text == *p && !t.text.is_empty())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod unit {
    fn helper() {}
}
fn more_lib() {}
";
        let m = map_source(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(3));
        assert!(m.is_test_line(4));
        assert!(m.is_test_line(5));
        assert!(!m.is_test_line(6));
    }

    #[test]
    fn mod_tests_without_attr_is_a_test_region() {
        let src = "fn a() {}\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let m = map_source(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(3));
        assert!(!m.is_test_line(5));
    }

    #[test]
    fn cfg_test_on_use_statement_does_not_open_a_region() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib(x: [u8; 3]) {}\n";
        let m = map_source(src);
        assert!(!m.is_test_line(3), "the fn body is not test code");
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t {\n    fn f() {}\n}\n";
        let m = map_source(src);
        assert!(m.is_test_line(3));
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let m = map_source("#![cfg(test)]\nfn anything() {}\n");
        assert!(m.is_test_line(2));
    }

    #[test]
    fn braces_in_char_literals_do_not_corrupt_spans() {
        let src = "#[cfg(test)]\nmod t {\n    const C: char = '}';\n    fn f() {}\n}\nfn lib() {}\n";
        let m = map_source(src);
        assert!(m.is_test_line(4));
        assert!(!m.is_test_line(6));
    }

    #[test]
    fn trait_impl_blocks_are_tracked() {
        let src = "\
struct S;
impl S {
    pub fn inherent(&self) {}
}
impl std::fmt::Display for S {
    fn fmt(&self) {}
}
";
        let m = map_source(src);
        assert!(!m.is_trait_impl_line(3), "inherent impl is not a trait impl");
        assert!(m.is_trait_impl_line(6));
    }

    #[test]
    fn doc_detection_walks_over_attributes_and_blanks() {
        let src = "\
/// Documented.
#[derive(Debug)]
pub struct A;

/// Documented through a blank line.

pub struct B;
pub struct C;
";
        let m = map_source(src);
        assert!(m.has_doc_above(3), "A");
        assert!(m.has_doc_above(7), "B");
        assert!(!m.has_doc_above(8), "C sits under B's code line");
    }

    #[test]
    fn multiline_attribute_lines_are_all_attr_lines() {
        let src = "/// Doc.\n#[derive(\n    Debug,\n    Clone\n)]\npub struct X;\n";
        let m = map_source(src);
        assert!(m.has_doc_above(6));
    }
}
