//! The `iobt-lint` command-line auditor.
//!
//! ```text
//! iobt-lint [--root DIR] [--config FILE] [--deny-all] [--list-rules]
//! ```
//!
//! Scans every `.rs` file under the root (default: the current
//! directory), applies the R1–R5 invariants, and prints one
//! `path:line: Rn[name] message` diagnostic per violation. With
//! `--deny-all` the process exits non-zero when any violation remains —
//! that is the CI mode. Without it the run is advisory (exit 0).

use std::path::PathBuf;
use std::process::ExitCode;

use iobt_lint::{lint_root, Config, Rule};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    deny_all: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        deny_all: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--deny-all" => args.deny_all = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "usage: iobt-lint [--root DIR] [--config FILE] [--deny-all] [--list-rules]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("iobt-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in Rule::ALL {
            println!("{rule}: scope {:?}", rule.default_scope());
        }
        return ExitCode::SUCCESS;
    }
    let config_path = args.config.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let config = match std::fs::read_to_string(&config_path) {
        Ok(text) => match Config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("iobt-lint: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        },
        // A missing lint.toml is only an error when explicitly requested.
        Err(_) if args.config.is_none() => Config::default(),
        Err(e) => {
            eprintln!("iobt-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match lint_root(&args.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("iobt-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    for (path, v) in &report.violations {
        println!("{path}:{}: {} {}", v.line, v.rule, v.message);
    }
    let n = report.violations.len();
    eprintln!(
        "iobt-lint: {n} violation{} in {} file{} scanned",
        if n == 1 { "" } else { "s" },
        report.files_scanned,
        if report.files_scanned == 1 { "" } else { "s" },
    );
    if args.deny_all && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
