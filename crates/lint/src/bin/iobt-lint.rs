//! The `iobt-lint` command-line auditor.
//!
//! ```text
//! iobt-lint [--root DIR] [--config FILE] [--deny-all] [--list-rules]
//!           [--format text|json] [--baseline FILE] [--write-baseline FILE]
//!           [--explain RULE]
//! ```
//!
//! Scans every `.rs` file under the root (default: the current
//! directory), applies the R1–R8 invariants, and prints one
//! `path:line: Rn[name] message` diagnostic per violation. With
//! `--deny-all` the process exits non-zero when any violation remains —
//! that is the CI mode. Without it the run is advisory (exit 0).
//!
//! `--format json` emits a single machine-readable object with stable
//! key order, for CI diffing. `--baseline FILE` subtracts known findings
//! (per rule and path) so a legacy tree can ratchet down to zero;
//! `--write-baseline FILE` records the current findings as that
//! baseline. `--explain R6` prints the long-form rationale for a rule.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use iobt_lint::{lint_root, Config, Report, Rule, Violation};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    deny_all: bool,
    list_rules: bool,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        deny_all: false,
        list_rules: false,
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--deny-all" => args.deny_all = true,
            "--list-rules" => args.list_rules = true,
            "--format" => match it.next().as_deref() {
                Some("text") => args.format = Format::Text,
                Some("json") => args.format = Format::Json,
                _ => return Err("--format needs `text` or `json`".into()),
            },
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => {
                args.write_baseline =
                    Some(PathBuf::from(it.next().ok_or("--write-baseline needs a file")?));
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule name or ID")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: iobt-lint [--root DIR] [--config FILE] [--deny-all] [--list-rules]\n\
                     \x20                [--format text|json] [--baseline FILE]\n\
                     \x20                [--write-baseline FILE] [--explain RULE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("iobt-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(name) = &args.explain {
        let Some(rule) = Rule::from_name(name) else {
            eprintln!(
                "iobt-lint: unknown rule `{name}` (known: {})",
                Rule::ALL.map(|r| r.id()).join(", ")
            );
            return ExitCode::from(2);
        };
        println!("{}", rule.explain());
        return ExitCode::SUCCESS;
    }
    if args.list_rules {
        for rule in Rule::ALL {
            println!("{rule}: scope {:?}", rule.default_scope());
        }
        return ExitCode::SUCCESS;
    }
    let config_path = args.config.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let config = match std::fs::read_to_string(&config_path) {
        Ok(text) => match Config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("iobt-lint: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        },
        // A missing lint.toml is only an error when explicitly requested.
        Err(_) if args.config.is_none() => Config::default(),
        Err(e) => {
            eprintln!("iobt-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let mut report = match lint_root(&args.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("iobt-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.write_baseline {
        let text = baseline_text(&report);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("iobt-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "iobt-lint: wrote baseline with {} finding{} to {}",
            report.violations.len(),
            if report.violations.len() == 1 { "" } else { "s" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    let mut baselined = 0usize;
    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("iobt-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let budget = match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("iobt-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        baselined = apply_baseline(&mut report, budget);
    }
    match args.format {
        Format::Text => {
            for (path, v) in &report.violations {
                println!("{path}:{}: {} {}", v.line, v.rule, v.message);
            }
        }
        Format::Json => println!("{}", json_report(&report)),
    }
    let n = report.violations.len();
    eprintln!(
        "iobt-lint: {n} violation{} in {} file{} scanned{}",
        if n == 1 { "" } else { "s" },
        report.files_scanned,
        if report.files_scanned == 1 { "" } else { "s" },
        if baselined > 0 {
            format!(" ({baselined} baselined)")
        } else {
            String::new()
        },
    );
    if args.deny_all && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Baseline file format: one `Rn <path> <count>` line per (rule, path)
/// group, sorted — diff-friendly and mergeable. `#` starts a comment.
fn baseline_text(report: &Report) -> String {
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for (path, v) in &report.violations {
        *counts.entry((v.rule.id(), path)).or_insert(0) += 1;
    }
    let mut out = String::from("# iobt-lint findings baseline: `Rn path count` per line.\n");
    for ((rule, path), n) in counts {
        out.push_str(&format!("{rule} {path} {n}\n"));
    }
    out
}

fn parse_baseline(text: &str) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut budget = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path), Some(count), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("line {}: expected `Rn path count`", lineno + 1));
        };
        if Rule::from_name(rule).is_none() {
            return Err(format!("line {}: unknown rule `{rule}`", lineno + 1));
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("line {}: bad count `{count}`", lineno + 1))?;
        *budget.entry((rule.to_string(), path.to_string())).or_insert(0) += count;
    }
    Ok(budget)
}

/// Subtracts baselined findings: the first `count` violations of a rule
/// in a path are forgiven; anything beyond the budget is reported. An
/// over-generous baseline is harmless — the ratchet only moves down when
/// the baseline file is regenerated.
fn apply_baseline(report: &mut Report, mut budget: BTreeMap<(String, String), usize>) -> usize {
    let before = report.violations.len();
    report.violations.retain(|(path, v)| {
        match budget.get_mut(&(v.rule.id().to_string(), path.clone())) {
            Some(n) if *n > 0 => {
                *n -= 1;
                false
            }
            _ => true,
        }
    });
    before - report.violations.len()
}

/// Hand-rolled JSON with stable key order (no serde in the offline
/// sandbox). Schema:
///
/// ```json
/// {"schema":1,"files_scanned":N,
///  "violations":[{"path":"…","line":N,"rule":"R6",
///                 "name":"state-coverage","message":"…"}]}
/// ```
fn json_report(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":1,\"files_scanned\":{},\"violations\":[",
        report.files_scanned
    ));
    for (i, (path, v)) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_violation(path, v));
    }
    out.push_str("]}");
    out
}

fn json_violation(path: &str, v: &Violation) -> String {
    format!(
        "{{\"path\":{},\"line\":{},\"rule\":{},\"name\":{},\"message\":{}}}",
        json_str(path),
        v.line,
        json_str(v.rule.id()),
        json_str(v.rule.name()),
        json_str(&v.message)
    )
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(violations: Vec<(&str, Rule, u32)>) -> Report {
        Report {
            files_scanned: violations.len(),
            violations: violations
                .into_iter()
                .map(|(p, rule, line)| {
                    (
                        p.to_string(),
                        Violation { line, rule, message: "msg with \"quotes\"".into() },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = report_with(vec![("a/b.rs", Rule::StateCoverage, 3)]);
        assert_eq!(
            json_report(&r),
            "{\"schema\":1,\"files_scanned\":1,\"violations\":[\
             {\"path\":\"a/b.rs\",\"line\":3,\"rule\":\"R6\",\
             \"name\":\"state-coverage\",\"message\":\"msg with \\\"quotes\\\"\"}]}"
        );
    }

    #[test]
    fn baseline_round_trips_and_subtracts() {
        let mut r = report_with(vec![
            ("a.rs", Rule::Panic, 1),
            ("a.rs", Rule::Panic, 9),
            ("b.rs", Rule::Docs, 2),
        ]);
        let text = baseline_text(&r);
        assert_eq!(text.lines().count(), 3, "header + two groups: {text}");
        let budget = parse_baseline(&text).unwrap();
        assert_eq!(apply_baseline(&mut r, budget), 3);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn baseline_budget_is_per_rule_and_path() {
        let mut r = report_with(vec![
            ("a.rs", Rule::Panic, 1),
            ("a.rs", Rule::Panic, 9),
            ("b.rs", Rule::Panic, 2),
        ]);
        let budget = parse_baseline("R3 a.rs 1\n").unwrap();
        assert_eq!(apply_baseline(&mut r, budget), 1);
        // One a.rs finding forgiven; the second a.rs and the b.rs ones stay.
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.violations[0].1.line, 9);
        assert_eq!(r.violations[1].0, "b.rs");
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(parse_baseline("# fine\n\nR3 a.rs 1\n").is_ok());
        assert!(parse_baseline("R99 a.rs 1\n").is_err());
        assert!(parse_baseline("R3 a.rs not-a-number\n").is_err());
        assert!(parse_baseline("R3 a.rs 1 extra\n").is_err());
    }
}
