//! A from-scratch, token-level Rust lexer.
//!
//! The linter does not need a full parse tree — every rule it enforces is
//! expressible over the token stream plus a little region bookkeeping
//! (which lines are test code, which lines carry attributes or doc
//! comments). What the lexer *must* get right is the lexical layer, or
//! rule matching produces garbage:
//!
//! * comments never yield tokens, including **nested** block comments
//!   (`/* a /* b */ c */` is one comment in Rust);
//! * string contents never yield tokens, including **raw strings**
//!   (`r#"…"#` with any number of `#`s) and byte/raw-byte strings;
//! * `'a'` (a char literal) and `'a` (a lifetime) are disambiguated, so
//!   a `'}'` char literal cannot corrupt brace-depth tracking;
//! * doc comments (`///`, `//!`, `/** */`, `/*! */`) are recorded per
//!   line so the missing-docs rule can associate them with items.
//!
//! Comments are preserved (with line spans) because lint allow
//! directives live in them.

/// What a token is, as far as the rule engine cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `pub`, `r#match`, …).
    Ident,
    /// A single punctuation character (`{`, `.`, `#`, …).
    Punct,
    /// Any literal: string, raw string, char, byte, number.
    Literal,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Literal`] this is left empty —
    /// no rule inspects literal contents, and literals can be large.
    pub text: String,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment, with the line span it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (same as `line` for `//` comments).
    pub end_line: u32,
    /// Full comment text including the delimiters.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// The output of [`lex`]: the token stream and the comments.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Never fails: unterminated constructs are consumed
/// to end-of-file, which is the forgiving behaviour a linter wants (the
/// compiler will report the real error).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, line: u32, kind: TokenKind, text: String) {
        self.out.tokens.push(Token { line, kind, text });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push_token(line, TokenKind::Punct, c.to_string());
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `///` and `//!` are doc comments; `////…` (four or more) is a
        // plain comment by Rust's rules.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Consume `/*`.
        text.push(self.bump().unwrap_or_default());
        text.push(self.bump().unwrap_or_default());
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push(self.bump().unwrap_or_default());
                    text.push(self.bump().unwrap_or_default());
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    text.push(self.bump().unwrap_or_default());
                    text.push(self.bump().unwrap_or_default());
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: consume to EOF
            }
        }
        // `/**` (not `/**/`) and `/*!` are doc comments.
        let doc = (text.starts_with("/**") && !text.starts_with("/**/") && text.len() > 4)
            || text.starts_with("/*!");
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
            doc,
        });
    }

    /// Ordinary (escaped) string or byte-string body, after the opening
    /// quote position. Consumes through the closing `"`.
    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_token(line, TokenKind::Literal, String::new());
    }

    /// Raw string body: `"` already seen through `hashes` `#`s. Consumes
    /// until `"` followed by `hashes` `#`s.
    fn raw_string_body(&mut self, hashes: usize) {
        let line = self.line;
        self.bump(); // opening "
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push_token(line, TokenKind::Literal, String::new());
    }

    /// Handles the `r` / `b` prefix family: raw strings (`r"…"`,
    /// `r#"…"#`), byte strings (`b"…"`), byte chars (`b'…'`), raw byte
    /// strings (`br#"…"#`), and raw identifiers (`r#match`). Returns
    /// `true` when it consumed something; `false` means "just an
    /// identifier starting with r/b" and the caller falls through.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c0 = self.peek(0);
        let (skip, raw) = match (c0, self.peek(1)) {
            (Some('r'), Some('"' | '#')) => (1, true),
            (Some('b'), Some('"')) => (1, false),
            (Some('b'), Some('\'')) => {
                // Byte char literal: consume `b` then lex as char.
                self.bump();
                self.byte_char();
                return true;
            }
            (Some('b'), Some('r')) if matches!(self.peek(2), Some('"' | '#')) => (2, true),
            _ => return false,
        };
        if raw {
            // Count hashes after the prefix.
            let mut hashes = 0usize;
            while self.peek(skip + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(skip + hashes) != Some('"') {
                // `r#foo`: a raw identifier, not a raw string.
                if skip == 1 && hashes == 1 {
                    let line = self.line;
                    self.bump(); // r
                    self.bump(); // #
                    let mut text = String::from("r#");
                    while let Some(c) = self.peek(0) {
                        if is_ident_continue(c) {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push_token(line, TokenKind::Ident, text);
                    return true;
                }
                return false;
            }
            for _ in 0..(skip + hashes) {
                self.bump();
            }
            self.raw_string_body(hashes);
        } else {
            self.bump(); // the b prefix
            self.string();
        }
        true
    }

    /// Char literal body after an optional `b` prefix: position is at `'`.
    fn byte_char(&mut self) {
        let line = self.line;
        self.bump(); // opening '
        if self.bump() == Some('\\') {
            self.bump();
        }
        // Consume through the closing quote (tolerate malformed input).
        while let Some(c) = self.bump() {
            if c == '\'' {
                break;
            }
        }
        self.push_token(line, TokenKind::Literal, String::new());
    }

    /// Disambiguates `'a'` / `'\n'` / `'}'` (char literals) from `'a` /
    /// `'static` / `'_` (lifetimes). The rule: after `'`, an identifier
    /// character NOT followed by a closing `'` starts a lifetime.
    fn char_or_lifetime(&mut self) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => after != Some('\''),
            _ => false,
        };
        if is_lifetime {
            let line = self.line;
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(line, TokenKind::Lifetime, text);
        } else {
            self.byte_char();
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(line, TokenKind::Ident, text);
    }

    /// Number literal. Consumes digits, `_`, radix prefixes, type
    /// suffixes, exponents, and a fractional part — but leaves `..`
    /// intact so ranges like `0..10` lex as three tokens.
    fn number(&mut self) {
        let line = self.line;
        // Leading digits / radix prefix / suffix letters.
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part only when `.` is followed by a digit.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump(); // .
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent sign (`1e-5`): the `e` was consumed above; a sign
        // followed by digits continues the literal.
        if matches!(self.peek(0), Some('+' | '-'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
            && self
                .chars
                .get(self.pos.wrapping_sub(1))
                .is_some_and(|&c| c == 'e' || c == 'E')
        {
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push_token(line, TokenKind::Literal, String::new());
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn main() {\n    let x = 1;\n}\n");
        let kinds: Vec<_> = l.tokens.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::Ident));
        assert!(kinds.contains(&TokenKind::Punct));
        assert!(kinds.contains(&TokenKind::Literal));
        let x = l.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn nested_block_comments_hide_tokens() {
        let l = lex("/* outer /* inner HashMap */ still comment */ fn f() {}");
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn raw_strings_hide_tokens_and_track_hashes() {
        let l = lex(r####"let s = r#"HashMap " inside"#; let t = r##"a "# b"##; done"####);
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("inside")));
        assert!(l.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn plain_and_byte_strings_hide_tokens() {
        let l = lex(r#"let a = "Instant::now() \" quoted"; let b = b"SystemTime"; end"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("Instant")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("SystemTime")));
        assert!(l.tokens.iter().any(|t| t.is_ident("end")));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let l = lex("fn r#match(r#type: u8) {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("r#match")));
        assert!(l.tokens.iter().any(|t| t.is_ident("r#type")));
    }

    #[test]
    fn char_literal_brace_does_not_break_punct_stream() {
        // If '}' were mislexed as a lifetime, the brace would leak into
        // the token stream and corrupt depth tracking.
        let l = lex("let c = '}'; let o = '{'; let n = '\\n'; fn f() {}");
        let braces: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.is_punct('{') || t.is_punct('}'))
            .collect();
        assert_eq!(braces.len(), 2, "only fn f's braces: {braces:?}");
    }

    #[test]
    fn lifetimes_lex_as_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str, y: &'static str, z: &'_ u8) {}");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static", "'_"]);
    }

    #[test]
    fn byte_char_literals_are_literals() {
        let l = lex(r"let a = b'x'; let b = b'\''; end");
        assert!(l.tokens.iter().any(|t| t.is_ident("end")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let l = lex("/// docs\n//! inner docs\n//// not docs\n// plain\n/** block docs */\n/*! inner */\n/* plain */ fn f() {}");
        let docs: Vec<bool> = l.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, false, true, true, false]);
    }

    #[test]
    fn comments_record_line_spans() {
        let l = lex("// one\n\n/* a\nb\nc */\nfn f() {}");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 3);
        assert_eq!(l.comments[1].end_line, 5);
        let f = l.tokens.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 6);
    }

    #[test]
    fn ranges_do_not_merge_into_float_literals() {
        let l = lex("for i in 0..10 {}");
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn floats_and_exponents_are_single_literals() {
        let l = lex("let a = 1.5e-3; let b = 0xFFu32; let c = 1_000;");
        let lits = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 3);
        // The minus inside 1.5e-3 must not appear as punctuation.
        assert!(!l.tokens.iter().any(|t| t.is_punct('-')));
    }

    #[test]
    fn unterminated_constructs_consume_to_eof_without_panic() {
        for src in ["/* open", "\"open", "r#\"open", "'"] {
            let _ = lex(src); // must not panic or loop forever
        }
    }

    #[test]
    fn idents_include_keywords_and_unicode() {
        assert_eq!(idents("pub fn größe() {}"), vec!["pub", "fn", "größe"]);
    }
}
