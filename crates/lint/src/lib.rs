//! `iobt-lint`: the workspace determinism & panic-discipline auditor.
//!
//! The paper's central engineering demand is *assured* composition and
//! adaptation — quantifiable, reproducible behaviour. The whole
//! experimental methodology of this repo rests on the simulator and the
//! solvers being deterministic and replayable: the same scenario and seed
//! must produce the same composition, the same event trace, and the same
//! assurance numbers, on every machine, forever. Hash-ordered iteration,
//! wall-clock-driven budgets, and OS entropy silently break that property
//! without failing a single test — so this crate makes the invariants
//! machine-checkable instead of conventional.
//!
//! It is a from-scratch static analysis pass (no `syn`, no clippy
//! plugin — the workspace builds fully offline), token-level for R1–R5
//! and item-level for the semantic rules R6–R8:
//!
//! * [`lexer`] — a Rust lexer that gets the lexical layer right (nested
//!   block comments, raw strings, char-vs-lifetime, doc comments);
//! * [`regions`] — line classification: `#[cfg(test)]` / `mod tests`
//!   regions, attribute and doc-comment lines, trait-impl spans;
//! * [`parser`] — a lightweight item parser over the token stream:
//!   structs (fields, derives, cfg-gating), impl blocks, fn bodies, and
//!   the workspace-wide symbol table the semantic rules resolve against;
//! * [`rules`] — the rule catalogue, R1–R8;
//! * [`config`] — `lint.toml` parsing and inline
//!   `// lint: allow(<rule>) — <reason>` directives;
//! * [`engine`] — the workspace walker and two-pass rule dispatch
//!   (parse everything, then check with cross-file context).
//!
//! | ID | name | invariant |
//! |----|------|-----------|
//! | R1 | `hash-iter`  | no `HashMap`/`HashSet` in sim/solver crates |
//! | R2 | `wall-clock` | no `Instant::now`/`SystemTime` affecting results |
//! | R3 | `panic`      | no `unwrap`/`expect` in non-test library code |
//! | R4 | `entropy`    | no `thread_rng`/`from_entropy` anywhere |
//! | R5 | `docs`       | public items in contract crates are documented |
//! | R6 | `state-coverage` | save/restore/encode/decode fns destructure `Self` exhaustively; codec twins agree in order |
//! | R7 | `digest-coverage` | every digest-root field flows into the fingerprint; equality is derived |
//! | R8 | `stale-allow` | allow directives must suppress something |
//!
//! The `iobt-lint` binary (`cargo run -p iobt-lint -- --deny-all`) wires
//! this into CI with `--format json`, a findings baseline for
//! ratcheting, and `--explain Rn` rationale text; see the README's
//! "Static analysis" section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod regions;
pub mod rules;

pub use config::{AllowSet, Config};
pub use engine::{applicable_rules, classify, lint_root, lint_source, Report, Section};
pub use rules::{Rule, Violation};
