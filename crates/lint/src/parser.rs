//! Item-level parsing on top of the token stream: structs (with fields,
//! derives, and cfg attributes), impl blocks (with their fns and body
//! token ranges), trait definitions, and free fns.
//!
//! This is not a full Rust parser — it is the minimal item skeleton the
//! semantic rules (R6 state-coverage, R7 digest-coverage) need:
//!
//! * which structs exist, with their exact field lists (so an
//!   exhaustive destructure can be validated against the declaration);
//! * which fns belong to which impl (so `save_state` can be tied to the
//!   type it snapshots), with body token ranges (so codec-call
//!   sequences can be compared between an encode fn and its decode
//!   twin);
//! * which fns are trait-*definition* default bodies (excluded from
//!   R6 — a default body cannot know the implementor's fields).
//!
//! The parser is forgiving: anything it does not understand is skipped,
//! never an error. Macro-rules bodies are skipped wholesale (their
//! token soup contains `fn`/`struct` keywords that are not items).

use std::collections::BTreeMap;

use crate::lexer::{Lexed, Token, TokenKind};

/// One named field of a struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (raw identifiers keep their `r#` prefix).
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// Identifiers appearing in the field's type, in order (`Vec<(String,
    /// HistogramSnapshot)>` yields `["Vec", "String", "HistogramSnapshot"]`).
    /// Used by R7 to chase nested digest types.
    pub ty_idents: Vec<String>,
}

/// The shape of a struct body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructKind {
    /// `struct S { … }`
    Named,
    /// `struct S(…);` with the field count.
    Tuple(usize),
    /// `struct S;`
    Unit,
}

/// One struct item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Body shape.
    pub kind: StructKind,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<FieldDef>,
    /// Traits listed in `#[derive(…)]` attributes, in order.
    pub derives: Vec<String>,
    /// Whether a `#[cfg(…)]` / `#[cfg_attr(…)]` attribute guards the item.
    pub cfg_gated: bool,
}

/// One fn item, wherever it appears.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Fn name (raw identifiers keep their `r#` prefix).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, *excluding* the outer braces.
    /// Empty for bodyless trait signatures.
    pub body: (usize, usize),
}

impl FnDef {
    /// The body tokens within `lexed`.
    pub fn body_tokens<'a>(&self, lexed: &'a Lexed) -> &'a [Token] {
        &lexed.tokens[self.body.0..self.body.1]
    }
}

/// One `impl` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplDef {
    /// The self type's final path segment (`crate::sim::Core` → `Core`).
    pub self_ty: String,
    /// For `impl Trait for Type`, the trait path's final segment.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Fns declared directly in the impl body.
    pub fns: Vec<FnDef>,
}

/// Everything the item parser extracted from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedFile {
    /// Struct items, in source order (all module levels, flattened).
    pub structs: Vec<StructDef>,
    /// Impl blocks, in source order.
    pub impls: Vec<ImplDef>,
    /// Fns declared outside impls and traits.
    pub free_fns: Vec<FnDef>,
    /// Fns declared inside `trait` definitions (signatures and default
    /// bodies) — R6 never targets these.
    pub trait_fns: Vec<FnDef>,
}

/// Parses the item skeleton of a lexed file.
pub fn parse_items(lexed: &Lexed) -> ParsedFile {
    Parser {
        toks: &lexed.tokens,
        out: ParsedFile::default(),
    }
    .run()
}

struct Parser<'a> {
    toks: &'a [Token],
    out: ParsedFile,
}

impl Parser<'_> {
    fn run(mut self) -> ParsedFile {
        let mut i = 0usize;
        // Attributes seen since the last item: derives + cfg flag.
        let mut derives: Vec<String> = Vec::new();
        let mut cfg_gated = false;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct('#') {
                i = self.attr(i, &mut derives, &mut cfg_gated);
                continue;
            }
            if t.is_ident("macro_rules") {
                i = self.skip_to_close_brace(i);
            } else if t.is_ident("struct") {
                i = self.struct_item(i, std::mem::take(&mut derives), cfg_gated);
                cfg_gated = false;
            } else if t.is_ident("impl") {
                i = self.impl_item(i);
                (derives, cfg_gated) = (Vec::new(), false);
            } else if t.is_ident("trait") {
                i = self.trait_item(i);
                (derives, cfg_gated) = (Vec::new(), false);
            } else if t.is_ident("fn") {
                let (f, next) = self.fn_item(i);
                if let Some(f) = f {
                    self.out.free_fns.push(f);
                }
                i = next;
                (derives, cfg_gated) = (Vec::new(), false);
            } else if t.is_ident("enum")
                || (t.is_ident("union")
                    && self
                        .toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokenKind::Ident))
            {
                // Skip the body so variant fields are not misread.
                // (`union` is contextual: `.union(other)` is a method
                // call, hence the followed-by-identifier guard.)
                i = self.skip_to_close_brace(i);
                (derives, cfg_gated) = (Vec::new(), false);
            } else if t.is_ident("pub") {
                // Visibility never separates an attribute from its item.
                i += 1;
                if self.toks.get(i).is_some_and(|t| t.is_punct('(')) {
                    i = self.skip_balanced(i, '(', ')');
                }
            } else {
                // `mod x {` braces are scanned through transparently;
                // any other identifier means the pending attributes
                // belonged to something we don't model.
                if t.kind == TokenKind::Ident && !t.is_ident("unsafe") {
                    derives.clear();
                    cfg_gated = false;
                }
                i += 1;
            }
        }
        self.out
    }

    /// Parses one `#[…]` / `#![…]` attribute starting at the `#`;
    /// records derives and cfg-gating. Returns the index after `]`.
    fn attr(&mut self, i: usize, derives: &mut Vec<String>, cfg_gated: &mut bool) -> usize {
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !self.toks.get(j).is_some_and(|t| t.is_punct('[')) {
            return i + 1; // `#` that is not an attribute (shebang leftovers)
        }
        let first = self.toks.get(j + 1);
        let is_derive = first.is_some_and(|t| t.is_ident("derive"));
        if first.is_some_and(|t| t.is_ident("cfg") || t.is_ident("cfg_attr")) {
            *cfg_gated = true;
        }
        let mut depth = 0i64;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            } else if is_derive && t.kind == TokenKind::Ident && !t.is_ident("derive") {
                derives.push(t.text.clone());
            }
            j += 1;
        }
        j
    }

    /// Skips angle-bracketed generics starting at `<`. Returns the index
    /// after the matching `>`. `->` arrows do not count as closers.
    fn skip_generics(&self, mut i: usize) -> usize {
        let mut depth = 0i64;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                let arrow = i > 0 && self.toks[i - 1].is_punct('-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            i += 1;
        }
        i
    }

    /// Skips from an opening context to just after the brace matching the
    /// next `{`. Used for enum/union/macro bodies.
    fn skip_to_close_brace(&self, mut i: usize) -> usize {
        while i < self.toks.len() && !self.toks[i].is_punct('{') {
            if self.toks[i].is_punct(';') {
                return i + 1; // bodyless (`mod x;` style)
            }
            i += 1;
        }
        self.skip_balanced(i, '{', '}')
    }

    /// With `toks[i]` the opening delimiter, returns the index just after
    /// its match.
    fn skip_balanced(&self, mut i: usize, open: char, close: char) -> usize {
        let mut depth = 0i64;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }

    /// Parses `struct Name …` starting at the `struct` keyword.
    fn struct_item(&mut self, i: usize, derives: Vec<String>, cfg_gated: bool) -> usize {
        let line = self.toks[i].line;
        let Some(name_tok) = self.toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            return i + 1;
        };
        let name = name_tok.text.clone();
        let mut j = i + 2;
        if self.toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_generics(j);
        }
        // Optional where clause before the body: scan to `{`, `(`, or `;`
        // outside nested delimiters and generics.
        let mut angle = 0i64;
        let mut paren = 0i64;
        let mut kind = StructKind::Unit;
        let mut body_at = j;
        let mut where_seen = false;
        while let Some(t) = self.toks.get(body_at) {
            if angle <= 0 && paren == 0 {
                if t.is_punct(';') {
                    kind = StructKind::Unit;
                    break;
                }
                if t.is_punct('{') {
                    kind = StructKind::Named;
                    break;
                }
                if t.is_punct('(') && !where_seen {
                    kind = StructKind::Tuple(0);
                    break;
                }
            }
            if t.is_ident("where") {
                where_seen = true;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && body_at > 0 && !self.toks[body_at - 1].is_punct('-') {
                angle -= 1;
            } else if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            }
            body_at += 1;
        }
        match kind {
            StructKind::Unit => {
                self.out.structs.push(StructDef {
                    name,
                    line,
                    kind,
                    fields: Vec::new(),
                    derives,
                    cfg_gated,
                });
                body_at + 1
            }
            StructKind::Tuple(_) => {
                let end = self.skip_balanced(body_at, '(', ')');
                let arity = self.tuple_arity(body_at + 1, end.saturating_sub(1));
                self.out.structs.push(StructDef {
                    name,
                    line,
                    kind: StructKind::Tuple(arity),
                    fields: Vec::new(),
                    derives,
                    cfg_gated,
                });
                end
            }
            StructKind::Named => {
                let end = self.skip_balanced(body_at, '{', '}');
                let fields = self.named_fields(body_at + 1, end.saturating_sub(1));
                self.out.structs.push(StructDef {
                    name,
                    line,
                    kind,
                    fields,
                    derives,
                    cfg_gated,
                });
                end
            }
        }
    }

    /// Counts tuple-struct fields between token indices (exclusive of the
    /// parens): top-level comma count + 1 when non-empty.
    fn tuple_arity(&self, from: usize, to: usize) -> usize {
        if from >= to {
            return 0;
        }
        let mut depth = 0i64;
        let mut arity = 1usize;
        let mut trailing_comma = false;
        for t in &self.toks[from..to] {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('>') {
                depth -= 1;
            } else if t.is_punct(',') && depth == 0 {
                arity += 1;
                trailing_comma = true;
                continue;
            }
            trailing_comma = false;
        }
        arity - usize::from(trailing_comma)
    }

    /// Parses named fields between token indices (exclusive of braces).
    fn named_fields(&self, from: usize, to: usize) -> Vec<FieldDef> {
        let mut fields = Vec::new();
        let mut j = from;
        while j < to {
            let t = &self.toks[j];
            // Skip attributes on fields.
            if t.is_punct('#') {
                let mut k = j + 1;
                if self.toks.get(k).is_some_and(|t| t.is_punct('[')) {
                    k = self.skip_balanced(k, '[', ']');
                }
                j = k;
                continue;
            }
            if t.is_ident("pub") {
                j += 1;
                if self.toks.get(j).is_some_and(|t| t.is_punct('(')) {
                    j = self.skip_balanced(j, '(', ')');
                }
                continue;
            }
            // Field: `name : Type ,`
            if t.kind == TokenKind::Ident && self.toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            {
                let name = t.text.clone();
                let line = t.line;
                let mut k = j + 2;
                let mut depth = 0i64;
                let mut ty_idents = Vec::new();
                while k < to {
                    let ty = &self.toks[k];
                    if ty.is_punct('(') || ty.is_punct('[') || ty.is_punct('{') {
                        depth += 1;
                    } else if ty.is_punct(')') || ty.is_punct(']') || ty.is_punct('}') {
                        depth -= 1;
                    } else if ty.is_punct('<') {
                        depth += 1;
                    } else if ty.is_punct('>') && !self.toks[k - 1].is_punct('-') {
                        depth -= 1;
                    } else if ty.is_punct(',') && depth == 0 {
                        break;
                    } else if ty.kind == TokenKind::Ident {
                        ty_idents.push(ty.text.clone());
                    }
                    k += 1;
                }
                fields.push(FieldDef {
                    name,
                    line,
                    ty_idents,
                });
                j = k + 1;
                continue;
            }
            j += 1;
        }
        fields
    }

    /// Parses `impl … { … }` starting at the `impl` keyword.
    fn impl_item(&mut self, i: usize) -> usize {
        let line = self.toks[i].line;
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_generics(j);
        }
        // Collect the header up to `{`, splitting on a top-level `for`.
        let mut pre_for: Vec<&Token> = Vec::new();
        let mut post_for: Vec<&Token> = Vec::new();
        let mut saw_for = false;
        let mut angle = 0i64;
        while let Some(t) = self.toks.get(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !self.toks[j - 1].is_punct('-') {
                angle -= 1;
            }
            if angle <= 0 {
                if t.is_punct('{') {
                    break;
                }
                if t.is_punct(';') {
                    return j + 1; // `impl Trait for Type;` (unusual) — skip
                }
                if t.is_ident("for") {
                    saw_for = true;
                    j += 1;
                    continue;
                }
                if t.is_ident("where") {
                    // The rest of the header is bounds; stop collecting.
                    while let Some(w) = self.toks.get(j) {
                        if w.is_punct('{') {
                            break;
                        }
                        j += 1;
                    }
                    break;
                }
            }
            if saw_for {
                post_for.push(t);
            } else {
                pre_for.push(t);
            }
            j += 1;
        }
        let last_ident = |toks: &[&Token]| -> String {
            let mut depth = 0i64;
            let mut name = String::new();
            for (k, t) in toks.iter().enumerate() {
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') && !(k > 0 && toks[k - 1].is_punct('-')) {
                    depth -= 1;
                } else if depth == 0 && t.kind == TokenKind::Ident && !t.is_ident("dyn") {
                    name = t.text.clone();
                }
            }
            name
        };
        let (self_ty, trait_name) = if saw_for {
            (last_ident(&post_for), Some(last_ident(&pre_for)))
        } else {
            (last_ident(&pre_for), None)
        };
        if !self.toks.get(j).is_some_and(|t| t.is_punct('{')) {
            return j;
        }
        let end = self.skip_balanced(j, '{', '}');
        let fns = self.body_fns(j + 1, end.saturating_sub(1));
        self.out.impls.push(ImplDef {
            self_ty,
            trait_name,
            line,
            fns,
        });
        end
    }

    /// Parses `trait Name { … }`; its fns are recorded as trait fns.
    fn trait_item(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        while j < self.toks.len() && !self.toks[j].is_punct('{') {
            if self.toks[j].is_punct(';') {
                return j + 1; // `trait Alias = …;` has no body
            }
            j += 1;
        }
        if j >= self.toks.len() {
            return j;
        }
        let end = self.skip_balanced(j, '{', '}');
        let fns = self.body_fns(j + 1, end.saturating_sub(1));
        self.out.trait_fns.extend(fns);
        end
    }

    /// Collects fns declared at the top level of a brace-delimited body
    /// (an impl or trait body), skipping over nested braces.
    fn body_fns(&self, from: usize, to: usize) -> Vec<FnDef> {
        let mut fns = Vec::new();
        let mut j = from;
        while j < to {
            let t = &self.toks[j];
            if t.is_ident("fn") {
                let (f, next) = self.fn_item(j);
                if let Some(f) = f {
                    fns.push(f);
                }
                j = next;
            } else if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                // Nested delimiters (const initialisers, etc.): skip.
                let close = match t.text.as_str() {
                    "{" => '}',
                    "(" => ')',
                    _ => ']',
                };
                j = self.skip_balanced(j, t.text.chars().next().unwrap_or('{'), close);
            } else {
                j += 1;
            }
        }
        fns
    }

    /// Parses one fn starting at the `fn` keyword. Returns the fn (None
    /// when malformed) and the index after the body (or the `;`).
    fn fn_item(&self, i: usize) -> (Option<FnDef>, usize) {
        let line = self.toks[i].line;
        let Some(name_tok) = self.toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            return (None, i + 1);
        };
        let name = name_tok.text.clone();
        let mut j = i + 2;
        if self.toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_generics(j);
        }
        if self.toks.get(j).is_some_and(|t| t.is_punct('(')) {
            j = self.skip_balanced(j, '(', ')');
        }
        // Return type / where clause: scan to the body `{` or a `;`
        // (bodyless trait signature), tracking generics depth so
        // `-> Result<(), Box<dyn Error>>` cannot end the scan early.
        let mut angle = 0i64;
        while let Some(t) = self.toks.get(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !self.toks[j - 1].is_punct('-') {
                angle -= 1;
            } else if angle <= 0 && t.is_punct(';') {
                return (
                    Some(FnDef {
                        name,
                        line,
                        body: (j, j),
                    }),
                    j + 1,
                );
            } else if angle <= 0 && t.is_punct('{') {
                let end = self.skip_balanced(j, '{', '}');
                return (
                    Some(FnDef {
                        name,
                        line,
                        body: (j + 1, end.saturating_sub(1)),
                    }),
                    end,
                );
            }
            j += 1;
        }
        (None, j)
    }
}

/// A struct signature in the workspace symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructSig {
    /// Body shape.
    pub kind: StructKind,
    /// Named field names, in declaration order.
    pub fields: Vec<String>,
    /// Field type identifiers, per field (same order as `fields`).
    pub field_ty_idents: Vec<Vec<String>>,
    /// Derive list.
    pub derives: Vec<String>,
    /// Defining file (relative path) and line.
    pub decl: (String, u32),
    /// Two same-named structs with different shapes exist in the crate —
    /// field validation is skipped for ambiguous names.
    pub ambiguous: bool,
}

/// Struct signatures across the workspace, keyed by `(crate, name)`.
///
/// Built once per lint run from every parsed file, then consulted by the
/// semantic rules. `cfg`-gated duplicates (e.g. one definition per
/// platform) make a name ambiguous rather than guessing which is live.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    structs: BTreeMap<(String, String), StructSig>,
}

impl SymbolTable {
    /// Registers every struct of a parsed file under `crate_name`.
    pub fn add_file(&mut self, crate_name: &str, rel_path: &str, parsed: &ParsedFile) {
        for s in &parsed.structs {
            let key = (crate_name.to_string(), s.name.clone());
            let sig = StructSig {
                kind: s.kind,
                fields: s.fields.iter().map(|f| f.name.clone()).collect(),
                field_ty_idents: s.fields.iter().map(|f| f.ty_idents.clone()).collect(),
                derives: s.derives.clone(),
                decl: (rel_path.to_string(), s.line),
                ambiguous: false,
            };
            match self.structs.get_mut(&key) {
                None => {
                    self.structs.insert(key, sig);
                }
                Some(existing) => {
                    if existing.kind != sig.kind || existing.fields != sig.fields {
                        existing.ambiguous = true;
                    }
                }
            }
        }
    }

    /// Looks up a struct by crate and name.
    pub fn lookup(&self, crate_name: &str, name: &str) -> Option<&StructSig> {
        self.structs
            .get(&(crate_name.to_string(), name.to_string()))
    }

    /// Looks up a struct by name alone, succeeding only when exactly one
    /// crate defines it (cross-crate destructures like `RecorderCheckpoint`
    /// in `core` code resolve through this).
    pub fn lookup_global(&self, name: &str) -> Option<&StructSig> {
        let mut hits = self
            .structs
            .iter()
            .filter(|((_, n), _)| n == name)
            .map(|(_, sig)| sig);
        let first = hits.next()?;
        hits.next().is_none().then_some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&lex(src))
    }

    #[test]
    fn named_struct_fields_and_derives() {
        let p = parse(
            "#[derive(Debug, Clone, PartialEq)]\npub struct S {\n    pub a: u32,\n    b: Vec<(String, Inner)>,\n}\n",
        );
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "S");
        assert_eq!(s.kind, StructKind::Named);
        assert_eq!(s.derives, vec!["Debug", "Clone", "PartialEq"]);
        assert_eq!(
            s.fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(s.fields[1].ty_idents, vec!["Vec", "String", "Inner"]);
    }

    #[test]
    fn generics_with_where_clauses() {
        let p = parse(
            "struct Wrap<T, const N: usize>\nwhere\n    T: Clone + PartialOrd<T>,\n{\n    items: [T; N],\n    len: usize,\n}\n",
        );
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "Wrap");
        assert_eq!(
            s.fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["items", "len"]
        );
    }

    #[test]
    fn tuple_and_unit_structs() {
        let p = parse("struct Id(pub u64);\nstruct Pair(u32, u32,);\nstruct Marker;\nstruct Empty();\n");
        let kinds: Vec<_> = p.structs.iter().map(|s| (s.name.as_str(), s.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                ("Id", StructKind::Tuple(1)),
                ("Pair", StructKind::Tuple(2)),
                ("Marker", StructKind::Unit),
                ("Empty", StructKind::Tuple(0)),
            ]
        );
    }

    #[test]
    fn cfg_attr_marks_struct_gated() {
        let p = parse(
            "#[cfg_attr(feature = \"x\", derive(Default))]\nstruct A { v: u8 }\n#[cfg(unix)]\nstruct B { v: u8 }\nstruct C { v: u8 }\n",
        );
        assert_eq!(p.structs.len(), 3);
        assert!(p.structs[0].cfg_gated);
        assert!(p.structs[1].cfg_gated);
        assert!(!p.structs[2].cfg_gated);
    }

    #[test]
    fn nested_mods_are_flattened() {
        let p = parse(
            "mod outer {\n    pub mod inner {\n        pub struct Deep { x: u8 }\n        impl Deep { pub fn get(&self) -> u8 { self.x } }\n    }\n}\n",
        );
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].name, "Deep");
        assert_eq!(p.impls.len(), 1);
        assert_eq!(p.impls[0].self_ty, "Deep");
        assert_eq!(p.impls[0].fns[0].name, "get");
    }

    #[test]
    fn raw_identifiers_survive() {
        let p = parse("struct r#Struct { r#type: u8 }\nimpl r#Struct { fn r#fn(&self) {} }\n");
        assert_eq!(p.structs[0].name, "r#Struct");
        assert_eq!(p.structs[0].fields[0].name, "r#type");
        assert_eq!(p.impls[0].fns[0].name, "r#fn");
    }

    #[test]
    fn impl_blocks_carry_trait_and_self_ty() {
        let p = parse(
            "impl Foo { fn a(&self) {} }\nimpl<T> Display for Bar<T> { fn fmt(&self) {} }\nimpl crate::sim::Behavior for Baz { fn save_state(&self) {} }\n",
        );
        let heads: Vec<_> = p
            .impls
            .iter()
            .map(|i| (i.self_ty.as_str(), i.trait_name.as_deref()))
            .collect();
        assert_eq!(
            heads,
            vec![
                ("Foo", None),
                ("Bar", Some("Display")),
                ("Baz", Some("Behavior")),
            ]
        );
    }

    #[test]
    fn trait_default_bodies_are_not_impl_or_free_fns() {
        let p = parse(
            "trait Behavior {\n    fn save_state(&self) -> Option<u8> { None }\n    fn id(&self) -> u32;\n}\nfn free() {}\n",
        );
        assert_eq!(p.impls.len(), 0);
        assert_eq!(
            p.trait_fns.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["save_state", "id"]
        );
        assert_eq!(p.free_fns.len(), 1);
        assert_eq!(p.free_fns[0].name, "free");
    }

    #[test]
    fn fn_bodies_cover_their_tokens_only() {
        let src = "fn a() { inner_a(); }\nfn b() { inner_b(); }\n";
        let lexed = lex(src);
        let p = parse_items(&lexed);
        let a = &p.free_fns[0];
        let b = &p.free_fns[1];
        assert!(a.body_tokens(&lexed).iter().any(|t| t.is_ident("inner_a")));
        assert!(!a.body_tokens(&lexed).iter().any(|t| t.is_ident("inner_b")));
        assert!(b.body_tokens(&lexed).iter().any(|t| t.is_ident("inner_b")));
    }

    #[test]
    fn nested_fns_inside_bodies_are_not_items() {
        let p = parse("fn outer() {\n    fn inner() {}\n    inner();\n}\n");
        assert_eq!(p.free_fns.len(), 1, "inner stays inside outer's body");
        assert_eq!(p.free_fns[0].name, "outer");
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let p = parse(
            "macro_rules! gen {\n    () => { struct NotReal { x: u8 } fn fake() {} };\n}\nstruct Real { y: u8 }\n",
        );
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].name, "Real");
        assert!(p.free_fns.is_empty());
    }

    #[test]
    fn enum_variant_bodies_are_not_structs() {
        let p = parse(
            "enum E {\n    A { x: u8 },\n    B(u32),\n}\nstruct After { z: u8 }\n",
        );
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].name, "After");
    }

    #[test]
    fn complex_return_types_do_not_end_fn_headers_early() {
        let p = parse(
            "fn f() -> Result<Vec<u8>, Box<dyn std::error::Error>> { body_marker(); Ok(vec![]) }\n",
        );
        assert_eq!(p.free_fns.len(), 1);
        let lexed = lex(
            "fn f() -> Result<Vec<u8>, Box<dyn std::error::Error>> { body_marker(); Ok(vec![]) }\n",
        );
        let p = parse_items(&lexed);
        assert!(p.free_fns[0]
            .body_tokens(&lexed)
            .iter()
            .any(|t| t.is_ident("body_marker")));
    }

    #[test]
    fn symbol_table_flags_ambiguous_names() {
        let mut table = SymbolTable::default();
        table.add_file("c", "a.rs", &parse("struct S { x: u8 }\n"));
        table.add_file("c", "b.rs", &parse("struct S { y: u8 }\n"));
        assert!(table.lookup("c", "S").is_some_and(|s| s.ambiguous));
        table.add_file("d", "c.rs", &parse("struct S { x: u8 }\n"));
        assert!(table.lookup("d", "S").is_some_and(|s| !s.ambiguous));
    }
}
