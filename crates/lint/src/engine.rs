//! The workspace walker: finds every `.rs` file under a root, classifies
//! it (crate, section), decides which rules apply, and runs them.
//!
//! Classification is purely path-based, mirroring cargo's layout:
//!
//! | path                         | section    |
//! |------------------------------|------------|
//! | `crates/<c>/src/bin/…`       | `Bin`      |
//! | `crates/<c>/src/…`, `src/…`  | `Lib`      |
//! | `…/tests/…`, `tests/…`       | `Tests`    |
//! | `…/benches/…`                | `Benches`  |
//! | `…/examples/…`, `examples/…` | `Examples` |
//!
//! Rule applicability: R1/R2 run on `Lib`+`Bin` of their scoped crates;
//! R3 on all `Lib` code (panic discipline is a library property); R4
//! everywhere (OS entropy is never acceptable); R5 on `Lib` of the
//! contract crates; R6 on `Lib`+`Bin` of its scoped crates plus any file
//! listed in its `paths` config; R7 on `Lib` of its scoped crates; R8
//! everywhere (a stale directive is stale wherever it sits).
//!
//! Since the semantic rules (R6/R7) need cross-file context, linting is
//! two-pass: pass one lexes/parses every file and builds the workspace
//! [`SymbolTable`]; pass two runs the rules and filters through the
//! allow directives.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{AllowSet, Config};
use crate::lexer::{lex, Lexed};
use crate::parser::{parse_items, ParsedFile, SymbolTable};
use crate::regions::{map_file, FileMap};
use crate::rules::{
    apply_allows, check_digest_coverage, check_file_raw, FileInput, Rule, Violation,
};

/// Which cargo target-kind a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `src/` of a crate (excluding `src/bin`).
    Lib,
    /// `src/bin/` binaries.
    Bin,
    /// Integration tests (`tests/` directories).
    Tests,
    /// Criterion/benchmark code (`benches/` directories).
    Benches,
    /// Example programs (`examples/` directories).
    Examples,
    /// Anything else (scripts, fixtures outside known layouts).
    Other,
}

/// Path-derived identity of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate name (`crates/<name>/…`), or the workspace facade for root
    /// `src/`, or `None` for root-level `tests/`/`examples/`.
    pub crate_name: Option<String>,
    /// The target kind.
    pub section: Section,
}

/// Classifies a `/`-separated relative path.
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest): (Option<String>, &[&str]) = match parts.as_slice() {
        ["crates", name, rest @ ..] => (Some((*name).to_string()), rest),
        rest => (None, rest),
    };
    let section = match rest {
        ["src", "bin", ..] => Section::Bin,
        ["src", ..] => Section::Lib,
        ["tests", ..] => Section::Tests,
        ["benches", ..] => Section::Benches,
        ["examples", ..] => Section::Examples,
        _ => Section::Other,
    };
    // Root `src/` belongs to the facade crate `iobt`.
    let crate_name = match (&crate_name, section) {
        (None, Section::Lib | Section::Bin) => Some("iobt".to_string()),
        _ => crate_name,
    };
    FileClass { crate_name, section }
}

/// The rules that apply to a file, given the config.
pub fn applicable_rules(class: &FileClass, rel_path: &str, config: &Config) -> Vec<Rule> {
    let in_scope = |rule: Rule| -> bool {
        class
            .crate_name
            .as_deref()
            .is_some_and(|c| config.scope_of(rule).iter().any(|s| s == c))
    };
    Rule::ALL
        .into_iter()
        .filter(|&rule| match rule {
            Rule::HashIter | Rule::WallClock => {
                matches!(class.section, Section::Lib | Section::Bin) && in_scope(rule)
            }
            Rule::Panic => class.section == Section::Lib,
            Rule::Entropy => true,
            Rule::Docs => class.section == Section::Lib && in_scope(rule),
            Rule::StateCoverage => {
                (matches!(class.section, Section::Lib | Section::Bin) && in_scope(rule))
                    || r6_path_scoped(rel_path, config)
            }
            Rule::DigestCoverage => class.section == Section::Lib && in_scope(rule),
            // Stale directives are reported wherever they sit — a dead
            // exemption in a test file is just as misleading.
            Rule::StaleAllow => true,
        })
        .filter(|&rule| !config.path_allowed(rule, rel_path))
        .collect()
}

/// Whether `rel_path` is one of R6's `paths = […]` files, where the
/// exhaustiveness convention applies to every fn, not just the
/// `save_state`/`restore_state` pairs.
fn r6_path_scoped(rel_path: &str, config: &Config) -> bool {
    config
        .paths_of(Rule::StateCoverage)
        .iter()
        .any(|p| p == rel_path)
}

/// The result of linting a tree.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// `(relative path, violation)` pairs, sorted by path then line.
    pub violations: Vec<(String, Violation)>,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One fully-analysed file, owning pass-one artifacts.
struct Unit {
    rel_path: String,
    crate_name: Option<String>,
    lexed: Lexed,
    map: FileMap,
    parsed: ParsedFile,
    allows: AllowSet,
    rules: Vec<Rule>,
    r6_path_scoped: bool,
}

/// Lints every `.rs` file under `root` according to `config`.
pub fn lint_root(root: &Path, config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();

    // Pass one: lex, parse, classify, and build the symbol table.
    let mut units: Vec<Unit> = Vec::new();
    let mut table = SymbolTable::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let unit = analyse(&rel, &src, config);
        if let Some(crate_name) = &unit.crate_name {
            table.add_file(crate_name, &rel, &unit.parsed);
        }
        units.push(unit);
    }

    // Pass two: per-file rules, then the workspace-wide R7 pass, then the
    // allow-directive filter (which implements R8).
    let mut report = Report {
        files_scanned: units.len(),
        violations: Vec::new(),
    };
    let inputs: Vec<FileInput> = units.iter().map(file_input).collect();
    let mut raw: Vec<Vec<Violation>> = units
        .iter()
        .zip(&inputs)
        .map(|(u, input)| check_file_raw(input, &table, &u.rules, u.r6_path_scoped))
        .collect();
    let r7_applicable: Vec<bool> = units
        .iter()
        .map(|u| u.rules.contains(&Rule::DigestCoverage))
        .collect();
    let mut digest_violations = Vec::new();
    check_digest_coverage(
        &inputs,
        &config.types_of(Rule::DigestCoverage),
        &r7_applicable,
        &mut digest_violations,
    );
    for (i, v) in digest_violations {
        raw[i].push(v);
    }
    for (u, raw) in units.iter().zip(raw) {
        let stale_check = u.rules.contains(&Rule::StaleAllow);
        for v in apply_allows(raw, &u.allows, stale_check) {
            report.violations.push((u.rel_path.clone(), v));
        }
    }
    Ok(report)
}

/// Lints one file's source text under its relative path. Exposed so the
/// fixture tests (and future editor integrations) can lint in-memory
/// content. Cross-file context is limited to this one file: R6 resolves
/// only structs declared here, and R7 sees only this file's digest fns.
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> Vec<Violation> {
    let unit = analyse(rel_path, source, config);
    if unit.rules.is_empty() {
        return Vec::new();
    }
    let mut table = SymbolTable::default();
    if let Some(crate_name) = &unit.crate_name {
        table.add_file(crate_name, rel_path, &unit.parsed);
    }
    let input = file_input(&unit);
    let mut raw = check_file_raw(&input, &table, &unit.rules, unit.r6_path_scoped);
    if unit.rules.contains(&Rule::DigestCoverage) {
        let mut digest_violations = Vec::new();
        check_digest_coverage(
            std::slice::from_ref(&input),
            &config.types_of(Rule::DigestCoverage),
            &[true],
            &mut digest_violations,
        );
        raw.extend(digest_violations.into_iter().map(|(_, v)| v));
    }
    apply_allows(raw, &unit.allows, unit.rules.contains(&Rule::StaleAllow))
}

/// Pass one for a single file.
fn analyse(rel_path: &str, source: &str, config: &Config) -> Unit {
    let class = classify(rel_path);
    let rules = applicable_rules(&class, rel_path, config);
    let lexed = lex(source);
    let map = map_file(&lexed);
    // Files in test/bench/example sections are wholly non-library code:
    // treat every line as test code for the line-level exclusions, so a
    // `tests/` file never trips R1/R3 even if R1 were scoped onto it.
    let map = match class.section {
        Section::Tests | Section::Benches | Section::Examples => map.with_whole_file_test(),
        _ => map,
    };
    let parsed = parse_items(&lexed);
    let allows = AllowSet::from_comments(&lexed.comments);
    Unit {
        rel_path: rel_path.to_string(),
        crate_name: class.crate_name,
        lexed,
        map,
        parsed,
        allows,
        rules,
        r6_path_scoped: r6_path_scoped(rel_path, config),
    }
}

fn file_input(u: &Unit) -> FileInput<'_> {
    FileInput {
        rel_path: &u.rel_path,
        crate_name: u.crate_name.as_deref(),
        lexed: &u.lexed,
        map: &u.map,
        parsed: &u.parsed,
    }
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with('.') {
            continue;
        }
        let rel = rel_str(root, &path);
        if config.path_skipped(&rel) {
            continue;
        }
        let ftype = entry.file_type()?;
        if ftype.is_dir() {
            collect_rs_files(root, &path, config, out)?;
        } else if ftype.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Relative path with `/` separators regardless of platform.
fn rel_str(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_cargo_layout() {
        let cases = [
            ("crates/netsim/src/sim.rs", Some("netsim"), Section::Lib),
            ("crates/lint/src/bin/iobt-lint.rs", Some("lint"), Section::Bin),
            ("crates/synthesis/benches/kernels.rs", Some("synthesis"), Section::Benches),
            ("crates/core/tests/it.rs", Some("core"), Section::Tests),
            ("src/lib.rs", Some("iobt"), Section::Lib),
            ("tests/determinism.rs", None, Section::Tests),
            ("examples/quickstart.rs", None, Section::Examples),
            ("crates/lint/tests/fixtures/crates/core/src/lib.rs", Some("lint"), Section::Tests),
        ];
        for (path, crate_name, section) in cases {
            let c = classify(path);
            assert_eq!(c.crate_name.as_deref(), crate_name, "{path}");
            assert_eq!(c.section, section, "{path}");
        }
    }

    #[test]
    fn rule_applicability_follows_scope_and_section() {
        let config = Config::default();
        let lib = |p: &str| applicable_rules(&classify(p), p, &config);
        // Scoped sim crate: everything except docs (netsim not a contract
        // crate); R6 applies (netsim holds snapshot code), R7 does not.
        assert_eq!(
            lib("crates/netsim/src/sim.rs"),
            vec![
                Rule::HashIter,
                Rule::WallClock,
                Rule::Panic,
                Rule::Entropy,
                Rule::StateCoverage,
                Rule::StaleAllow
            ]
        );
        // Contract crate in determinism, docs, state, and digest scopes.
        assert_eq!(
            lib("crates/core/src/runtime.rs"),
            vec![
                Rule::HashIter,
                Rule::WallClock,
                Rule::Panic,
                Rule::Entropy,
                Rule::Docs,
                Rule::StateCoverage,
                Rule::DigestCoverage,
                Rule::StaleAllow
            ]
        );
        // Unscoped crate: panic + entropy discipline and stale-allow hygiene.
        assert_eq!(
            lib("crates/tomography/src/boolean.rs"),
            vec![Rule::Panic, Rule::Entropy, Rule::StaleAllow]
        );
        // Benches: entropy + stale-allow only.
        assert_eq!(
            lib("crates/bench/benches/f2_synthesis_scale.rs"),
            vec![Rule::Entropy, Rule::StaleAllow]
        );
        // Root integration tests: entropy + stale-allow only.
        assert_eq!(
            lib("tests/determinism.rs"),
            vec![Rule::Entropy, Rule::StaleAllow]
        );
    }

    #[test]
    fn r6_paths_config_pulls_in_out_of_scope_files() {
        let config = Config::parse(
            "[rules.state-coverage]\ncrates = []\npaths = [\"crates/obs/src/recorder.rs\"]\n",
        )
        .unwrap();
        let rules = applicable_rules(
            &classify("crates/obs/src/recorder.rs"),
            "crates/obs/src/recorder.rs",
            &config,
        );
        assert!(rules.contains(&Rule::StateCoverage));
        // Sibling file in the same crate: not pulled in.
        let rules = applicable_rules(
            &classify("crates/obs/src/metrics.rs"),
            "crates/obs/src/metrics.rs",
            &config,
        );
        assert!(!rules.contains(&Rule::StateCoverage));
    }

    #[test]
    fn path_allowlist_removes_a_rule_for_a_file() {
        let config = Config::parse(
            "[rules.hash-iter]\nallow = [\"crates/netsim/src/graph.rs\"]\n",
        )
        .unwrap();
        let rules = applicable_rules(
            &classify("crates/netsim/src/graph.rs"),
            "crates/netsim/src/graph.rs",
            &config,
        );
        assert!(!rules.contains(&Rule::HashIter));
        assert!(rules.contains(&Rule::WallClock));
    }

    #[test]
    fn lint_source_runs_end_to_end() {
        let config = Config::default();
        let v = lint_source(
            "crates/netsim/src/fake.rs",
            "use std::collections::HashMap;\n",
            &config,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::HashIter);
        // Same content in an out-of-scope crate: clean.
        assert!(lint_source(
            "crates/tomography/src/fake.rs",
            "use std::collections::HashMap;\n",
            &config
        )
        .is_empty());
    }

    #[test]
    fn lint_source_runs_semantic_rules() {
        let config = Config::default();
        // A save_state that never destructures Self: R6 fires.
        let v = lint_source(
            "crates/netsim/src/fake.rs",
            "struct S { a: u32 }\nimpl S {\n    fn save_state(&self) -> u32 { self.a }\n}\n",
            &config,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::StateCoverage);
        // A stale directive: R8 fires even in an unscoped crate.
        let v = lint_source(
            "crates/tomography/src/fake.rs",
            "// lint: allow(panic) — nothing here panics any more\nfn f() {}\n",
            &config,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::StaleAllow);
    }
}
