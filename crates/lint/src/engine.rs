//! The workspace walker: finds every `.rs` file under a root, classifies
//! it (crate, section), decides which rules apply, and runs them.
//!
//! Classification is purely path-based, mirroring cargo's layout:
//!
//! | path                         | section    |
//! |------------------------------|------------|
//! | `crates/<c>/src/bin/…`       | `Bin`      |
//! | `crates/<c>/src/…`, `src/…`  | `Lib`      |
//! | `…/tests/…`, `tests/…`       | `Tests`    |
//! | `…/benches/…`                | `Benches`  |
//! | `…/examples/…`, `examples/…` | `Examples` |
//!
//! Rule applicability: R1/R2 run on `Lib`+`Bin` of their scoped crates;
//! R3 on all `Lib` code (panic discipline is a library property); R4
//! everywhere (OS entropy is never acceptable); R5 on `Lib` of the
//! contract crates.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{AllowSet, Config};
use crate::lexer::lex;
use crate::regions::map_file;
use crate::rules::{check_file, Rule, Violation};

/// Which cargo target-kind a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `src/` of a crate (excluding `src/bin`).
    Lib,
    /// `src/bin/` binaries.
    Bin,
    /// Integration tests (`tests/` directories).
    Tests,
    /// Criterion/benchmark code (`benches/` directories).
    Benches,
    /// Example programs (`examples/` directories).
    Examples,
    /// Anything else (scripts, fixtures outside known layouts).
    Other,
}

/// Path-derived identity of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate name (`crates/<name>/…`), or the workspace facade for root
    /// `src/`, or `None` for root-level `tests/`/`examples/`.
    pub crate_name: Option<String>,
    /// The target kind.
    pub section: Section,
}

/// Classifies a `/`-separated relative path.
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest): (Option<String>, &[&str]) = match parts.as_slice() {
        ["crates", name, rest @ ..] => (Some((*name).to_string()), rest),
        rest => (None, rest),
    };
    let section = match rest {
        ["src", "bin", ..] => Section::Bin,
        ["src", ..] => Section::Lib,
        ["tests", ..] => Section::Tests,
        ["benches", ..] => Section::Benches,
        ["examples", ..] => Section::Examples,
        _ => Section::Other,
    };
    // Root `src/` belongs to the facade crate `iobt`.
    let crate_name = match (&crate_name, section) {
        (None, Section::Lib | Section::Bin) => Some("iobt".to_string()),
        _ => crate_name,
    };
    FileClass { crate_name, section }
}

/// The rules that apply to a file, given the config.
pub fn applicable_rules(class: &FileClass, rel_path: &str, config: &Config) -> Vec<Rule> {
    let in_scope = |rule: Rule| -> bool {
        class
            .crate_name
            .as_deref()
            .is_some_and(|c| config.scope_of(rule).iter().any(|s| s == c))
    };
    Rule::ALL
        .into_iter()
        .filter(|&rule| match rule {
            Rule::HashIter | Rule::WallClock => {
                matches!(class.section, Section::Lib | Section::Bin) && in_scope(rule)
            }
            Rule::Panic => class.section == Section::Lib,
            Rule::Entropy => true,
            Rule::Docs => class.section == Section::Lib && in_scope(rule),
        })
        .filter(|&rule| !config.path_allowed(rule, rel_path))
        .collect()
}

/// The result of linting a tree.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// `(relative path, violation)` pairs, sorted by path then line.
    pub violations: Vec<(String, Violation)>,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lints every `.rs` file under `root` according to `config`.
pub fn lint_root(root: &Path, config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        report.files_scanned += 1;
        let src = fs::read_to_string(root.join(&rel))?;
        for v in lint_source(&rel, &src, config) {
            report.violations.push((rel.clone(), v));
        }
    }
    Ok(report)
}

/// Lints one file's source text under its relative path. Exposed so the
/// fixture tests (and future editor integrations) can lint in-memory
/// content.
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> Vec<Violation> {
    let class = classify(rel_path);
    let rules = applicable_rules(&class, rel_path, config);
    if rules.is_empty() {
        return Vec::new();
    }
    let lexed = lex(source);
    let map = map_file(&lexed);
    // Files in test/bench/example sections are wholly non-library code:
    // treat every line as test code for the line-level exclusions, so a
    // `tests/` file never trips R1/R3 even if R1 were scoped onto it.
    let map = match class.section {
        Section::Tests | Section::Benches | Section::Examples => map.with_whole_file_test(),
        _ => map,
    };
    let allows = AllowSet::from_comments(&lexed.comments);
    check_file(&lexed, &map, &allows, &rules)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with('.') {
            continue;
        }
        let rel = rel_str(root, &path);
        if config.path_skipped(&rel) {
            continue;
        }
        let ftype = entry.file_type()?;
        if ftype.is_dir() {
            collect_rs_files(root, &path, config, out)?;
        } else if ftype.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Relative path with `/` separators regardless of platform.
fn rel_str(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_cargo_layout() {
        let cases = [
            ("crates/netsim/src/sim.rs", Some("netsim"), Section::Lib),
            ("crates/lint/src/bin/iobt-lint.rs", Some("lint"), Section::Bin),
            ("crates/synthesis/benches/kernels.rs", Some("synthesis"), Section::Benches),
            ("crates/core/tests/it.rs", Some("core"), Section::Tests),
            ("src/lib.rs", Some("iobt"), Section::Lib),
            ("tests/determinism.rs", None, Section::Tests),
            ("examples/quickstart.rs", None, Section::Examples),
            ("crates/lint/tests/fixtures/crates/core/src/lib.rs", Some("lint"), Section::Tests),
        ];
        for (path, crate_name, section) in cases {
            let c = classify(path);
            assert_eq!(c.crate_name.as_deref(), crate_name, "{path}");
            assert_eq!(c.section, section, "{path}");
        }
    }

    #[test]
    fn rule_applicability_follows_scope_and_section() {
        let config = Config::default();
        let lib = |p: &str| applicable_rules(&classify(p), p, &config);
        // Scoped sim crate: everything except docs (netsim not a contract crate).
        assert_eq!(
            lib("crates/netsim/src/sim.rs"),
            vec![Rule::HashIter, Rule::WallClock, Rule::Panic, Rule::Entropy]
        );
        // Contract crate in both determinism and docs scope.
        assert_eq!(
            lib("crates/core/src/runtime.rs"),
            vec![Rule::HashIter, Rule::WallClock, Rule::Panic, Rule::Entropy, Rule::Docs]
        );
        // Unscoped crate: only panic + entropy discipline.
        assert_eq!(
            lib("crates/tomography/src/boolean.rs"),
            vec![Rule::Panic, Rule::Entropy]
        );
        // Benches: entropy only.
        assert_eq!(
            lib("crates/bench/benches/f2_synthesis_scale.rs"),
            vec![Rule::Entropy]
        );
        // Root integration tests: entropy only.
        assert_eq!(lib("tests/determinism.rs"), vec![Rule::Entropy]);
    }

    #[test]
    fn path_allowlist_removes_a_rule_for_a_file() {
        let config = Config::parse(
            "[rules.hash-iter]\nallow = [\"crates/netsim/src/graph.rs\"]\n",
        )
        .unwrap();
        let rules = applicable_rules(
            &classify("crates/netsim/src/graph.rs"),
            "crates/netsim/src/graph.rs",
            &config,
        );
        assert!(!rules.contains(&Rule::HashIter));
        assert!(rules.contains(&Rule::WallClock));
    }

    #[test]
    fn lint_source_runs_end_to_end() {
        let config = Config::default();
        let v = lint_source(
            "crates/netsim/src/fake.rs",
            "use std::collections::HashMap;\n",
            &config,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::HashIter);
        // Same content in an out-of-scope crate: clean.
        assert!(lint_source(
            "crates/tomography/src/fake.rs",
            "use std::collections::HashMap;\n",
            &config
        )
        .is_empty());
    }
}
