//! The rule catalogue: token-level checks R1–R5 enforcing determinism
//! and panic discipline, plus the semantic passes R6–R8 built on the
//! item parser (state coverage, digest coverage, stale-allow hygiene).
//! See `lint.toml` and the README "Static analysis" section for the
//! rationale of each.

use crate::config::AllowSet;
use crate::lexer::{Lexed, Token, TokenKind};
use crate::parser::{FnDef, ParsedFile, StructKind, StructSig, SymbolTable};
use crate::regions::FileMap;

/// A rule identity: stable ID (`R1`…`R8`) plus the kebab-case name used
/// in allow directives and `lint.toml` sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1 `hash-iter`: no `HashMap`/`HashSet` in simulation/solver
    /// crates — hash iteration order is nondeterministic and can change
    /// solver output run to run.
    HashIter,
    /// R2 `wall-clock`: no `Instant::now` / `SystemTime` in code that
    /// influences simulation or solver results. Pure time *reporting* is
    /// allowlisted inline; benches are out of scope by construction.
    WallClock,
    /// R3 `panic`: no `unwrap()`/`expect()` in non-test library code
    /// outside an inline-commented allowlist.
    Panic,
    /// R4 `entropy`: no `thread_rng`/`from_entropy` — all randomness must
    /// flow from seeded RNGs, in tests as much as in library code.
    Entropy,
    /// R5 `docs`: public items in the contract crates carry doc comments.
    Docs,
    /// R6 `state-coverage`: save/restore fns exhaustively destructure the
    /// type they snapshot (no `..` rest pattern), and encode/decode twins
    /// agree on field order.
    StateCoverage,
    /// R7 `digest-coverage`: digest/fingerprint types derive `PartialEq`
    /// and every declared field flows into the digest computation.
    DigestCoverage,
    /// R8 `stale-allow`: a `// lint: allow(…)` directive that suppresses
    /// zero findings is itself an error.
    StaleAllow,
}

impl Rule {
    /// Every rule, in ID order.
    pub const ALL: [Rule; 8] = [
        Rule::HashIter,
        Rule::WallClock,
        Rule::Panic,
        Rule::Entropy,
        Rule::Docs,
        Rule::StateCoverage,
        Rule::DigestCoverage,
        Rule::StaleAllow,
    ];

    /// Stable rule ID (`R1`…`R8`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIter => "R1",
            Rule::WallClock => "R2",
            Rule::Panic => "R3",
            Rule::Entropy => "R4",
            Rule::Docs => "R5",
            Rule::StateCoverage => "R6",
            Rule::DigestCoverage => "R7",
            Rule::StaleAllow => "R8",
        }
    }

    /// Kebab-case name used in `lint.toml` and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::Panic => "panic",
            Rule::Entropy => "entropy",
            Rule::Docs => "docs",
            Rule::StateCoverage => "state-coverage",
            Rule::DigestCoverage => "digest-coverage",
            Rule::StaleAllow => "stale-allow",
        }
    }

    /// Resolves a rule from its name or its `Rn` ID.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| r.name() == name || r.id() == name)
    }

    /// The crates a rule applies to when `lint.toml` says nothing.
    pub fn default_scope(self) -> &'static [&'static str] {
        match self {
            // The simulation/solver crates whose outputs must replay
            // bit-for-bit.
            Rule::HashIter | Rule::WallClock => {
                &["netsim", "core", "synthesis", "adapt", "learning"]
            }
            // Panic, entropy, and allow-directive hygiene hold
            // everywhere; the scope list is unused (section-based).
            Rule::Panic | Rule::Entropy | Rule::StaleAllow => &[],
            // The public-contract crates.
            Rule::Docs => &["types", "core"],
            // The crates holding snapshot/checkpoint code.
            Rule::StateCoverage => &["netsim", "core", "ckpt"],
            // The crates defining digest/fingerprint types.
            Rule::DigestCoverage => &["core", "obs"],
        }
    }

    /// Files (relative paths) a rule additionally targets regardless of
    /// crate scope. For R6 these are the codec-heavy files where *every*
    /// destructure and every `save`/`enc_*`/`dec_*` fn is held to the
    /// exhaustiveness convention.
    pub fn default_paths(self) -> &'static [&'static str] {
        match self {
            Rule::StateCoverage => &[
                "crates/netsim/src/sim/snapshot.rs",
                "crates/core/src/checkpoint.rs",
            ],
            _ => &[],
        }
    }

    /// Type names a rule targets (R7's digest types).
    pub fn default_types(self) -> &'static [&'static str] {
        match self {
            Rule::DigestCoverage => &[
                "EndStateDigest",
                "ResilienceReport",
                "MetricsDigest",
                "TaskingStats",
                "HistogramSnapshot",
            ],
            _ => &[],
        }
    }

    /// Long-form documentation for `--explain`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::HashIter => {
                "R1[hash-iter] — no HashMap/HashSet in determinism-scoped crates.\n\
                 \n\
                 Hash iteration order is randomized per process, so any result that\n\
                 depends on iterating a hash container can change run to run without\n\
                 a single test failing. Use BTreeMap/BTreeSet, or sort before\n\
                 iterating and justify the container with\n\
                 `// lint: allow(hash-iter) — <reason>`."
            }
            Rule::WallClock => {
                "R2[wall-clock] — no Instant::now/SystemTime in result-affecting code.\n\
                 \n\
                 Wall-clock reads make solver budgets and sim outcomes depend on host\n\
                 speed. Use iteration/evaluation budgets or sim time. Pure reporting\n\
                 (timing printed, never branched on) is justified inline with\n\
                 `// lint: allow(wall-clock) — <reason>`."
            }
            Rule::Panic => {
                "R3[panic] — no unwrap()/expect() in non-test library code.\n\
                 \n\
                 Library panics take down whole missions. Return an error or handle\n\
                 the case; invariant-backed panics state the invariant inline with\n\
                 `// lint: allow(panic) — <reason>`."
            }
            Rule::Entropy => {
                "R4[entropy] — no thread_rng/from_entropy anywhere, tests included.\n\
                 \n\
                 OS entropy breaks replayability. All randomness flows from seeded\n\
                 RNGs (`StdRng::seed_from_u64` or a stream derived from the run seed)."
            }
            Rule::Docs => {
                "R5[docs] — public items in contract crates carry doc comments.\n\
                 \n\
                 The `types` and `core` crates are the repo's public API surface;\n\
                 an undocumented `pub` item there is an unreviewed contract."
            }
            Rule::StateCoverage => {
                "R6[state-coverage] — checkpoint/snapshot fns pin their field coverage.\n\
                 \n\
                 Every `save_state`/`restore_state` impl (and every `save` fn in the\n\
                 scoped snapshot/checkpoint files) must exhaustively destructure the\n\
                 type it persists — `let Self { a, b, skipped: _ } = self;` with no\n\
                 `..` rest pattern. Adding a struct field then fails both the\n\
                 compile (E0027) and this lint until the field's save/restore story\n\
                 is written, which is exactly the silent-resume-divergence bug class\n\
                 this repo fears most. In the scoped files, *all* destructures of\n\
                 known structs are held to the convention, and straight-line\n\
                 `enc_*`/`dec_*` twins must write and read the same codec sequence\n\
                 in the same order. Deliberately excluded fields are bound as\n\
                 `name: _`, which documents the exclusion at the destructure site."
            }
            Rule::DigestCoverage => {
                "R7[digest-coverage] — digest types stay exhaustive.\n\
                 \n\
                 End-state digests and metrics fingerprints exist to catch state\n\
                 divergence; a field that is declared but never hashed or compared\n\
                 is a blind spot. Scoped types must `#[derive(PartialEq)]` (a\n\
                 manual impl can silently skip fields), and when a scoped type has\n\
                 a `canonical_string`/`fingerprint` computation, every field of it\n\
                 (and of scoped types nested in its fields) must appear in that\n\
                 computation."
            }
            Rule::StaleAllow => {
                "R8[stale-allow] — allow directives must suppress something.\n\
                 \n\
                 A `// lint: allow(rule)` directive that matches zero findings is\n\
                 dead weight: either the code it excused moved (so the exemption\n\
                 now silently waits to hide a future violation) or the rule no\n\
                 longer applies. Delete it, or move it next to the code it exempts."
            }
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.id(), self.name())
    }
}

/// One finding in one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based line number.
    pub line: u32,
    /// The rule violated.
    pub rule: Rule,
    /// Human-readable explanation, including the remediation.
    pub message: String,
}

/// Everything the per-file checks need to know about one file.
#[derive(Debug, Clone, Copy)]
pub struct FileInput<'a> {
    /// `/`-separated path relative to the lint root.
    pub rel_path: &'a str,
    /// Crate the file belongs to, when known.
    pub crate_name: Option<&'a str>,
    /// Token stream.
    pub lexed: &'a Lexed,
    /// Region map (test spans already widened for test-section files).
    pub map: &'a FileMap,
    /// Item skeleton.
    pub parsed: &'a ParsedFile,
}

/// Runs the per-file rules, producing *raw* violations — no allow
/// filtering (that happens in [`apply_allows`], which also implements
/// R8). `r6_path_scoped` marks files listed in the R6 `paths` config,
/// where the exhaustiveness convention applies file-wide.
pub fn check_file_raw(
    input: &FileInput,
    table: &SymbolTable,
    rules: &[Rule],
    r6_path_scoped: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for &rule in rules {
        match rule {
            Rule::HashIter => check_hash_iter(input.lexed, input.map, &mut out),
            Rule::WallClock => check_wall_clock(input.lexed, input.map, &mut out),
            Rule::Panic => check_panic(input.lexed, input.map, &mut out),
            Rule::Entropy => check_entropy(input.lexed, &mut out),
            Rule::Docs => check_docs(input.lexed, input.map, &mut out),
            Rule::StateCoverage => check_state_coverage(input, table, r6_path_scoped, &mut out),
            // R7 needs the whole workspace; R8 needs the post-filter
            // outcome. Both run outside the per-file dispatch.
            Rule::DigestCoverage | Rule::StaleAllow => {}
        }
    }
    sort_dedup(&mut out);
    out
}

fn sort_dedup(out: &mut Vec<Violation>) {
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)).then(a.message.cmp(&b.message)));
    // Two mentions on one line (e.g. `HashMap<..> = HashMap::new()`) are
    // one finding as far as the reader is concerned.
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
}

/// Filters raw violations through the file's allow directives and, when
/// `stale_check` is on, reports directives that suppressed nothing (R8).
///
/// A justified directive covering a violation's line suppresses it. An
/// unjustified one leaves the violation in place with a hint appended —
/// and still counts as "targeting" something, so it is not stale. R8
/// findings themselves can be suppressed by a justified
/// `allow(stale-allow)` directive (single pass, no recursion).
pub fn apply_allows(raw: Vec<Violation>, allows: &AllowSet, stale_check: bool) -> Vec<Violation> {
    let dirs = allows.directives();
    let mut targeted = vec![false; dirs.len()];
    let mut kept: Vec<Violation> = Vec::new();
    for v in raw {
        let covering = |justified: bool| {
            dirs.iter().position(|d| {
                d.justified == justified
                    && d.rule == v.rule.name()
                    && d.from <= v.line
                    && v.line <= d.to
            })
        };
        if let Some(k) = covering(true) {
            targeted[k] = true;
            continue;
        }
        if let Some(k) = covering(false) {
            targeted[k] = true;
            kept.push(Violation {
                message: format!(
                    "{} (an allow directive was found but lacks a justification — \
                     write `// lint: allow({}) — <reason>`)",
                    v.message,
                    v.rule.name()
                ),
                ..v
            });
            continue;
        }
        kept.push(v);
    }
    if stale_check {
        for (k, d) in dirs.iter().enumerate() {
            if targeted[k] {
                continue;
            }
            // A justified allow(stale-allow) covering this directive's
            // anchor line suppresses the staleness finding.
            if dirs.iter().any(|s| {
                s.justified
                    && s.rule == Rule::StaleAllow.name()
                    && s.from <= d.line
                    && d.line <= s.to
            }) {
                continue;
            }
            let message = match Rule::from_name(&d.rule) {
                None => format!(
                    "`lint: allow({})` names no known rule (known: {})",
                    d.rule,
                    Rule::ALL.map(Rule::name).join(", ")
                ),
                Some(r) => format!(
                    "stale directive: `allow({})` suppresses no findings here — \
                     delete it, or move it next to the code it exempts",
                    r.name()
                ),
            };
            kept.push(Violation {
                line: d.line,
                rule: Rule::StaleAllow,
                message,
            });
        }
    }
    sort_dedup(&mut kept);
    kept
}

/// R1: any `HashMap`/`HashSet` identifier outside test code. The rule is
/// deliberately broader than "iteration" — at token level the safe
/// invariant is *no hash-ordered containers at all* in result-affecting
/// crates; lookup-only uses state their case in an allow directive.
fn check_hash_iter(lexed: &Lexed, map: &FileMap, out: &mut Vec<Violation>) {
    for t in &lexed.tokens {
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !map.is_test_line(t.line)
        {
            out.push(Violation {
                line: t.line,
                rule: Rule::HashIter,
                message: format!(
                    "`{}` in a determinism-scoped crate: hash iteration order varies \
                     run to run; use BTreeMap/BTreeSet (or sort before iterating and \
                     justify with `// lint: allow(hash-iter) — <reason>`)",
                    t.text
                ),
            });
        }
    }
}

/// R2: `Instant::now` call sites and any `SystemTime` mention outside
/// test code. `use std::time::Instant` alone is fine — only acquiring the
/// clock is flagged, so passing an externally-captured timestamp through
/// is allowed.
fn check_wall_clock(lexed: &Lexed, map: &FileMap, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if map.is_test_line(t.line) {
            continue;
        }
        let flagged = if t.is_ident("Instant") {
            toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 3).is_some_and(|a| a.is_ident("now"))
        } else {
            t.is_ident("SystemTime")
        };
        if flagged {
            out.push(Violation {
                line: t.line,
                rule: Rule::WallClock,
                message: "wall-clock read in a determinism-scoped crate: results must not \
                 depend on real time; use iteration/evaluation budgets (e.g. \
                 `SolverBudget`) or sim time, and justify pure reporting with \
                 `// lint: allow(wall-clock) — <reason>`"
                    .to_string(),
            });
        }
    }
}

/// R3: `.unwrap(` / `.expect(` in non-test library code.
fn check_panic(lexed: &Lexed, map: &FileMap, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct('.') {
            continue;
        }
        let Some(name) = toks.get(i + 1) else { continue };
        if !(name.is_ident("unwrap") || name.is_ident("expect")) {
            continue;
        }
        if !toks.get(i + 2).is_some_and(|p| p.is_punct('(')) {
            continue;
        }
        if map.is_test_line(name.line) {
            continue;
        }
        out.push(Violation {
            line: name.line,
            rule: Rule::Panic,
            message: format!(
                "`{}()` in library code: return an error or handle the case; if the \
                 panic is invariant-backed, justify with `// lint: allow(panic) — <reason>`",
                name.text
            ),
        });
    }
}

/// R4: `thread_rng` / `from_entropy` anywhere, including tests — OS
/// entropy breaks replayability wherever it appears.
fn check_entropy(lexed: &Lexed, out: &mut Vec<Violation>) {
    for t in &lexed.tokens {
        if t.kind == TokenKind::Ident && (t.text == "thread_rng" || t.text == "from_entropy") {
            out.push(Violation {
                line: t.line,
                rule: Rule::Entropy,
                message: format!(
                    "`{}` draws OS entropy: all randomness must flow from seeded RNGs \
                     (`StdRng::seed_from_u64` or a stream derived from the run seed)",
                    t.text
                ),
            });
        }
    }
}

/// R5: `pub` items in contract crates need a doc comment. Skips
/// `pub(…)` restricted visibility, `pub use` re-exports, `pub mod x;`
/// declarations (docs live in the module file), tuple-struct fields, and
/// members of trait impls (they inherit the trait's docs).
fn check_docs(lexed: &Lexed, map: &FileMap, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("pub") || map.is_test_line(t.line) || map.is_trait_impl_line(t.line) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        // `pub(crate)` / `pub(super)`: not part of the public API.
        if next.is_punct('(') {
            continue;
        }
        // Re-exports and externs don't carry their own docs.
        if next.is_ident("use") || next.is_ident("extern") {
            continue;
        }
        // `pub mod x;` — the module documents itself with `//!`.
        if next.is_ident("mod") && toks.get(i + 3).is_some_and(|p| p.is_punct(';')) {
            continue;
        }
        // Tuple-struct fields (`pub struct Id(pub u64)`): preceded by a
        // `(` or `,` and NOT shaped like a named field (`pub name: Type`),
        // which can also follow a comma inside a braced struct.
        let named_field = matches!(next.kind, TokenKind::Ident)
            && toks.get(i + 2).is_some_and(|p| p.is_punct(':'));
        if i > 0 && (toks[i - 1].is_punct('(') || toks[i - 1].is_punct(',')) && !named_field {
            continue;
        }
        if !map.has_doc_above(t.line) {
            out.push(Violation {
                line: t.line,
                rule: Rule::Docs,
                message: "public item lacks a doc comment: add `///` docs (or justify with \
                 `// lint: allow(docs) — <reason>`)"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R6 state-coverage
// ---------------------------------------------------------------------

/// A struct-destructure pattern found in a fn body:
/// `let [&|ref|mut]* Path { fields… } = …` or `let Path(…) = …`.
#[derive(Debug)]
struct Destructure {
    line: u32,
    /// Final path segment of the pattern type (`Self` unresolved).
    ty: String,
    /// Field names bound at depth 1 (named patterns only; `_` excluded).
    fields: Vec<String>,
    /// `Some(count)` for tuple patterns.
    tuple_arity: Option<usize>,
    /// A `..` rest pattern at depth 1.
    has_rest: bool,
}

/// Scans a token slice for struct-destructure patterns.
fn find_destructures(toks: &[Token]) -> Vec<Destructure> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while toks
            .get(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.is_ident("ref"))
        {
            j += 1;
        }
        let Some(first) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        let mut ty = first.text.clone();
        let line = first.line;
        j += 1;
        // Swallow path segments: `a::b::Ty`.
        while toks.get(j).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        {
            let Some(seg) = toks.get(j + 2).filter(|t| t.kind == TokenKind::Ident) else {
                break;
            };
            ty = seg.text.clone();
            j += 3;
        }
        let d = match toks.get(j) {
            Some(t) if t.is_punct('{') => parse_braced_pattern(toks, j).map(|(fields, has_rest, close)| {
                (
                    Destructure {
                        line,
                        ty: ty.clone(),
                        fields,
                        tuple_arity: None,
                        has_rest,
                    },
                    close,
                )
            }),
            Some(t) if t.is_punct('(') => parse_tuple_pattern(toks, j).map(|(arity, has_rest, close)| {
                (
                    Destructure {
                        line,
                        ty: ty.clone(),
                        fields: Vec::new(),
                        tuple_arity: Some(arity),
                        has_rest,
                    },
                    close,
                )
            }),
            _ => None,
        };
        if let Some((d, close)) = d {
            // A destructure pattern is followed by `=` (plain `let`,
            // `if let`, `while let`, let-else all qualify).
            if toks.get(close + 1).is_some_and(|t| t.is_punct('=')) {
                out.push(d);
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Parses `{ … }` at `toks[open]`; returns (field names, has_rest,
/// closing index). Field = ident at depth 1 preceded by `{`/`,`/`ref`/
/// `mut` and followed by `,`/`:`/`}`; `_` is not a field.
fn parse_braced_pattern(toks: &[Token], open: usize) -> Option<(Vec<String>, bool, usize)> {
    let mut depth = 0i64;
    let mut fields = Vec::new();
    let mut has_rest = false;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 && t.is_punct('}') {
                return Some((fields, has_rest, j));
            }
        } else if depth == 1 {
            if t.is_punct('.') && toks.get(j + 1).is_some_and(|n| n.is_punct('.')) {
                has_rest = true;
                j += 2;
                continue;
            }
            if t.kind == TokenKind::Ident && t.text != "_" {
                let prev_ok = j > 0
                    && (toks[j - 1].is_punct('{')
                        || toks[j - 1].is_punct(',')
                        || toks[j - 1].is_ident("ref")
                        || toks[j - 1].is_ident("mut"));
                let next_ok = toks
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct(',') || n.is_punct(':') || n.is_punct('}'));
                if prev_ok && next_ok && !t.is_ident("ref") && !t.is_ident("mut") {
                    fields.push(t.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

/// Parses `( … )` at `toks[open]`; returns (arity, has_rest, closing
/// index). Arity counts top-level comma-separated slots, ignoring a
/// trailing comma and not counting `..` as a slot.
fn parse_tuple_pattern(toks: &[Token], open: usize) -> Option<(usize, bool, usize)> {
    let mut depth = 0i64;
    let mut has_rest = false;
    let mut slots = 0usize;
    let mut slot_open = false;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
            if depth == 1 {
                j += 1;
                continue;
            }
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 && t.is_punct(')') {
                return Some((slots + usize::from(slot_open), has_rest, j));
            }
        }
        if depth == 1 {
            if t.is_punct('.') && toks.get(j + 1).is_some_and(|n| n.is_punct('.')) {
                has_rest = true;
                j += 2;
                continue;
            }
            if t.is_punct(',') {
                slots += usize::from(slot_open);
                slot_open = false;
            } else {
                slot_open = true;
            }
        }
        j += 1;
    }
    None
}

/// Idents that make a body "branchy": the codec-sequence comparison only
/// runs on straight-line bodies, where write/read order is literal.
fn is_branchy(toks: &[Token]) -> bool {
    toks.iter().any(|t| {
        t.is_ident("if")
            || t.is_ident("match")
            || t.is_ident("for")
            || t.is_ident("while")
            || t.is_ident("loop")
    })
}

/// The codec-call vocabulary of `iobt-ckpt`'s `Enc`/`Dec`.
const CODEC_CALLS: [&str; 8] = ["u8", "u32", "u64", "usize", "f64", "bool", "bytes", "str"];

/// Extracts the codec-call sequence of a straight-line body: `.u32(`-style
/// method calls plus `enc_x(`/`dec_x(` helper calls normalized to `#x`.
/// Returns `None` for branchy bodies.
fn codec_seq(toks: &[Token]) -> Option<Vec<String>> {
    if is_branchy(toks) {
        return None;
    }
    let mut seq = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let after_dot = i > 0 && toks[i - 1].is_punct('.');
        if after_dot && CODEC_CALLS.contains(&t.text.as_str()) {
            seq.push(t.text.clone());
        } else if !after_dot {
            if let Some(suffix) = normalize_codec_helper(&t.text) {
                seq.push(format!("#{suffix}"));
            }
        }
    }
    Some(seq)
}

/// `enc_point` / `dec_point` / `encode_point` / `decode_point` → `point`.
fn normalize_codec_helper(name: &str) -> Option<&str> {
    for prefix in ["encode_", "decode_", "enc_", "dec_"] {
        if let Some(suffix) = name.strip_prefix(prefix) {
            if !suffix.is_empty() {
                return Some(suffix);
            }
        }
    }
    None
}

/// Whether a fn name is an encode-side codec helper.
fn is_enc_helper(name: &str) -> bool {
    (name.starts_with("enc_") || name.starts_with("encode_")) && normalize_codec_helper(name).is_some()
}

/// Whether a fn name is a decode-side codec helper.
fn is_dec_helper(name: &str) -> bool {
    (name.starts_with("dec_") || name.starts_with("decode_")) && normalize_codec_helper(name).is_some()
}

/// R6: see [`Rule::StateCoverage`]. `path_scoped` widens the rule from
/// "save/restore fns" to the whole file (all destructures, `save` fns,
/// and free `enc_*`/`dec_*` twins).
fn check_state_coverage(
    input: &FileInput,
    table: &SymbolTable,
    path_scoped: bool,
    out: &mut Vec<Violation>,
) {
    for imp in &input.parsed.impls {
        for f in &imp.fns {
            let targeted = f.name == "save_state"
                || f.name == "restore_state"
                || (path_scoped && f.name == "save");
            if targeted {
                audit_state_fn(input, table, f, Some(&imp.self_ty), true, out);
            } else if path_scoped {
                audit_state_fn(input, table, f, Some(&imp.self_ty), false, out);
            }
        }
        // Straight-line save/restore twins must agree on codec order.
        let find = |n: &str| imp.fns.iter().find(|f| f.name == n);
        if let (Some(s), Some(r)) = (find("save_state"), find("restore_state")) {
            check_codec_pair(input, s, r, &imp.self_ty, out);
        }
    }

    if path_scoped {
        for f in &input.parsed.free_fns {
            audit_state_fn(input, table, f, None, false, out);
        }
        // Pair free enc_*/dec_* helpers by normalized suffix.
        for enc in &input.parsed.free_fns {
            if !is_enc_helper(&enc.name) || input.map.is_test_line(enc.line) {
                continue;
            }
            let Some(suffix) = normalize_codec_helper(&enc.name) else { continue };
            let Some(dec) = input.parsed.free_fns.iter().find(|f| {
                is_dec_helper(&f.name) && normalize_codec_helper(&f.name) == Some(suffix)
            }) else {
                continue;
            };
            check_codec_pair(input, enc, dec, suffix, out);
        }
    }
}

/// Resolves a struct by name: the file's own crate first, then a unique
/// workspace-wide match (snapshot code routinely destructures types
/// defined in sibling crates, e.g. `RecorderCheckpoint` from `obs`).
fn resolve_struct<'t>(
    input: &FileInput,
    table: &'t SymbolTable,
    ty: &str,
) -> Option<&'t StructSig> {
    let sig = input
        .crate_name
        .and_then(|c| table.lookup(c, ty))
        .or_else(|| table.lookup_global(ty))?;
    (!sig.ambiguous).then_some(sig)
}

/// Destructure hygiene for one fn body. `self_ty` resolves `Self`;
/// `require_self` demands at least one destructure of the self type.
fn audit_state_fn(
    input: &FileInput,
    table: &SymbolTable,
    f: &FnDef,
    self_ty: Option<&str>,
    require_self: bool,
    out: &mut Vec<Violation>,
) {
    {
        if input.map.is_test_line(f.line) || f.body.0 == f.body.1 {
            return;
        }
        let body = f.body_tokens(input.lexed);
        let mut self_destructured = false;
        for d in find_destructures(body) {
            let resolved = if d.ty == "Self" {
                match self_ty {
                    Some(s) => s.to_string(),
                    None => continue,
                }
            } else {
                d.ty.clone()
            };
            let is_self = self_ty == Some(resolved.as_str());
            let sig = resolve_struct(input, table, &resolved);
            if sig.is_none() && !is_self {
                continue; // Some/Ok/None and foreign types: not ours to judge
            }
            if d.has_rest {
                out.push(Violation {
                    line: d.line,
                    rule: Rule::StateCoverage,
                    message: format!(
                        "`..` rest pattern in a `{resolved}` destructure inside `{}`: list \
                         every field (bind excluded ones as `name: _`) so a new field \
                         fails the lint instead of being silently skipped",
                        f.name
                    ),
                });
            }
            if let Some(sig) = sig {
                match (sig.kind, d.tuple_arity) {
                    (StructKind::Named, None) if !d.has_rest => {
                        let missing: Vec<&String> =
                            sig.fields.iter().filter(|n| !d.fields.contains(n)).collect();
                        let unknown: Vec<&String> =
                            d.fields.iter().filter(|n| !sig.fields.contains(n)).collect();
                        if !missing.is_empty() {
                            out.push(Violation {
                                line: d.line,
                                rule: Rule::StateCoverage,
                                message: format!(
                                    "destructure of `{resolved}` in `{}` misses declared \
                                     field(s) {} — persist them or bind them as `name: _` \
                                     to record the exclusion",
                                    f.name,
                                    name_list(&missing),
                                ),
                            });
                        }
                        if !unknown.is_empty() {
                            out.push(Violation {
                                line: d.line,
                                rule: Rule::StateCoverage,
                                message: format!(
                                    "destructure of `{resolved}` in `{}` names unknown \
                                     field(s) {} — the declaration and this snapshot \
                                     have drifted apart",
                                    f.name,
                                    name_list(&unknown),
                                ),
                            });
                        }
                    }
                    (StructKind::Tuple(n), Some(got)) if !d.has_rest && got != n => {
                        out.push(Violation {
                            line: d.line,
                            rule: Rule::StateCoverage,
                            message: format!(
                                "tuple destructure of `{resolved}` in `{}` binds {got} of \
                                 {n} field(s)",
                                f.name
                            ),
                        });
                    }
                    _ => {}
                }
            }
            if is_self {
                // A rest-pattern Self destructure is already flagged
                // above; don't double-report a missing destructure.
                self_destructured = true;
            }
        }
        if require_self && !self_destructured {
            // Zero-field types have nothing to pin.
            let exempt = self_ty
                .and_then(|s| resolve_struct(input, table, s))
                .is_some_and(|sig| match sig.kind {
                    StructKind::Named => sig.fields.is_empty(),
                    StructKind::Tuple(n) => n == 0,
                    StructKind::Unit => true,
                });
            if !exempt {
                out.push(Violation {
                    line: f.line,
                    rule: Rule::StateCoverage,
                    message: format!(
                        "`{}` persists `{}` state without pinning its field coverage: \
                         open with `let Self {{ … }} = self;` (exhaustive, no `..`) so \
                         adding a field fails the lint and the compile until its \
                         save/restore story is written",
                        f.name,
                        self_ty.unwrap_or("Self"),
                    ),
                });
            }
        }
    }
}

/// Compares the codec-call sequences of an encode/decode twin. Skips
/// branchy bodies (order is not literal there) and test code.
fn check_codec_pair(
    input: &FileInput,
    enc: &FnDef,
    dec: &FnDef,
    what: &str,
    out: &mut Vec<Violation>,
) {
    if input.map.is_test_line(enc.line) || input.map.is_test_line(dec.line) {
        return;
    }
    let (Some(w), Some(r)) = (
        codec_seq(enc.body_tokens(input.lexed)),
        codec_seq(dec.body_tokens(input.lexed)),
    ) else {
        return;
    };
    if !w.is_empty() && !r.is_empty() && w != r {
        out.push(Violation {
            line: dec.line,
            rule: Rule::StateCoverage,
            message: format!(
                "encode/decode twins for `{what}` disagree: `{}` writes [{}] but `{}` \
                 reads [{}] — count and order must match exactly",
                enc.name,
                w.join(", "),
                dec.name,
                r.join(", "),
            ),
        });
    }
}

fn name_list(names: &[&String]) -> String {
    names
        .iter()
        .map(|n| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------
// R7 digest-coverage
// ---------------------------------------------------------------------

/// R7: see [`Rule::DigestCoverage`]. Runs over the whole workspace at
/// once (a digest type and its fingerprint computation may live in
/// different files). Returns `(unit index, violation)` pairs; violations
/// anchor at the struct declaration (derive checks) or the digest fn
/// (field-flow checks). `applicable` gates which units the rule runs on.
pub fn check_digest_coverage(
    units: &[FileInput],
    types: &[String],
    applicable: &[bool],
    out: &mut Vec<(usize, Violation)>,
) {
    let scoped = |name: &str| types.iter().any(|t| t == name);

    // Struct declarations of scoped types: (unit, &StructDef).
    let mut decls: Vec<(usize, &crate::parser::StructDef)> = Vec::new();
    for (i, u) in units.iter().enumerate() {
        if !applicable[i] {
            continue;
        }
        for s in &u.parsed.structs {
            if scoped(&s.name) && !u.map.is_test_line(s.line) {
                decls.push((i, s));
            }
        }
    }

    // Check 1+2: derived equality, no manual PartialEq/Hash.
    for &(i, s) in &decls {
        if s.kind == StructKind::Named
            && !s.derives.iter().any(|d| d == "PartialEq")
        {
            out.push((
                i,
                Violation {
                    line: s.line,
                    rule: Rule::DigestCoverage,
                    message: format!(
                        "digest type `{}` must `#[derive(PartialEq)]` so equality \
                         covers every field — divergence checks compare these \
                         wholesale",
                        s.name
                    ),
                },
            ));
        }
    }
    for (i, u) in units.iter().enumerate() {
        if !applicable[i] {
            continue;
        }
        for imp in &u.parsed.impls {
            let manual_eq = matches!(imp.trait_name.as_deref(), Some("PartialEq" | "Hash"));
            if manual_eq && scoped(&imp.self_ty) && !u.map.is_test_line(imp.line) {
                out.push((
                    i,
                    Violation {
                        line: imp.line,
                        rule: Rule::DigestCoverage,
                        message: format!(
                            "manual `impl {} for {}` can silently skip fields — \
                             derive it instead so every field is compared",
                            imp.trait_name.as_deref().unwrap_or("PartialEq"),
                            imp.self_ty
                        ),
                    },
                ));
            }
        }
    }

    // Check 3: field flow into canonical_string/fingerprint computations.
    for root in types {
        // Digest fns of this root type, across the workspace.
        let mut mention: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut anchor: Option<(usize, u32)> = None;
        let mut fn_names: Vec<String> = Vec::new();
        for (i, u) in units.iter().enumerate() {
            if !applicable[i] {
                continue;
            }
            for imp in &u.parsed.impls {
                if imp.self_ty != *root {
                    continue;
                }
                for f in &imp.fns {
                    if (f.name == "canonical_string" || f.name == "fingerprint")
                        && !u.map.is_test_line(f.line)
                    {
                        anchor.get_or_insert((i, f.line));
                        fn_names.push(f.name.clone());
                        for t in f.body_tokens(u.lexed) {
                            if t.kind == TokenKind::Ident {
                                mention.insert(t.text.clone());
                            }
                        }
                    }
                }
            }
        }
        let Some((ai, aline)) = anchor else { continue };

        // Scoped types reachable from the root through field types.
        let mut reach: Vec<&str> = vec![root.as_str()];
        let mut k = 0usize;
        while k < reach.len() {
            let cur = reach[k];
            k += 1;
            for &(_, s) in &decls {
                if s.name != cur {
                    continue;
                }
                for fld in &s.fields {
                    for ty in &fld.ty_idents {
                        if scoped(ty) && !reach.contains(&ty.as_str()) {
                            reach.push(ty);
                        }
                    }
                }
            }
        }
        for ty in reach {
            for &(_, s) in &decls {
                if s.name != ty {
                    continue;
                }
                for fld in &s.fields {
                    if !mention.contains(&fld.name) {
                        out.push((
                            ai,
                            Violation {
                                line: aline,
                                rule: Rule::DigestCoverage,
                                message: format!(
                                    "field `{}.{}` does not flow into `{root}::{}` — \
                                     hash it, or exempt it with \
                                     `// lint: allow(digest-coverage) — <reason>`",
                                    s.name,
                                    fld.name,
                                    fn_names.first().map(String::as_str).unwrap_or("fingerprint"),
                                ),
                            },
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllowSet;
    use crate::lexer::lex;
    use crate::parser::parse_items;
    use crate::regions::map_file;

    fn run_path(rel: &str, src: &str, rules: &[Rule], path_scoped: bool) -> Vec<Violation> {
        let lexed = lex(src);
        let map = map_file(&lexed);
        let parsed = parse_items(&lexed);
        let mut table = SymbolTable::default();
        table.add_file("c", rel, &parsed);
        let input = FileInput {
            rel_path: rel,
            crate_name: Some("c"),
            lexed: &lexed,
            map: &map,
            parsed: &parsed,
        };
        let raw = check_file_raw(&input, &table, rules, path_scoped);
        let allows = AllowSet::from_comments(&lexed.comments);
        apply_allows(raw, &allows, rules.contains(&Rule::StaleAllow))
    }

    fn run(src: &str, rules: &[Rule]) -> Vec<Violation> {
        run_path("lib.rs", src, rules, false)
    }

    fn rules_hit(src: &str, rules: &[Rule]) -> Vec<(&'static str, u32)> {
        run(src, rules).iter().map(|v| (v.rule.id(), v.line)).collect()
    }

    #[test]
    fn hash_iter_flags_non_test_uses_only() {
        let src = "\
use std::collections::HashMap;
fn lib(m: &HashMap<u32, u32>) {}
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    fn t() { let _ = HashSet::<u32>::new(); }
}
";
        assert_eq!(rules_hit(src, &[Rule::HashIter]), vec![("R1", 1), ("R1", 2)]);
    }

    #[test]
    fn hash_iter_ignores_comments_and_strings() {
        let src = "// HashMap in a comment\nfn f() { let s = \"HashMap\"; let r = r#\"HashSet\"#; }\n";
        assert!(run(src, &[Rule::HashIter]).is_empty());
    }

    #[test]
    fn hash_iter_allow_directive_with_reason() {
        let src = "\
use std::collections::HashMap; // lint: allow(hash-iter) — lookup-only index, never iterated
fn f(m: &HashMap<u32, u32>) -> Option<&u32> { // lint: allow(hash-iter) — lookup-only
    m.get(&1)
}
";
        assert!(run(src, &[Rule::HashIter]).is_empty());
    }

    #[test]
    fn wall_clock_flags_now_but_not_type_mentions() {
        let src = "\
use std::time::Instant;
fn report(start: Instant) -> f64 { start.elapsed().as_secs_f64() }
fn bad() { let t = Instant::now(); let _ = t; }
fn worse() { let _ = std::time::SystemTime::now(); }
";
        assert_eq!(
            rules_hit(src, &[Rule::WallClock]),
            vec![("R2", 3), ("R2", 4)]
        );
    }

    #[test]
    fn wall_clock_allowlisted_reporting() {
        let src = "fn f() { let t = std::time::Instant::now(); } // lint: allow(wall-clock) — reporting only\n";
        assert!(run(src, &[Rule::WallClock]).is_empty());
    }

    #[test]
    fn panic_flags_unwrap_and_expect_outside_tests() {
        let src = "\
fn lib() {
    let a: Option<u32> = None;
    let _ = a.unwrap();
    let _ = a.expect(\"boom\");
    let _ = a.unwrap_or(3);
}
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
";
        assert_eq!(rules_hit(src, &[Rule::Panic]), vec![("R3", 3), ("R3", 4)]);
    }

    #[test]
    fn panic_allow_requires_reason() {
        let with_reason = "fn f() { x.unwrap(); } // lint: allow(panic) — key inserted two lines above\n";
        assert!(run(with_reason, &[Rule::Panic]).is_empty());
        let without = "fn f() { x.unwrap(); } // lint: allow(panic)\n";
        let v = run(without, &[Rule::Panic]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("lacks a justification"), "{}", v[0].message);
    }

    #[test]
    fn entropy_flags_tests_too() {
        let src = "\
fn lib() { let r = rand::thread_rng(); }
#[cfg(test)]
mod tests {
    fn t() { let r = SmallRng::from_entropy(); }
}
";
        assert_eq!(rules_hit(src, &[Rule::Entropy]), vec![("R4", 1), ("R4", 4)]);
    }

    #[test]
    fn docs_flags_undocumented_pub_items() {
        let src = "\
/// Documented.
pub fn good() {}
pub fn bad() {}
pub struct AlsoBad;
pub(crate) fn internal() {}
pub use std::collections::BTreeMap;
pub mod submodule;
";
        assert_eq!(rules_hit(src, &[Rule::Docs]), vec![("R5", 3), ("R5", 4)]);
    }

    #[test]
    fn docs_sees_through_attributes_and_skips_tuple_fields() {
        let src = "\
/// Documented wrapper.
#[derive(Debug, Clone)]
pub struct Id(pub u64);

/// Documented struct.
pub struct S {
    /// Documented field.
    pub x: f64,
    pub y: f64,
}
";
        assert_eq!(rules_hit(src, &[Rule::Docs]), vec![("R5", 9)]);
    }

    #[test]
    fn docs_skips_trait_impl_members() {
        let src = "\
/// Documented.
pub struct S;
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, \"s\")
    }
}
";
        assert!(run(src, &[Rule::Docs]).is_empty());
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
            assert_eq!(Rule::from_name(r.id()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
        assert_eq!(Rule::HashIter.to_string(), "R1[hash-iter]");
    }

    // -- R6 ---------------------------------------------------------

    #[test]
    fn state_coverage_requires_self_destructure() {
        let src = "\
struct S { a: u32, b: u32 }
impl Behavior for S {
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(vec![self.a as u8, self.b as u8])
    }
}
";
        let v = run(src, &[Rule::StateCoverage]);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule.id(), v[0].line), ("R6", 3));
        assert!(v[0].message.contains("pinning"), "{}", v[0].message);
    }

    #[test]
    fn state_coverage_accepts_exhaustive_destructure() {
        let src = "\
struct S { a: u32, b: u32 }
impl Behavior for S {
    fn save_state(&self) -> Option<Vec<u8>> {
        let Self { a, b: _ } = self;
        Some(vec![*a as u8])
    }
    fn restore_state(&mut self, blob: &[u8]) {
        let Self { a: _, b: _ } = self;
        self.a = blob[0] as u32;
    }
}
";
        assert!(run(src, &[Rule::StateCoverage]).is_empty());
    }

    #[test]
    fn state_coverage_flags_rest_pattern_and_missing_fields() {
        let src = "\
struct S { a: u32, b: u32, c: u32 }
impl S {
    fn save_state(&self) {
        let Self { a, .. } = self;
        let _ = a;
    }
    fn restore_state(&mut self) {
        let Self { a: _, b: _ } = self;
    }
}
";
        let hits: Vec<_> = run(src, &[Rule::StateCoverage])
            .iter()
            .map(|v| (v.line, v.message.split_whitespace().next().unwrap_or("").to_string()))
            .collect();
        // Line 4: `..` rest. Line 8: missing field `c`.
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].0, 4);
        assert_eq!(hits[1].0, 8);
    }

    #[test]
    fn state_coverage_checks_every_known_struct_in_path_files() {
        let src = "\
struct Inner { x: u32, y: u32 }
fn enc_inner(v: &Inner) {
    let Inner { x, .. } = v;
    let _ = x;
}
";
        let v = run_path("crates/core/src/checkpoint.rs", src, &[Rule::StateCoverage], true);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("rest pattern"), "{}", v[0].message);
    }

    #[test]
    fn state_coverage_ignores_trait_default_bodies_and_tests() {
        let src = "\
trait Behavior {
    fn save_state(&self) -> Option<Vec<u8>> { None }
}
#[cfg(test)]
mod tests {
    struct T { a: u32 }
    impl T { fn save_state(&self) {} }
}
";
        assert!(run(src, &[Rule::StateCoverage]).is_empty());
    }

    #[test]
    fn state_coverage_exempts_zero_field_types() {
        let src = "\
struct Stateless;
impl Behavior for Stateless {
    fn save_state(&self) -> Option<Vec<u8>> { None }
    fn restore_state(&mut self, _blob: &[u8]) {}
}
";
        assert!(run(src, &[Rule::StateCoverage]).is_empty());
    }

    #[test]
    fn state_coverage_compares_codec_twins() {
        let src = "\
fn enc_point(e: &mut Enc, x: f64, id: u64) {
    e.f64(x);
    e.u64(id);
}
fn dec_point(d: &mut Dec) -> (u64, f64) {
    let id = d.u64();
    let x = d.f64();
    (id, x)
}
";
        let v = run_path("crates/core/src/checkpoint.rs", src, &[Rule::StateCoverage], true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
        assert!(v[0].message.contains("disagree"), "{}", v[0].message);
    }

    #[test]
    fn state_coverage_skips_branchy_codec_twins() {
        let src = "\
fn enc_kind(e: &mut Enc, k: &Kind) {
    match k { Kind::A => e.u8(0), Kind::B => e.u8(1) }
}
fn dec_kind(d: &mut Dec) -> Kind {
    if d.u8() == 0 { Kind::A } else { Kind::B }
}
";
        let v = run_path("crates/core/src/checkpoint.rs", src, &[Rule::StateCoverage], true);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn state_coverage_save_fn_targeted_only_in_path_files() {
        let src = "\
struct Runner { a: u32 }
impl Runner {
    fn save(&self) -> Vec<u8> { vec![self.a as u8] }
}
";
        assert!(run(src, &[Rule::StateCoverage]).is_empty(), "crate scope: `save` untargeted");
        let v = run_path("crates/core/src/checkpoint.rs", src, &[Rule::StateCoverage], true);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    // -- R7 ---------------------------------------------------------

    fn run_digest(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let map = map_file(&lexed);
        let parsed = parse_items(&lexed);
        let input = FileInput {
            rel_path: "lib.rs",
            crate_name: Some("c"),
            lexed: &lexed,
            map: &map,
            parsed: &parsed,
        };
        let types: Vec<String> = Rule::DigestCoverage
            .default_types()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        check_digest_coverage(&[input], &types, &[true], &mut out);
        out.into_iter().map(|(_, v)| v).collect()
    }

    #[test]
    fn digest_coverage_requires_derived_partial_eq() {
        let src = "#[derive(Debug)]\nstruct EndStateDigest { sent: u64 }\n";
        let v = run_digest(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("PartialEq"), "{}", v[0].message);
    }

    #[test]
    fn digest_coverage_flags_manual_eq_impls() {
        let src = "\
#[derive(PartialEq)]
struct TaskingStats { sent: u64 }
impl PartialEq for MetricsDigest {
    fn eq(&self, _o: &Self) -> bool { true }
}
";
        let v = run_digest(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("manual"), "{}", v[0].message);
    }

    #[test]
    fn digest_coverage_requires_fields_to_flow_into_fingerprint() {
        let src = "\
#[derive(PartialEq)]
struct MetricsDigest { counters: Vec<u64>, spare: u32 }
impl MetricsDigest {
    fn canonical_string(&self) -> String {
        format!(\"{:?}\", self.counters)
    }
}
";
        let v = run_digest(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("MetricsDigest.spare"), "{}", v[0].message);
    }

    #[test]
    fn digest_coverage_chases_nested_scoped_types() {
        let src = "\
#[derive(PartialEq)]
struct MetricsDigest { histograms: Vec<(String, HistogramSnapshot)> }
#[derive(PartialEq)]
struct HistogramSnapshot { counts: Vec<u64>, bounds: Vec<f64> }
impl MetricsDigest {
    fn canonical_string(&self) -> String {
        let mut s = String::new();
        for (k, h) in &self.histograms {
            s.push_str(k);
            s.push_str(&format!(\"{:?}\", h.counts));
        }
        s
    }
}
";
        let v = run_digest(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("HistogramSnapshot.bounds"), "{}", v[0].message);
    }

    // -- R8 ---------------------------------------------------------

    #[test]
    fn stale_allow_flags_directives_that_suppress_nothing() {
        let src = "\
fn clean() {}
// lint: allow(panic) — leftover from a refactor
fn also_clean() {}
";
        let v = run(src, &[Rule::Panic, Rule::StaleAllow]);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule.id(), v[0].line), ("R8", 2));
        assert!(v[0].message.contains("stale"), "{}", v[0].message);
    }

    #[test]
    fn stale_allow_accepts_live_directives() {
        let src = "fn f() { x.unwrap(); } // lint: allow(panic) — invariant: x checked above\n";
        assert!(run(src, &[Rule::Panic, Rule::StaleAllow]).is_empty());
    }

    #[test]
    fn stale_allow_flags_unknown_rule_names() {
        let src = "// lint: allow(no-such-rule) — whatever\nfn f() {}\n";
        let v = run(src, &[Rule::StaleAllow]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no known rule"), "{}", v[0].message);
    }

    #[test]
    fn stale_allow_unjustified_live_directive_is_not_stale() {
        // The R3 violation is still reported (with a hint); the directive
        // targeted something, so R8 stays quiet.
        let src = "fn f() { x.unwrap(); } // lint: allow(panic)\n";
        let v = run(src, &[Rule::Panic, Rule::StaleAllow]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Panic);
    }

    #[test]
    fn stale_allow_can_itself_be_allowed() {
        let src = "\
// lint: allow(stale-allow) — directive below documents a planned exemption
// lint: allow(panic) — waiting on the follow-up change
fn f() {}
";
        assert!(run(src, &[Rule::Panic, Rule::StaleAllow]).is_empty());
    }
}
