//! The rule catalogue: five token-level checks enforcing the repo's
//! determinism and panic-discipline invariants (see `lint.toml` and the
//! README "Static analysis" section for the rationale of each).

use crate::config::AllowSet;
use crate::lexer::{Lexed, TokenKind};
use crate::regions::FileMap;

/// A rule identity: stable ID (`R1`…`R5`) plus the kebab-case name used
/// in allow directives and `lint.toml` sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1 `hash-iter`: no `HashMap`/`HashSet` in simulation/solver
    /// crates — hash iteration order is nondeterministic and can change
    /// solver output run to run.
    HashIter,
    /// R2 `wall-clock`: no `Instant::now` / `SystemTime` in code that
    /// influences simulation or solver results. Pure time *reporting* is
    /// allowlisted inline; benches are out of scope by construction.
    WallClock,
    /// R3 `panic`: no `unwrap()`/`expect()` in non-test library code
    /// outside an inline-commented allowlist.
    Panic,
    /// R4 `entropy`: no `thread_rng`/`from_entropy` — all randomness must
    /// flow from seeded RNGs, in tests as much as in library code.
    Entropy,
    /// R5 `docs`: public items in the contract crates carry doc comments.
    Docs,
}

impl Rule {
    /// Every rule, in ID order.
    pub const ALL: [Rule; 5] = [
        Rule::HashIter,
        Rule::WallClock,
        Rule::Panic,
        Rule::Entropy,
        Rule::Docs,
    ];

    /// Stable rule ID (`R1`…`R5`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIter => "R1",
            Rule::WallClock => "R2",
            Rule::Panic => "R3",
            Rule::Entropy => "R4",
            Rule::Docs => "R5",
        }
    }

    /// Kebab-case name used in `lint.toml` and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::Panic => "panic",
            Rule::Entropy => "entropy",
            Rule::Docs => "docs",
        }
    }

    /// Resolves a rule from its name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// The crates a rule applies to when `lint.toml` says nothing.
    pub fn default_scope(self) -> &'static [&'static str] {
        match self {
            // The simulation/solver crates whose outputs must replay
            // bit-for-bit.
            Rule::HashIter | Rule::WallClock => {
                &["netsim", "core", "synthesis", "adapt", "learning"]
            }
            // Panic and entropy discipline hold everywhere; the scope
            // list is unused (section-based instead).
            Rule::Panic | Rule::Entropy => &[],
            // The public-contract crates.
            Rule::Docs => &["types", "core"],
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.id(), self.name())
    }
}

/// One finding in one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based line number.
    pub line: u32,
    /// The rule violated.
    pub rule: Rule,
    /// Human-readable explanation, including the remediation.
    pub message: String,
}

/// Runs `rules` over one lexed+mapped file.
pub fn check_file(
    lexed: &Lexed,
    map: &FileMap,
    allows: &AllowSet,
    rules: &[Rule],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for &rule in rules {
        match rule {
            Rule::HashIter => check_hash_iter(lexed, map, allows, &mut out),
            Rule::WallClock => check_wall_clock(lexed, map, allows, &mut out),
            Rule::Panic => check_panic(lexed, map, allows, &mut out),
            Rule::Entropy => check_entropy(lexed, allows, &mut out),
            Rule::Docs => check_docs(lexed, map, allows, &mut out),
        }
    }
    out.sort_by_key(|v| (v.line, v.rule));
    // Two mentions on one line (e.g. `HashMap<..> = HashMap::new()`) are
    // one finding as far as the reader is concerned.
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

/// Pushes a violation unless a justified directive covers it; appends a
/// hint when an *unjustified* directive was found.
fn emit(out: &mut Vec<Violation>, allows: &AllowSet, rule: Rule, line: u32, message: String) {
    if allows.allowed(rule, line) {
        return;
    }
    let message = if allows.unjustified(rule, line) {
        format!("{message} (an allow directive was found but lacks a justification — write `// lint: allow({}) — <reason>`)", rule.name())
    } else {
        message
    };
    out.push(Violation { line, rule, message });
}

/// R1: any `HashMap`/`HashSet` identifier outside test code. The rule is
/// deliberately broader than "iteration" — at token level the safe
/// invariant is *no hash-ordered containers at all* in result-affecting
/// crates; lookup-only uses state their case in an allow directive.
fn check_hash_iter(lexed: &Lexed, map: &FileMap, allows: &AllowSet, out: &mut Vec<Violation>) {
    for t in &lexed.tokens {
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !map.is_test_line(t.line)
        {
            emit(
                out,
                allows,
                Rule::HashIter,
                t.line,
                format!(
                    "`{}` in a determinism-scoped crate: hash iteration order varies \
                     run to run; use BTreeMap/BTreeSet (or sort before iterating and \
                     justify with `// lint: allow(hash-iter) — <reason>`)",
                    t.text
                ),
            );
        }
    }
}

/// R2: `Instant::now` call sites and any `SystemTime` mention outside
/// test code. `use std::time::Instant` alone is fine — only acquiring the
/// clock is flagged, so passing an externally-captured timestamp through
/// is allowed.
fn check_wall_clock(lexed: &Lexed, map: &FileMap, allows: &AllowSet, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if map.is_test_line(t.line) {
            continue;
        }
        let flagged = if t.is_ident("Instant") {
            toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 3).is_some_and(|a| a.is_ident("now"))
        } else {
            t.is_ident("SystemTime")
        };
        if flagged {
            emit(
                out,
                allows,
                Rule::WallClock,
                t.line,
                "wall-clock read in a determinism-scoped crate: results must not \
                 depend on real time; use iteration/evaluation budgets (e.g. \
                 `SolverBudget`) or sim time, and justify pure reporting with \
                 `// lint: allow(wall-clock) — <reason>`"
                    .to_string(),
            );
        }
    }
}

/// R3: `.unwrap(` / `.expect(` in non-test library code.
fn check_panic(lexed: &Lexed, map: &FileMap, allows: &AllowSet, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct('.') {
            continue;
        }
        let Some(name) = toks.get(i + 1) else { continue };
        if !(name.is_ident("unwrap") || name.is_ident("expect")) {
            continue;
        }
        if !toks.get(i + 2).is_some_and(|p| p.is_punct('(')) {
            continue;
        }
        if map.is_test_line(name.line) {
            continue;
        }
        emit(
            out,
            allows,
            Rule::Panic,
            name.line,
            format!(
                "`{}()` in library code: return an error or handle the case; if the \
                 panic is invariant-backed, justify with `// lint: allow(panic) — <reason>`",
                name.text
            ),
        );
    }
}

/// R4: `thread_rng` / `from_entropy` anywhere, including tests — OS
/// entropy breaks replayability wherever it appears.
fn check_entropy(lexed: &Lexed, allows: &AllowSet, out: &mut Vec<Violation>) {
    for t in &lexed.tokens {
        if t.kind == TokenKind::Ident && (t.text == "thread_rng" || t.text == "from_entropy") {
            emit(
                out,
                allows,
                Rule::Entropy,
                t.line,
                format!(
                    "`{}` draws OS entropy: all randomness must flow from seeded RNGs \
                     (`StdRng::seed_from_u64` or a stream derived from the run seed)",
                    t.text
                ),
            );
        }
    }
}

/// R5: `pub` items in contract crates need a doc comment. Skips
/// `pub(…)` restricted visibility, `pub use` re-exports, `pub mod x;`
/// declarations (docs live in the module file), tuple-struct fields, and
/// members of trait impls (they inherit the trait's docs).
fn check_docs(lexed: &Lexed, map: &FileMap, allows: &AllowSet, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("pub") || map.is_test_line(t.line) || map.is_trait_impl_line(t.line) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        // `pub(crate)` / `pub(super)`: not part of the public API.
        if next.is_punct('(') {
            continue;
        }
        // Re-exports and externs don't carry their own docs.
        if next.is_ident("use") || next.is_ident("extern") {
            continue;
        }
        // `pub mod x;` — the module documents itself with `//!`.
        if next.is_ident("mod") && toks.get(i + 3).is_some_and(|p| p.is_punct(';')) {
            continue;
        }
        // Tuple-struct fields (`pub struct Id(pub u64)`): preceded by a
        // `(` or `,` and NOT shaped like a named field (`pub name: Type`),
        // which can also follow a comma inside a braced struct.
        let named_field = matches!(next.kind, TokenKind::Ident)
            && toks.get(i + 2).is_some_and(|p| p.is_punct(':'));
        if i > 0 && (toks[i - 1].is_punct('(') || toks[i - 1].is_punct(',')) && !named_field {
            continue;
        }
        if !map.has_doc_above(t.line) {
            emit(
                out,
                allows,
                Rule::Docs,
                t.line,
                "public item lacks a doc comment: add `///` docs (or justify with \
                 `// lint: allow(docs) — <reason>`)"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllowSet;
    use crate::lexer::lex;
    use crate::regions::map_file;

    fn run(src: &str, rules: &[Rule]) -> Vec<Violation> {
        let lexed = lex(src);
        let map = map_file(&lexed);
        let allows = AllowSet::from_comments(&lexed.comments);
        check_file(&lexed, &map, &allows, rules)
    }

    fn rules_hit(src: &str, rules: &[Rule]) -> Vec<(&'static str, u32)> {
        run(src, rules).iter().map(|v| (v.rule.id(), v.line)).collect()
    }

    #[test]
    fn hash_iter_flags_non_test_uses_only() {
        let src = "\
use std::collections::HashMap;
fn lib(m: &HashMap<u32, u32>) {}
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    fn t() { let _ = HashSet::<u32>::new(); }
}
";
        assert_eq!(rules_hit(src, &[Rule::HashIter]), vec![("R1", 1), ("R1", 2)]);
    }

    #[test]
    fn hash_iter_ignores_comments_and_strings() {
        let src = "// HashMap in a comment\nfn f() { let s = \"HashMap\"; let r = r#\"HashSet\"#; }\n";
        assert!(run(src, &[Rule::HashIter]).is_empty());
    }

    #[test]
    fn hash_iter_allow_directive_with_reason() {
        let src = "\
use std::collections::HashMap; // lint: allow(hash-iter) — lookup-only index, never iterated
fn f(m: &HashMap<u32, u32>) -> Option<&u32> { // lint: allow(hash-iter) — lookup-only
    m.get(&1)
}
";
        assert!(run(src, &[Rule::HashIter]).is_empty());
    }

    #[test]
    fn wall_clock_flags_now_but_not_type_mentions() {
        let src = "\
use std::time::Instant;
fn report(start: Instant) -> f64 { start.elapsed().as_secs_f64() }
fn bad() { let t = Instant::now(); let _ = t; }
fn worse() { let _ = std::time::SystemTime::now(); }
";
        assert_eq!(
            rules_hit(src, &[Rule::WallClock]),
            vec![("R2", 3), ("R2", 4)]
        );
    }

    #[test]
    fn wall_clock_allowlisted_reporting() {
        let src = "fn f() { let t = std::time::Instant::now(); } // lint: allow(wall-clock) — reporting only\n";
        assert!(run(src, &[Rule::WallClock]).is_empty());
    }

    #[test]
    fn panic_flags_unwrap_and_expect_outside_tests() {
        let src = "\
fn lib() {
    let a: Option<u32> = None;
    let _ = a.unwrap();
    let _ = a.expect(\"boom\");
    let _ = a.unwrap_or(3);
}
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
";
        assert_eq!(rules_hit(src, &[Rule::Panic]), vec![("R3", 3), ("R3", 4)]);
    }

    #[test]
    fn panic_allow_requires_reason() {
        let with_reason = "fn f() { x.unwrap(); } // lint: allow(panic) — key inserted two lines above\n";
        assert!(run(with_reason, &[Rule::Panic]).is_empty());
        let without = "fn f() { x.unwrap(); } // lint: allow(panic)\n";
        let v = run(without, &[Rule::Panic]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("lacks a justification"), "{}", v[0].message);
    }

    #[test]
    fn entropy_flags_tests_too() {
        let src = "\
fn lib() { let r = rand::thread_rng(); }
#[cfg(test)]
mod tests {
    fn t() { let r = SmallRng::from_entropy(); }
}
";
        assert_eq!(rules_hit(src, &[Rule::Entropy]), vec![("R4", 1), ("R4", 4)]);
    }

    #[test]
    fn docs_flags_undocumented_pub_items() {
        let src = "\
/// Documented.
pub fn good() {}
pub fn bad() {}
pub struct AlsoBad;
pub(crate) fn internal() {}
pub use std::collections::BTreeMap;
pub mod submodule;
";
        assert_eq!(rules_hit(src, &[Rule::Docs]), vec![("R5", 3), ("R5", 4)]);
    }

    #[test]
    fn docs_sees_through_attributes_and_skips_tuple_fields() {
        let src = "\
/// Documented wrapper.
#[derive(Debug, Clone)]
pub struct Id(pub u64);

/// Documented struct.
pub struct S {
    /// Documented field.
    pub x: f64,
    pub y: f64,
}
";
        assert_eq!(rules_hit(src, &[Rule::Docs]), vec![("R5", 9)]);
    }

    #[test]
    fn docs_skips_trait_impl_members() {
        let src = "\
/// Documented.
pub struct S;
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, \"s\")
    }
}
";
        assert!(run(src, &[Rule::Docs]).is_empty());
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
        assert_eq!(Rule::HashIter.to_string(), "R1[hash-iter]");
    }
}
