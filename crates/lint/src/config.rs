//! Linter configuration: the `lint.toml` allowlist file and inline
//! `// lint: allow(<rule>) — <reason>` directives.
//!
//! The config file is a deliberately small TOML subset (sections,
//! `key = "string"`, and single-line `key = ["a", "b"]` arrays) so the
//! linter needs no external dependencies and builds in fully offline CI
//! sandboxes. Unknown keys are ignored; malformed lines are reported as
//! errors so a typo cannot silently disable a rule.

use std::collections::BTreeMap;

use crate::lexer::Comment;
use crate::rules::Rule;

/// Parsed linter configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Path prefixes (relative to the lint root, `/`-separated) that are
    /// never scanned.
    pub skip: Vec<String>,
    /// Per-rule crate scope overrides, keyed by rule name. Rules not
    /// listed keep their built-in default scope.
    pub scopes: BTreeMap<String, Vec<String>>,
    /// Per-rule allowlisted path prefixes, keyed by rule name. A file
    /// whose relative path starts with an entry is exempt from that rule.
    pub allow_paths: BTreeMap<String, Vec<String>>,
    /// Per-rule *positive* path scopes, keyed by rule name (`paths = […]`).
    /// For R6 these are the snapshot/checkpoint files whose every fn —
    /// not just `save_state`/`restore_state` — is audited.
    pub rule_paths: BTreeMap<String, Vec<String>>,
    /// Per-rule type-name scopes, keyed by rule name (`types = […]`).
    /// For R7 these are the digest roots whose fields must flow into
    /// `canonical_string`/`fingerprint`.
    pub rule_types: BTreeMap<String, Vec<String>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            skip: vec!["target".into(), "compat".into()],
            scopes: BTreeMap::new(),
            allow_paths: BTreeMap::new(),
            rule_paths: BTreeMap::new(),
            rule_types: BTreeMap::new(),
        }
    }
}

impl Config {
    /// The crates a rule applies to, honouring `[rules.<name>] crates = …`
    /// overrides and falling back to the rule's built-in default scope.
    pub fn scope_of(&self, rule: Rule) -> Vec<String> {
        if let Some(crates) = self.scopes.get(rule.name()) {
            return crates.clone();
        }
        rule.default_scope().iter().map(|s| s.to_string()).collect()
    }

    /// Whether `rel_path` is exempt from `rule` via `allow = […]`.
    pub fn path_allowed(&self, rule: Rule, rel_path: &str) -> bool {
        self.allow_paths
            .get(rule.name())
            .is_some_and(|prefixes| prefixes.iter().any(|p| rel_path.starts_with(p.as_str())))
    }

    /// The positive path scope of `rule` (`paths = […]` override, else the
    /// rule's built-in default paths).
    pub fn paths_of(&self, rule: Rule) -> Vec<String> {
        if let Some(paths) = self.rule_paths.get(rule.name()) {
            return paths.clone();
        }
        rule.default_paths().iter().map(|s| s.to_string()).collect()
    }

    /// The type-name scope of `rule` (`types = […]` override, else the
    /// rule's built-in default types).
    pub fn types_of(&self, rule: Rule) -> Vec<String> {
        if let Some(types) = self.rule_types.get(rule.name()) {
            return types.clone();
        }
        rule.default_types().iter().map(|s| s.to_string()).collect()
    }

    /// Whether `rel_path` is skipped entirely.
    pub fn path_skipped(&self, rel_path: &str) -> bool {
        self.skip.iter().any(|p| {
            rel_path == p || rel_path.starts_with(&format!("{p}/"))
        })
    }

    /// Parses the `lint.toml` subset. Returns the config or a
    /// line-numbered error message.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section: Vec<String> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = inner.split('.').map(|s| s.trim().to_string()).collect();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{}: expected `key = value`", lineno + 1));
            };
            let key = key.trim();
            let value = parse_value(value.trim())
                .ok_or_else(|| format!("lint.toml:{}: unparsable value for `{key}`", lineno + 1))?;
            match (section.as_slice(), key) {
                ([s], "skip") if s == "lint" => config.skip = value,
                ([r, name], "crates") if r == "rules" => {
                    config.scopes.insert(name.clone(), value);
                }
                ([r, name], "allow") if r == "rules" => {
                    config.allow_paths.insert(name.clone(), value);
                }
                ([r, name], "paths") if r == "rules" => {
                    config.rule_paths.insert(name.clone(), value);
                }
                ([r, name], "types") if r == "rules" => {
                    config.rule_types.insert(name.clone(), value);
                }
                // Unknown keys/sections are tolerated for forward
                // compatibility (e.g. documentation-only entries).
                _ => {}
            }
        }
        for name in config
            .scopes
            .keys()
            .chain(config.allow_paths.keys())
            .chain(config.rule_paths.keys())
            .chain(config.rule_types.keys())
        {
            if Rule::from_name(name).is_none() {
                return Err(format!("lint.toml: unknown rule `{name}`"));
            }
        }
        Ok(config)
    }
}

/// Strips a trailing `# comment`, ignoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"str"` (as a one-element list) or `["a", "b"]`.
fn parse_value(value: &str) -> Option<Vec<String>> {
    if let Some(s) = parse_string(value) {
        return Some(vec![s]);
    }
    let inner = value.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

fn parse_string(s: &str) -> Option<String> {
    s.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

/// The inline allow directives of one file: which lines are exempt from
/// which rules.
///
/// Syntax, inside any comment:
///
/// ```text
/// // lint: allow(<rule-name>) — <non-empty reason>
/// ```
///
/// The separator may be `—`, `--`, `-`, or `:`. A directive covers the
/// comment's own line span **plus the next line**, so it works both as a
/// trailing comment and as a standalone comment above the offending line.
/// A directive without a justification is intentionally inert: the
/// violation is still reported (with a hint), so reviewers always see a
/// reason next to every exemption.
#[derive(Debug, Clone, Default)]
pub struct AllowSet {
    directives: Vec<Directive>,
}

/// One parsed `// lint: allow(<rule>)` directive.
///
/// `rule` is kept as the raw written name (it may not be a known rule —
/// R8 reports that), `line` anchors R8 findings to the comment itself,
/// and `[from, to]` is the inclusive line span the directive covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// The rule name as written inside `allow(…)`.
    pub rule: String,
    /// The comment's first line — where a stale-directive finding lands.
    pub line: u32,
    /// First covered line (the comment's own span start).
    pub from: u32,
    /// Last covered line (the comment's span end plus one line below).
    pub to: u32,
    /// Whether a non-empty justification follows the directive.
    pub justified: bool,
}

impl AllowSet {
    /// Builds the set from a file's comments. Doc comments are skipped:
    /// they *describe* the directive syntax (rule docs quote it), they
    /// don't enact it — a directive must sit in a regular comment.
    pub fn from_comments(comments: &[Comment]) -> AllowSet {
        let mut set = AllowSet::default();
        for c in comments {
            if c.doc {
                continue;
            }
            for (rule, justified) in parse_directives(&c.text) {
                set.directives.push(Directive {
                    rule,
                    line: c.line,
                    from: c.line,
                    to: c.end_line + 1,
                    justified,
                });
            }
        }
        set
    }

    /// All directives in the file, in source order.
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }

    /// Whether `rule` is allowed on `line` by a justified directive.
    pub fn allowed(&self, rule: Rule, line: u32) -> bool {
        self.directives
            .iter()
            .any(|d| d.justified && d.rule == rule.name() && d.from <= line && line <= d.to)
    }

    /// Whether an unjustified directive covers `(rule, line)` — used to
    /// improve the violation message.
    pub fn unjustified(&self, rule: Rule, line: u32) -> bool {
        self.directives
            .iter()
            .any(|d| !d.justified && d.rule == rule.name() && d.from <= line && line <= d.to)
    }
}

/// Extracts `(rule name, has_reason)` for every directive in a comment.
fn parse_directives(text: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("lint: allow(") {
        rest = &rest[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        rest = &rest[close + 1..];
        // A justification must follow a separator and contain some
        // alphanumeric substance (not just punctuation).
        let tail = rest
            .trim_start()
            .trim_start_matches(['—', '-', ':', ' '])
            .trim();
        let justified = tail.chars().filter(|c| c.is_alphanumeric()).count() >= 3;
        if !rule.is_empty() {
            out.push((rule, justified));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn default_config_skips_target_and_compat() {
        let c = Config::default();
        assert!(c.path_skipped("target/debug/foo.rs"));
        assert!(c.path_skipped("compat/rand/src/lib.rs"));
        assert!(!c.path_skipped("crates/core/src/lib.rs"));
    }

    #[test]
    fn skip_matches_whole_components_only() {
        let mut c = Config::default();
        c.skip = vec!["crates/lint/tests/fixtures".into()];
        assert!(c.path_skipped("crates/lint/tests/fixtures/crates/a/src/lib.rs"));
        assert!(!c.path_skipped("crates/lint/tests/fixtures_extra.rs"));
    }

    #[test]
    fn parses_sections_arrays_and_comments() {
        let toml = r#"
# top comment
[lint]
skip = ["compat", "target"] # trailing

[rules.hash-iter]
crates = ["netsim", "core"]
allow = ["crates/netsim/src/graph.rs"]

[rules.docs]
crates = ["types"]
"#;
        let c = Config::parse(toml).unwrap();
        assert_eq!(c.skip, vec!["compat".to_string(), "target".to_string()]);
        assert_eq!(
            c.scope_of(Rule::HashIter),
            vec!["netsim".to_string(), "core".to_string()]
        );
        assert!(c.path_allowed(Rule::HashIter, "crates/netsim/src/graph.rs"));
        assert!(!c.path_allowed(Rule::HashIter, "crates/netsim/src/sim.rs"));
        assert_eq!(c.scope_of(Rule::Docs), vec!["types".to_string()]);
    }

    #[test]
    fn unlisted_rules_keep_default_scope() {
        let c = Config::parse("[rules.docs]\ncrates = [\"types\"]\n").unwrap();
        assert_eq!(
            c.scope_of(Rule::HashIter),
            Rule::HashIter
                .default_scope()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn unknown_rules_and_garbage_are_errors() {
        assert!(Config::parse("[rules.no-such-rule]\ncrates = []\n").is_err());
        assert!(Config::parse("[lint]\nskip garbage\n").is_err());
        assert!(Config::parse("[lint]\nskip = nonsense\n").is_err());
    }

    #[test]
    fn directive_with_reason_allows_its_span_and_next_line() {
        let lexed = lex("fn f() {\n    // lint: allow(panic) — invariant: map key inserted above\n    let _ = 1;\n}\n");
        let a = AllowSet::from_comments(&lexed.comments);
        assert!(a.allowed(Rule::Panic, 2), "the comment's own line");
        assert!(a.allowed(Rule::Panic, 3), "the following line");
        assert!(!a.allowed(Rule::Panic, 4));
        assert!(!a.allowed(Rule::HashIter, 3), "other rules unaffected");
    }

    #[test]
    fn directive_without_reason_is_inert_but_tracked() {
        let lexed = lex("// lint: allow(panic)\nlet x = y.unwrap();\n");
        let a = AllowSet::from_comments(&lexed.comments);
        assert!(!a.allowed(Rule::Panic, 2));
        assert!(a.unjustified(Rule::Panic, 2));
    }

    #[test]
    fn ascii_separators_work_too() {
        for sep in ["—", "--", "-", ":"] {
            let src = format!("// lint: allow(wall-clock) {sep} reporting only\nfoo();\n");
            let lexed = lex(&src);
            let a = AllowSet::from_comments(&lexed.comments);
            assert!(a.allowed(Rule::WallClock, 2), "separator {sep:?}");
        }
    }

    #[test]
    fn doc_comments_never_enact_directives() {
        let lexed = lex(
            "/// Quote the syntax: `// lint: allow(panic) — reason here`.\nfn f() { x.unwrap(); }\n",
        );
        let a = AllowSet::from_comments(&lexed.comments);
        assert!(a.directives().is_empty());
    }

    #[test]
    fn block_comment_directive_covers_span() {
        let lexed = lex("/* lint: allow(entropy) — fixture uses OS RNG deliberately\n   spanning */\nthread_rng();\n");
        let a = AllowSet::from_comments(&lexed.comments);
        assert!(a.allowed(Rule::Entropy, 3));
    }
}
