//! Offline stand-in for `serde_derive`. Parses the derive input token
//! stream by hand (no `syn`/`quote`, which are unavailable offline) and
//! generates `Serialize`/`Deserialize` impls against the in-tree `serde`
//! shim's `Value` model.
//!
//! Supported shapes — everything this workspace derives on:
//! plain structs with named fields, tuple structs, unit-only enums, and
//! enums with struct variants (externally tagged, serde's default).
//! Container attribute `#[serde(transparent)]` is honoured; generics are
//! not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_serde_transparent(g.stream()) {
                        transparent = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break;
            }
            other => panic!("serde shim derive: unexpected token {other:?}"),
        }
    }

    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generics are not supported (type {name})");
        }
    }

    let shape = if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("serde shim derive: malformed struct {name}: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum {name}: {other:?}"),
        }
    };

    Item { name, transparent, shape }
}

fn attr_is_serde_transparent(attr: TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent"))
        }
        _ => false,
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // past name
        i += 1; // past ':'
        // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2; // attribute (e.g. #[default], doc comments)
            } else if p.as_char() == ',' {
                i += 1;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) if item.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0])
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                 (\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) if item.transparent && fields.len() == 1 => {
            format!(
                "Ok({name} {{ {}: ::serde::Deserialize::from_value(v)? }})",
                fields[0]
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\"))?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i})\
                         .unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "match v {{ ::serde::Value::Array(items) => Ok({name}({})), \
                 other => Err(::serde::DeError::msg(format!(\
                 \"expected array for {name}, got {{other:?}}\"))) }}",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.field(\"{f}\"))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({i})\
                                         .unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match inner {{ \
                                 ::serde::Value::Array(items) => Ok({name}::{vname}({})), \
                                 other => Err(::serde::DeError::msg(format!(\
                                 \"expected array payload, got {{other:?}}\"))) }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{ {unit} _ => \
                 Err(::serde::DeError::msg(format!(\"unknown variant {{s}} of {name}\"))) }},\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 match tag.as_str() {{ {tagged} _ => Err(::serde::DeError::msg(\
                 format!(\"unknown variant {{tag}} of {name}\"))) }}\n\
                 }},\n\
                 other => Err(::serde::DeError::msg(format!(\
                 \"expected enum value for {name}, got {{other:?}}\")))\n\
                 }}",
                unit = unit_arms.join(" "),
                tagged = tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{ {body} }}\n\
         }}"
    )
}
