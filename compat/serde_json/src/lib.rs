//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//! Renders the in-tree serde shim's `Value` model as JSON text and parses
//! it back with a small recursive-descent parser. Covers the API surface
//! this workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats recognisable as floats, like serde_json.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: it came
                    // from a &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!("expected ',' or ']', got {other:?}")));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error(format!("expected ',' or '}}', got {other:?}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let f: f64 = from_str("2.5").unwrap();
        assert_eq!(f, 2.5);
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn strings_escape_and_parse_back() {
        let s = "line1\nline2 \"quoted\" \\slash";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u64> = vec![1, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
    }
}
