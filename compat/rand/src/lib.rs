//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the external `rand` dependency is replaced by this in-tree
//! implementation of the (small) API subset the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`). The *stream* differs from upstream
//!   `rand`'s ChaCha-based `StdRng`, but every consumer in this workspace
//!   only relies on determinism-given-seed, never on a specific stream.
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`.
//! * [`SeedableRng`] — `seed_from_u64`, `from_seed`.
//! * [`seq::SliceRandom`] — `shuffle`, `choose`.
//! * [`distributions::Distribution`] / [`distributions::Standard`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (32 bytes, as for upstream `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                // Closed-interval scaling; the endpoint itself is hit with
                // measure zero, which matches rand's behaviour closely
                // enough for simulation sampling.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Distribution traits and the `Standard` distribution.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: `[0, 1)` uniform for floats,
    /// full-range uniform for integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (next(rng) >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (next(rng) >> 40) as f32 / (1u32 << 24) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            next(rng) & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    next(rng) as $t
                }
            }
        )*};
    }

    impl_standard_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    fn next<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for upstream
    /// `StdRng`. Fast, passes BigCrush, and fully reproducible from a
    /// `u64` seed on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Returns the full internal xoshiro256++ state, allowing the
        /// exact stream position to be checkpointed and later resumed
        /// with [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position captured by
        /// [`StdRng::state`]. An all-zero state (a xoshiro fixed point,
        /// never produced by a live generator) is nudged the same way
        /// `from_seed` nudges it.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                }
            } else {
                StdRng { s }
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn state_roundtrip_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // All-zero state is nudged, not accepted verbatim.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements almost surely move");
    }
}
