//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset this workspace's property tests use:
//!
//! * `proptest! { #[test] fn name(arg in strategy, ...) { body } }`
//! * numeric [`Strategy`] ranges (`0u64..30`, `-1e3..1e3f64`, …)
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Each generated test runs [`CASES`] deterministic random cases seeded
//! from the test's name, so failures reproduce exactly. There is no
//! shrinking: the failing inputs are printed instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of random cases each property test runs.
pub const CASES: usize = 32;

/// Deterministic per-test RNG. Seeded from the test name so every run of
/// the suite explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-spread seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The produced value type.
    type Value: std::fmt::Debug;

    /// Draws one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategies over collections (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>` (proptest's `Into<SizeRange>` analogue).
    pub trait IntoSizeRange {
        /// Converts to `lo..hi` bounds.
        fn bounds(&self) -> std::ops::Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> std::ops::Range<usize> {
            *self..*self + 1
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> std::ops::Range<usize> {
            self.clone()
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.bounds(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `bool` (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniformly random `true`/`false`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Error carried out of a failing property body.
pub type TestCaseError = String;

/// Defines property tests. Mirrors `proptest::proptest!` for the
/// `fn name(arg in strategy, ...) { body }` form (one or more functions
/// per invocation, arbitrary outer attributes including doc comments).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Render inputs up front: the body may consume them.
                    let rendered_inputs =
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+]
                            .join(", ");
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property `{}` failed on case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            $crate::CASES,
                            message,
                            rendered_inputs,
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts inside a property body; failures report inputs instead of
/// unwinding through `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {} ({:?} vs {:?})",
                        stringify!($a), stringify!($b), left, right),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {} ({:?} vs {:?}): {}",
                        stringify!($a), stringify!($b), left, right, format!($($fmt)+)),
            );
        }
    }};
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestRng, CASES};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Addition commutes (sanity-check the macro plumbing end to end).
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn floats_stay_in_range(x in -1e3..1e3f64, scale in 0.1..2.0f64) {
            prop_assert!((-1e3..1e3).contains(&x));
            prop_assert!((0.1..2.0).contains(&scale), "scale {}", scale);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_report_inputs() {
        proptest! {
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100);
            }
        }
        always_fails();
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::Rng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let av: Vec<u64> = (0..4).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let cv: Vec<u64> = (0..4).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }
}
