//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate. Provides [`Bytes`]: an immutable, cheaply-cloneable byte buffer
//! backed by `Arc<[u8]>` (static slices avoid the allocation entirely).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

/// An immutable byte buffer with O(1) clone.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v.into_boxed_slice())))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes(Repr::Static(s))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes(Repr::Static(s.as_bytes()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_contents() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    fn static_and_owned_compare_equal() {
        assert_eq!(Bytes::from_static(b"abcd"), Bytes::from(b"abcd".to_vec()));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes_non_printable() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
