//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate, covering the distributions this workspace samples: [`Normal`]
//! (Box–Muller) and [`Exp`] (inverse CDF). See the in-tree `rand` shim for
//! why these exist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Uniform in `[0, 1)` that works through `?Sized` RNG references.
fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Error from invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A parameter was non-finite or out of range.
    BadParams,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadParams);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one sample per call keeps the stream stateless.
        let u1: f64 = unit(rng).max(f64::MIN_POSITIVE);
        let u2: f64 = unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error::BadParams);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = unit(rng);
        -(1.0 - u).max(f64::MIN_POSITIVE).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Exp::new(0.25).unwrap();
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!((0..100).all(|_| d.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn bad_params_are_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
    }
}
