//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//! Implements the subset this workspace's benches use — `criterion_group!`
//! / `criterion_main!`, [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`] — with a simple warmup + timed-sample loop
//! instead of criterion's full statistical machinery. Median and spread
//! are printed per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

/// How batched setup output is sized. Only the variants this workspace
/// names are meaningful; all behave identically here (one setup per
/// routine invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input of unknown size.
    PerIteration,
}

/// Benchmark driver: collects timing samples for one routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine`, running a short warmup then `sample_size` timed
    /// samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` with per-sample input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let mut samples = b.samples;
        if samples.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{name:<40} median {:>12?}  (min {:?}, max {:?}, n={})",
            median,
            min,
            max,
            samples.len()
        );
        self
    }

    /// Criterion's post-run hook; nothing to finalize here.
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("sum_0_to_99", |b| b.iter(|| (0u64..100).sum::<u64>()));
        c.bench_function("batched_double", |b| {
            b.iter_batched(|| vec![1u64; 8], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }

    criterion_group!(name = g; config = Criterion::default().sample_size(3); targets = trivial);

    #[test]
    fn group_runs_to_completion() {
        g();
    }
}
