//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! crate. The build environment has no registry access, so this in-tree
//! shim provides the subset the workspace uses: `#[derive(Serialize,
//! Deserialize)]` over a JSON-shaped [`Value`] model. The companion
//! `serde_json` shim renders and parses [`Value`] as JSON text.
//!
//! Unlike real serde there is no zero-copy deserialization, no custom
//! `Serializer`/`Deserializer` plumbing, and only the `#[serde(transparent)]`
//! container attribute is honoured — which is all this workspace needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (preserves full `u64` range).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field; returns [`Value::Null`] when absent (so
    /// `Option` fields deserialize to `None`).
    pub fn field(&self, name: &str) -> &Value {
        if let Value::Object(pairs) = self {
            for (k, v) in pairs {
                if k == name {
                    return v;
                }
            }
        }
        &Value::Null
    }

    /// Interprets a JSON object key as a value (number when it parses as
    /// one, string otherwise) — the inverse of map-key stringification.
    pub fn from_key_str(key: &str) -> Value {
        if let Ok(u) = key.parse::<u64>() {
            return Value::UInt(u);
        }
        if let Ok(i) = key.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = key.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(key.to_string())
    }

    /// Stringifies a value for use as a JSON object key.
    pub fn to_key_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::UInt(u) => u.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("unsupported map key: {other:?}"),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts to the dynamic value model.
    fn to_value(&self) -> Value;
}

/// Types constructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Builds from the dynamic value model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::msg(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::msg(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hash order.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value().to_key_string(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| {
                    Ok((
                        K::from_value(&Value::from_key_str(k))?,
                        V::from_value(val)?,
                    ))
                })
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_value().to_key_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| {
                    Ok((
                        K::from_value(&Value::from_key_str(k))?,
                        V::from_value(val)?,
                    ))
                })
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrips_through_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u64).to_value(), Value::UInt(3));
    }

    #[test]
    fn missing_object_fields_read_as_null() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.field("a"), &Value::UInt(1));
        assert_eq!(v.field("b"), &Value::Null);
    }

    #[test]
    fn map_keys_stringify_and_parse_back() {
        let mut m = BTreeMap::new();
        m.insert(7u64, 1.5f64);
        let v = m.to_value();
        let back: BTreeMap<u64, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
